"""Ablation A1: the value of transparent double buffering + write-through.

Disabling write-through forces the static buffers to be re-prefetched from
DRAM at the start of every work-instance; the benchmark quantifies the cycle
and traffic overhead that the paper's design avoids.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.ablations import run_write_through_ablation


class TestDoubleBufferingAblation:
    def test_bench_write_through_ablation(self, benchmark):
        result = run_once(benchmark, run_write_through_ablation, rows=11, cols=11, iterations=50)
        print()
        print(result.format())
        # Re-prefetching costs extra DRAM words and extra cycles every instance.
        assert result.traffic_overhead > 0.05
        assert result.cycle_overhead > 0.05
        # ... but the system still functions (the overheads are bounded).
        assert result.cycle_overhead < 1.0
