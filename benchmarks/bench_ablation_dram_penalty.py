"""Ablation A2: sensitivity to the cost of non-contiguous DRAM accesses.

The paper's motivation is that random / redundant accesses break sustained
DRAM bandwidth.  This benchmark sweeps the extra cost of a non-burst access
and shows that the baseline degrades roughly linearly while Smache, whose
accesses are contiguous, barely notices.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.ablations import run_dram_penalty_ablation


class TestDramPenaltyAblation:
    def test_bench_dram_penalty_sweep(self, benchmark):
        result = run_once(
            benchmark,
            run_dram_penalty_ablation,
            penalties=(0, 2, 4, 8),
            rows=11,
            cols=11,
            iterations=10,
        )
        print()
        print(result.format())
        # Baseline cycles grow substantially with the penalty; Smache's do not.
        assert result.slowdown("baseline") > 3.0
        assert result.slowdown("smache") < 1.2
        # Baseline cycle counts increase monotonically with the penalty.
        assert result.baseline_cycles == sorted(result.baseline_cycles)
