"""Ablation A3: what the stream+static split buys over a stream-only window.

Compares, across grid sizes, the on-chip elements needed by (a) a single
window large enough to cover the circular wrap, (b) the paper's per-range
Algorithm 1 without static-buffer merging, and (c) the global planner used in
this reproduction.  The saving of (c) over (a) grows with the grid because
the window would otherwise have to span the whole grid.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.ablations import run_planner_ablation


class TestPlannerAblation:
    def test_bench_planner_strategies(self, benchmark):
        result = run_once(
            benchmark,
            run_planner_ablation,
            grid_sizes=((11, 11), (64, 64), (256, 256), (1024, 1024)),
        )
        print()
        print(result.format())
        # the planner never loses to the stream-only window ...
        for planner, stream_only in zip(result.planner_elements, result.stream_only_elements):
            assert planner <= stream_only
        # ... and on the 1M-element grid it saves the overwhelming majority of
        # the on-chip storage (window 2W vs full-grid span ~2*W*H).
        assert result.saving(-1) > 0.95
        # the 11x11 validation case reproduces the 44-element plan
        assert result.planner_elements[0] == 44
