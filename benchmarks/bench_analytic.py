"""Benchmarks for the vectorized analytic pricing engine.

Two claims are tracked so future PRs can watch the batched fast path:

* a warm :meth:`~repro.api.Workbench.evaluate_batch` session — packed design
  columns and memoized folds reused across calls — prices a 1000-point batch
  at least **20x faster** than the per-point scalar loop on an uncontended
  host, while producing bitwise-identical metrics;
* re-pricing the same session under *new* request knobs (different
  iteration counts, so the folds re-run against the packed columns) still
  beats the scalar loop by an order of magnitude.

Run standalone with ``python benchmarks/bench_analytic.py``; the numbers
land in ``BENCH_analytic.json`` via ``--benchmark-json`` (the standard
pytest-benchmark record, same machine-info schema as ``BENCH_sim.json``)
and in each test's ``extra_info``.  Set ``REPRO_BENCH_SMOKE=1`` (CI does)
to shrink the batch and skip the speedup assertions — smoke runs check the
plumbing, not the performance of a shared runner.
"""

import os
import sys
import time

if __package__ in (None, ""):  # direct invocation: python benchmarks/bench_analytic.py
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.api import Workbench
from repro.bench.host import cpu_count, host_extra_info, smoke_mode
from repro.pipeline import StencilProblem
from repro.pipeline.cache import PlanCache

SMOKE = smoke_mode()

#: Batch size: the acceptance claim is stated over a 1000-point batch.
N_POINTS = 120 if SMOKE else 1000


def batch_problems():
    """Distinct paper-style problems spanning grid shapes (one per point)."""
    if SMOKE:
        shapes = [(rows, cols) for rows in range(9, 21) for cols in range(9, 19)]
    else:
        shapes = [(rows, cols) for rows in range(9, 49) for cols in range(9, 34)]
    problems = [StencilProblem.paper_example(rows, cols) for rows, cols in shapes]
    assert len(problems) == N_POINTS
    return problems


def best_of(fn, rounds=5):
    result, best = None, float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, max(best, 1e-9)


class TestBatchedAnalyticPricing:
    def test_bench_scalar_vs_vectorized(self, benchmark):
        """The acceptance claim: >=20x warm speedup on a 1k-point batch."""
        problems = batch_problems()
        iterations = 5
        cache = PlanCache(max_entries=2048)
        workbench = Workbench(cache=cache)
        cpus = cpu_count()

        # Warm both paths: the scalar loop gets a hot plan cache, the batch
        # path a populated packed session, so the comparison isolates pricing.
        workbench.evaluate_batch(problems, iterations=iterations, with_artifacts=False)
        workbench.evaluate(problems[0], iterations=iterations)

        scalar, scalar_seconds = best_of(
            lambda: [workbench.evaluate(p, iterations=iterations) for p in problems]
        )
        vectorized = run_once(
            benchmark,
            workbench.evaluate_batch,
            problems,
            iterations=iterations,
            with_artifacts=False,
        )
        _, vectorized_seconds = best_of(
            lambda: workbench.evaluate_batch(
                problems, iterations=iterations, with_artifacts=False
            )
        )
        _, artifacts_seconds = best_of(
            lambda: workbench.evaluate_batch(problems, iterations=iterations)
        )
        # New knobs each call: the packed columns are reused but every fold
        # re-runs, so this is the floor for a *changing* re-price session.
        knob_counter = iter(range(10, 10 + 64))
        _, reprice_seconds = best_of(
            lambda: workbench.evaluate_batch(
                problems, iterations=next(knob_counter), with_artifacts=False
            )
        )

        # The two paths must agree bitwise before any speedup is meaningful.
        assert len(vectorized) == len(scalar)
        for s, v in zip(scalar, vectorized):
            assert (s.cycles, s.dram_words_read, s.dram_words_written) == (
                v.cycles,
                v.dram_words_read,
                v.dram_words_written,
            )
            assert (s.dram_bytes, s.operations, s.extra) == (
                v.dram_bytes,
                v.operations,
                v.extra,
            )

        speedup = scalar_seconds / vectorized_seconds
        reprice_speedup = scalar_seconds / reprice_seconds
        artifacts_speedup = scalar_seconds / artifacts_seconds
        # A contended host (shared CI runner, single core) distorts the
        # per-point timings; record the label so the BENCH trajectory stays
        # interpretable, and only assert performance on clean hosts.
        extra = host_extra_info()
        contended = extra["contended"]
        benchmark.extra_info.update(extra)
        benchmark.extra_info.update(
            points=len(problems),
            iterations=iterations,
            scalar_points_per_second=round(len(problems) / scalar_seconds),
            vectorized_points_per_second=round(len(problems) / vectorized_seconds),
            scalar_seconds=round(scalar_seconds, 6),
            vectorized_seconds=round(vectorized_seconds, 6),
            warm_speedup=round(speedup, 2),
            reprice_new_knobs_speedup=round(reprice_speedup, 2),
            with_artifacts_speedup=round(artifacts_speedup, 2),
        )
        print()
        print(
            f"batch: {len(problems)} points, iterations={iterations}, "
            f"{cpus} core(s){' [contended]' if contended else ''}"
        )
        print(
            f"scalar loop : {scalar_seconds * 1e3:7.2f} ms "
            f"({len(problems) / scalar_seconds:10,.0f} points/s)"
        )
        print(
            f"vectorized  : {vectorized_seconds * 1e3:7.2f} ms "
            f"({len(problems) / vectorized_seconds:10,.0f} points/s, {speedup:.1f}x)"
        )
        print(
            f"new knobs   : {reprice_seconds * 1e3:7.2f} ms "
            f"({reprice_speedup:.1f}x), with artifacts {artifacts_speedup:.1f}x"
        )
        if SMOKE:
            print(f"smoke run ({len(problems)} points): speedup recorded, not asserted")
        elif contended:
            print(f"contended host: {speedup:.1f}x recorded, not asserted")
        else:
            assert speedup >= 20, (
                f"warm vectorized pricing must be >=20x the scalar loop on an "
                f"uncontended host, measured {speedup:.1f}x"
            )
            assert reprice_speedup > 5


if __name__ == "__main__":
    from repro.bench.suites import standalone_main

    sys.exit(standalone_main("analytic"))
