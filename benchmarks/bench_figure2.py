"""Benchmark / regeneration of Figure 2 (experiment E1).

Regenerates the paper's headline comparison — Smache vs the no-buffering
baseline on the 11x11, 4-point-stencil validation case, 100 work-instances —
and checks the shape of the result against the paper's reported values.
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.figure2 import FIGURE2_METRICS, run_figure2
from repro.eval.paper_constants import PAPER_FIGURE2


@pytest.fixture(scope="module")
def figure2_result():
    return run_figure2(iterations=100)


class TestFigure2Benchmark:
    def test_bench_figure2_full(self, benchmark):
        """Time the full Figure 2 regeneration (both designs, 100 instances)."""
        result = run_once(benchmark, run_figure2, iterations=100)
        print()
        print(result.format())
        # who wins, by roughly what factor
        assert result.cycle_ratio < 0.30
        assert 0.35 < result.traffic_ratio < 0.45
        assert result.speedup > 2.0

    def test_bench_smache_simulation_only(self, benchmark):
        """Time just the Smache cycle-accurate simulation (100 instances)."""
        from repro.arch.system import run_smache
        from repro.core.config import SmacheConfig
        from repro.reference.kernels import AveragingKernel
        from repro.reference.stencil_exec import make_test_grid

        config = SmacheConfig.paper_example()
        grid_in = make_test_grid(config.grid, kind="ramp")
        result = run_once(
            benchmark, run_smache, config, grid_in, iterations=100, kernel=AveragingKernel()
        )
        assert result.cycles < PAPER_FIGURE2["smache"]["cycle_count"] * 1.10

    def test_bench_baseline_simulation_only(self, benchmark):
        """Time just the baseline cycle-accurate simulation (100 instances)."""
        from repro.arch.system import run_baseline
        from repro.core.config import SmacheConfig
        from repro.reference.kernels import AveragingKernel
        from repro.reference.stencil_exec import make_test_grid

        config = SmacheConfig.paper_example()
        grid_in = make_test_grid(config.grid, kind="ramp")
        result = run_once(
            benchmark, run_baseline, config, grid_in, iterations=100, kernel=AveragingKernel()
        )
        assert result.cycles == pytest.approx(
            PAPER_FIGURE2["baseline"]["cycle_count"], rel=0.10
        )

    def test_every_metric_within_ten_percent_of_paper(self, figure2_result):
        errors = figure2_result.paper_errors()
        for design in ("baseline", "smache"):
            for metric in FIGURE2_METRICS:
                assert errors[design][metric] < 0.10
