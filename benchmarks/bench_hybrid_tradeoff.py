"""Benchmark / regeneration of the 1M-element hybrid trade-off (experiment E4)."""

import pytest

from benchmarks.conftest import run_once
from repro.eval.resources_exp import run_hybrid_tradeoff


class TestHybridTradeoffBenchmark:
    def test_bench_hybrid_tradeoff(self, benchmark):
        """Case-R vs Case-H register/BRAM split on the 1024x1024 grid."""
        result = run_once(benchmark, run_hybrid_tradeoff)
        print()
        print(result.format())
        # the paper's numbers: ~66K registers / 131K BRAM bits vs ~1.5K / 196K
        assert result.register_only["registers"] == pytest.approx(66_000, rel=0.05)
        assert result.register_only["bram_bits"] == pytest.approx(131_000, rel=0.05)
        assert result.hybrid["registers"] < 2_000
        assert result.hybrid["bram_bits"] == pytest.approx(196_000, rel=0.05)

    def test_bench_partition_sweep_1024(self, benchmark):
        """Time a full DSE sweep of the 1M-element stream buffer."""
        from repro.core.config import SmacheConfig
        from repro.dse import explore_partitions

        config = SmacheConfig.paper_example(1024, 1024)
        points = run_once(benchmark, explore_partitions, config, steps=6)
        regs = [p.cost.r_stream_bits for p in points]
        assert regs == sorted(regs)
