"""Memory micro-benchmark (MP-Stream style) over the DRAM substrate.

Reproduces the *motivation* measurement behind the paper (its reference [11]):
sustained DRAM throughput collapses once the access pattern stops being
contiguous, which is precisely why Smache works to preserve streaming.
"""

import pytest

from benchmarks.conftest import run_once
from repro.membench import AccessPattern, run_membench


class TestMembench:
    def test_bench_access_pattern_sweep(self, benchmark):
        report = run_once(benchmark, run_membench, n_accesses=4096)
        print()
        print(report.format())
        table = report.by_pattern()
        # contiguous streaming sustains ~1 word/cycle, random collapses
        assert table[AccessPattern.CONTIGUOUS].efficiency > 0.9
        assert table[AccessPattern.RANDOM].efficiency < 0.3
        assert report.contiguous_advantage() > 3.0
