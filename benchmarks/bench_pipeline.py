"""Benchmarks for the compilation pipeline's fast path and the sweep engine.

Four claims are tracked so future PRs can watch the fast path:

* the ``analytic`` backend predicts the Figure-2 workload orders of magnitude
  faster than cycle-accurate simulation, while staying inside its 5% cycle
  tolerance (traffic and ops are exact);
* the keyed plan cache turns repeated compilations of the same problem into
  lookups;
* a DSE sweep that prices the space analytically and re-simulates only the
  Pareto front selects the same design as simulating everything, measurably
  faster;
* a 200+-point campaign sharded over a process pool (``jobs=4``) beats the
  serial runner on multi-core hosts, produces byte-identical results, and
  resumes from its JSONL checkpoint without re-evaluating completed points.

Run standalone with ``python benchmarks/bench_pipeline.py [--jobs N]``; the
parallel-campaign numbers land in ``BENCH_pipeline.json`` via
``--benchmark-json`` and in each test's ``extra_info``.  Set
``REPRO_BENCH_SMOKE=1`` (CI does) to shrink the campaign and skip the
wall-clock assertions — exactness (tolerance, determinism, resume) is
always enforced.  Every test stamps ``smoke``/``cpus``/``contended`` so
the regression gate (``python -m repro.bench gate``) can filter correctly.
"""

import os
import sys
import time
from dataclasses import replace

if __package__ in (None, ""):  # direct invocation: python benchmarks/bench_pipeline.py
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench.host import contention, cpu_count, host_extra_info, smoke_mode
from repro.core.partition import StreamBufferMode
from repro.dse.explorer import explore_performance
from repro.pipeline import (
    ANALYTIC_TOLERANCE,
    EvaluationRequest,
    StencilProblem,
    clear_plan_cache,
    compile,
    evaluate,
)
from repro.pipeline.cache import PlanCache, plan_cache
from repro.api import Workbench
from repro.sweep import SweepSpec

SMOKE = smoke_mode()


def sweep_candidates():
    base = StencilProblem.paper_example(11, 11)
    return [
        replace(
            base,
            max_stream_reach=reach,
            name=f"reach-{reach}" if reach is not None else "unconstrained",
        )
        for reach in (0, 2, 4, 8, 11, None)
    ]


class TestAnalyticSpeedup:
    def test_bench_analytic_backend(self, benchmark):
        """Time the analytic backend on the paper's 100-instance workload."""
        design = compile(StencilProblem.paper_example())
        request = EvaluationRequest(iterations=100)

        t0 = time.perf_counter()
        simulated = evaluate(design, backend="simulate", request=request)
        simulate_seconds = time.perf_counter() - t0

        predicted = run_once(
            benchmark, evaluate, design, backend="analytic", request=request
        )
        t1 = time.perf_counter()
        evaluate(design, backend="analytic", request=request)
        predict_seconds = max(time.perf_counter() - t1, 1e-9)

        error = abs(predicted.cycles - simulated.cycles) / simulated.cycles
        speedup = simulate_seconds / predict_seconds
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(
            analytic_speedup=round(speedup, 1), cycle_error=round(error, 4)
        )
        print()
        print(f"simulate: {simulated.cycles} cycles in {simulate_seconds * 1e3:.1f} ms")
        print(f"analytic: {predicted.cycles} cycles in {predict_seconds * 1e6:.0f} us "
              f"({error:+.2%} cycle error, {speedup:,.0f}x faster)")
        assert error <= ANALYTIC_TOLERANCE
        assert predicted.dram_bytes == simulated.dram_bytes
        if not SMOKE:
            assert speedup > 20


class TestPlanCacheBenchmark:
    def test_bench_cold_vs_cached_compile(self, benchmark):
        """Time a cold 256x256 compilation; cached lookups must be ~free."""
        problem = StencilProblem.paper_example(256, 256)
        cache = PlanCache()

        cold = run_once(benchmark, compile, problem, cache=cache)

        t0 = time.perf_counter()
        repeats = 50
        for _ in range(repeats):
            cached = compile(StencilProblem.paper_example(256, 256), cache=cache)
        cached_seconds = (time.perf_counter() - t0) / repeats

        stats = cache.stats()
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(hit_rate=round(stats.hit_rate, 4))
        print()
        print(f"plan cache after {repeats} re-compilations: {stats.hits} hits, "
              f"{stats.misses} miss(es), hit rate {stats.hit_rate:.1%}, "
              f"{cached_seconds * 1e6:.0f} us per cached compile")
        assert cached is cold
        assert stats.misses == 1
        assert stats.hits == repeats

    def test_bench_shared_cache_across_consumers(self, benchmark):
        """Eval-style reuse: figure2 + table1 + DSE hit one shared cache."""
        from repro.eval.figure2 import run_figure2
        from repro.eval.table1 import run_table1

        clear_plan_cache()

        def consumers():
            run_figure2(iterations=5)
            run_table1()
            return plan_cache.stats()

        stats = run_once(benchmark, consumers)
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(cache_hits=stats.hits)
        print()
        print(f"shared plan cache: {stats.entries} entries, {stats.hits} hits, "
              f"{stats.misses} misses")
        # figure2's 11x11 hybrid problem is re-used by table1's hybrid row
        assert stats.hits >= 1


class TestDseSweepBenchmark:
    def test_bench_analytic_sweep_vs_full_simulation(self, benchmark):
        """The acceptance claim: same selected design, measurably faster."""
        candidates = sweep_candidates()
        iterations = 5

        def best_of(fn, rounds=3):
            result, best = None, float("inf")
            for _ in range(rounds):
                t0 = time.perf_counter()
                result = fn()
                best = min(best, time.perf_counter() - t0)
            return result, max(best, 1e-9)

        full, full_seconds = best_of(
            lambda: explore_performance(
                candidates, iterations=iterations, backend="simulate", simulate_front=False
            )
        )
        fast = run_once(
            benchmark, explore_performance, candidates, iterations=iterations
        )
        _, fast_seconds = best_of(
            lambda: explore_performance(candidates, iterations=iterations)
        )

        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(
            sweep_speedup=round(full_seconds / fast_seconds, 2),
            simulated_count=fast.simulated_count,
        )
        print()
        print(fast.format())
        print(f"full simulation : {full.simulated_count} candidates simulated "
              f"in {full_seconds * 1e3:.1f} ms (best of 3)")
        print(f"analytic + front: {fast.simulated_count} candidates simulated "
              f"in {fast_seconds * 1e3:.1f} ms ({full_seconds / fast_seconds:.1f}x faster)")
        assert fast.selected.label == full.selected.label
        assert fast.selected.cycles == full.selected.cycles
        assert fast.simulated_count < full.simulated_count
        # best-of-3 on both sides keeps this ordering robust to scheduler noise;
        # the structural margin is ~(candidates / front) in simulated work
        if not SMOKE:
            assert fast_seconds < full_seconds


def campaign_spec() -> SweepSpec:
    """A 240-point analytic campaign (the acceptance-scale parallel workload).

    Smoke mode shrinks it to 16 points: the parallel/serial/resume contracts
    are still exercised end to end, just not at a scale worth timing.
    """
    if SMOKE:
        grid_sizes = tuple((rows, cols) for rows in (17, 23) for cols in (19, 25))
        reaches = (0, None)
    else:
        grid_sizes = tuple(
            (rows, cols) for rows in (17, 23, 29, 37, 41, 47) for cols in (19, 25, 31, 35)
        )
        reaches = (0, 2, 4, 8, None)
    return SweepSpec(
        name="bench-campaign",
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=grid_sizes,
        max_stream_reaches=reaches,
        modes=(StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY),
        backends=("analytic",),
        iterations=3,
    )


class TestParallelCampaignBenchmark:
    def test_bench_parallel_campaign(self, benchmark, tmp_path):
        """The acceptance claim: 200+ points, jobs=4 vs jobs=1, resumable."""
        spec = campaign_spec()
        n_points = spec.size
        if not SMOKE:
            assert n_points >= 200
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
        cpus = cpu_count()

        workbench = Workbench(jobs=jobs)
        clear_plan_cache()
        t0 = time.perf_counter()
        serial = workbench.run(spec, jobs=1)
        serial_seconds = time.perf_counter() - t0

        # Forked workers inherit the parent's plan cache; clear it before each
        # parallel run so the comparison measures real compilation work.
        clear_plan_cache()
        parallel = run_once(benchmark, workbench.run, spec)
        clear_plan_cache()
        t1 = time.perf_counter()
        parallel_again = workbench.run(spec)
        parallel_seconds = max(time.perf_counter() - t1, 1e-9)
        speedup = serial_seconds / parallel_seconds

        checkpoint = tmp_path / "bench-campaign.jsonl"
        first = workbench.run(spec, checkpoint=str(checkpoint))
        resumed = workbench.run(spec, checkpoint=str(checkpoint))

        # A pool with more workers than cores cannot speed anything up: on
        # such hosts (single-core containers, contended CI runners) the
        # recorded "speedup" is a scheduling artefact, not a regression.
        # Label it so the BENCH trajectory stays interpretable and the gate
        # knows to exempt the speedup (see repro.bench.references).
        contended = jobs < 2 or contention(jobs)
        benchmark.extra_info.update(host_extra_info(jobs=jobs))
        benchmark.extra_info.update(
            points=n_points,
            jobs=jobs,
            contended=contended,
            serial_seconds=round(serial_seconds, 4),
            parallel_seconds=round(parallel_seconds, 4),
            parallel_speedup=round(speedup, 3),
            resumed_points=resumed.resumed,
        )
        print()
        print(f"campaign: {n_points} analytic points, jobs={jobs} on {cpus} core(s)"
              f"{' [contended]' if contended else ''}")
        print(f"jobs=1 : {serial_seconds * 1e3:.0f} ms")
        print(f"jobs={jobs} : {parallel_seconds * 1e3:.0f} ms ({speedup:.2f}x vs serial)")
        print(f"resume : {first.evaluated} evaluated first run, "
              f"{resumed.evaluated} on resume ({resumed.resumed} loaded from checkpoint)")

        # Determinism: the parallel campaign is byte-identical to the serial one.
        assert serial.to_json() == parallel.to_json() == parallel_again.to_json()
        # Resume: nothing is re-evaluated when the checkpoint is complete.
        assert first.evaluated == n_points
        assert resumed.evaluated == 0 and resumed.resumed == n_points
        assert resumed.to_json() == serial.to_json()
        if not contended and not SMOKE:
            assert speedup > 1.1
        elif contended:
            print(f"{cpus} core(s), {jobs} jobs: {speedup:.2f}x recorded as "
                  "contended, not asserted")


if __name__ == "__main__":
    from repro.bench.suites import standalone_main

    sys.exit(standalone_main("pipeline"))
