"""Benchmark / regeneration of the in-text resource comparison (experiment E3)."""

import pytest

from benchmarks.conftest import run_once
from repro.eval.paper_constants import PAPER_RESOURCES
from repro.eval.resources_exp import run_resources


class TestResourcesBenchmark:
    def test_bench_resources(self, benchmark):
        """Synthesize both designs and compare against the paper's prose numbers."""
        comparison = run_once(benchmark, run_resources)
        print()
        print(comparison.format())
        rows = comparison.rows()
        # shape: Smache pays ALMs/registers/BRAM for its buffers, the baseline
        # uses almost nothing but no BRAM at all.
        assert rows["baseline"]["bram_bits"] == 0
        assert rows["smache"]["bram_bits"] == PAPER_RESOURCES["smache"]["bram_bits"]
        assert rows["smache"]["registers"] > 3 * rows["baseline"]["registers"]
        assert rows["smache"]["alms"] > 3 * rows["baseline"]["alms"]
