"""Benchmark for the evaluation service (``repro.serve``).

The claim tracked here: a micro-batched server answering **1000 mixed
concurrent requests** (duplicates and unique points interleaved, several
pipelining connections) sustains at least **5x** the throughput of the
per-request scalar loop — a client issuing the same mix one request at a
time against a ``scalar=True`` server (one
:func:`~repro.pipeline.backends.evaluate` call per request, no batching,
no memo) — while every response stays bitwise-equal to the scalar analytic
reference.

Both sides of the comparison pay the same TCP/JSON/asyncio overhead, so the
ratio isolates what the serving layer adds: concurrency admission plus
signature-bucketed batches into :meth:`AnalyticBatchEngine.price_batch`
plus the content-keyed response memo.  A third configuration — the scalar
server under the same *concurrent* load — is recorded too; it separates
what pipelining alone buys from what batching and the memo add on top.
Latency percentiles and the batch-size histogram come straight from the
server's own ``/stats``.

Run standalone with ``python benchmarks/bench_serve.py``; the numbers land
in ``BENCH_serve.json`` via ``--benchmark-json`` and in ``extra_info``.
Set ``REPRO_BENCH_SMOKE=1`` (CI does) to shrink the load and skip the
speedup assertion — smoke runs check the plumbing, not the performance of a
shared runner.
"""

import asyncio
import json
import os
import sys
import time

if __package__ in (None, ""):  # direct invocation: python benchmarks/bench_serve.py
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

from benchmarks.conftest import run_once
from repro.bench.host import cpu_count, host_extra_info, smoke_mode
from repro.pipeline.backends import evaluate
from repro.serve import AsyncServeClient, EvaluationServer
from repro.serve.protocol import make_point, parse_point, result_payload

SMOKE = smoke_mode()

#: Load shape: the acceptance claim is stated over 1000 mixed requests.
N_REQUESTS = 150 if SMOKE else 1000
N_UNIQUE = 30 if SMOKE else 200
CONNECTIONS = 4
CONCURRENCY = 64


def point_mix(count, unique):
    """``count`` specs cycling over ``unique`` distinct grids — duplicates
    interleaved with fresh points, the mix a sweep front-end produces."""
    specs = []
    for index in range(count):
        slot = index % unique
        rows = 9 + slot % 40
        cols = 9 + (slot // 40) % 25
        specs.append(make_point((rows, cols), iterations=5))
    return specs


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def scalar_references(specs):
    """Canonical scalar-reference bytes, one entry per distinct spec."""
    references = {}
    for spec in specs:
        key = canonical(spec)
        if key not in references:
            problem, request = parse_point(spec)
            references[key] = canonical(
                result_payload(evaluate(problem, backend="analytic", request=request))
            )
    return references


def serve_load(specs, *, scalar):
    """Start a server, fire the whole mix concurrently, return
    ``(payloads, elapsed_seconds, stats)``.  Only the gather is timed —
    connection setup and the warm-up ping stay outside the clock."""

    async def main():
        server = EvaluationServer(scalar=scalar)
        host, port = await server.start()
        clients = []
        try:
            for _ in range(CONNECTIONS):
                clients.append(await AsyncServeClient(host, port).connect())
            await clients[0].ping()
            semaphore = asyncio.Semaphore(CONCURRENCY)

            async def one(index, spec):
                async with semaphore:
                    return await clients[index % CONNECTIONS].evaluate_retry(spec)

            t0 = time.perf_counter()
            payloads = await asyncio.gather(
                *(one(index, spec) for index, spec in enumerate(specs))
            )
            elapsed = time.perf_counter() - t0
            stats = await clients[0].stats()
        finally:
            for client in clients:
                await client.close()
            await server.stop()
        return payloads, elapsed, stats

    return asyncio.run(main())


def serve_serial(specs):
    """The per-request scalar loop: one connection, one request at a time,
    against a ``scalar=True`` server.  Returns ``(payloads, elapsed)``."""

    async def main():
        server = EvaluationServer(scalar=True)
        host, port = await server.start()
        client = await AsyncServeClient(host, port).connect()
        try:
            await client.ping()
            t0 = time.perf_counter()
            payloads = [await client.evaluate(spec) for spec in specs]
            elapsed = time.perf_counter() - t0
        finally:
            await client.close()
            await server.stop()
        return payloads, elapsed

    return asyncio.run(main())


class TestServedThroughput:
    def test_bench_batched_vs_scalar_serving(self, benchmark):
        """The acceptance claim: >=5x served throughput from micro-batching."""
        specs = point_mix(N_REQUESTS, N_UNIQUE)
        references = scalar_references(specs)
        cpus = cpu_count()

        batched_payloads, batched_seconds, batched_stats = run_once(
            benchmark, serve_load, specs, scalar=False
        )
        scalar_payloads, scalar_seconds, _ = serve_load(specs, scalar=True)
        serial_payloads, serial_seconds = serve_serial(specs)

        # Every serving mode must be bitwise-equal to the scalar reference
        # before any throughput number is meaningful.
        for payloads in (batched_payloads, scalar_payloads, serial_payloads):
            for spec, payload in zip(specs, payloads):
                assert canonical(payload) == references[canonical(spec)]

        batched_rps = len(specs) / batched_seconds
        scalar_rps = len(specs) / scalar_seconds
        serial_rps = len(specs) / serial_seconds
        speedup = serial_seconds / batched_seconds
        concurrent_speedup = scalar_seconds / batched_seconds
        latency = batched_stats["latency"]
        batches = batched_stats["batches"]
        memo = batched_stats["memo"] or {}
        memo_lookups = memo.get("hits", 0) + memo.get("misses", 0)
        extra = host_extra_info()
        contended = extra["contended"]
        benchmark.extra_info.update(extra)
        benchmark.extra_info.update(
            requests=len(specs),
            unique_points=N_UNIQUE,
            connections=CONNECTIONS,
            concurrency=CONCURRENCY,
            batched_rps=round(batched_rps),
            scalar_concurrent_rps=round(scalar_rps),
            scalar_serial_rps=round(serial_rps),
            speedup_vs_serial_scalar=round(speedup, 2),
            speedup_vs_concurrent_scalar=round(concurrent_speedup, 2),
            p50_ms=latency["p50_ms"],
            p99_ms=latency["p99_ms"],
            batch_flushes=batches["flushes"],
            batch_mean_size=batches["mean_size"],
            batch_histogram=batches["histogram"],
            memo_hit_rate=round(memo.get("hits", 0) / memo_lookups, 4)
            if memo_lookups
            else 0.0,
            engine_hit_rates=batched_stats["engine_hit_rates"],
        )
        print()
        print(
            f"serve: {len(specs)} requests ({N_UNIQUE} unique), "
            f"{CONNECTIONS} connections x {CONCURRENCY} in flight, "
            f"{cpus} core(s){' [contended]' if contended else ''}"
        )
        print(
            f"scalar loop (serial)    : {serial_seconds * 1e3:8.1f} ms "
            f"({serial_rps:9,.0f} req/s)"
        )
        print(
            f"scalar server (pipelined): {scalar_seconds * 1e3:7.1f} ms "
            f"({scalar_rps:9,.0f} req/s)"
        )
        print(
            f"batched server          : {batched_seconds * 1e3:8.1f} ms "
            f"({batched_rps:9,.0f} req/s, {speedup:.1f}x vs the scalar loop, "
            f"{concurrent_speedup:.1f}x vs the pipelined scalar server)"
        )
        print(
            f"latency p50/p99: {latency['p50_ms']:.2f}/{latency['p99_ms']:.2f} ms, "
            f"mean batch {batches['mean_size']}, "
            f"memo hits {memo.get('hits', 0)}/{memo_lookups}"
        )
        if SMOKE:
            print(f"smoke run ({len(specs)} requests): speedup recorded, not asserted")
        elif contended:
            print(f"contended host: {speedup:.1f}x recorded, not asserted")
        else:
            assert speedup >= 5, (
                f"micro-batched serving must be >=5x the per-request scalar "
                f"loop on an uncontended host, measured {speedup:.1f}x"
            )


if __name__ == "__main__":
    from repro.bench.suites import standalone_main

    sys.exit(standalone_main("serve"))
