"""Benchmarks for the fast simulation core.

Two claims are tracked so future PRs can watch the simulator hot path:

* the idle-horizon **fast engine** simulates a fixed, memory-latency-bound
  smache + baseline configuration at >= 3x the cycles/sec of naive per-cycle
  ticking, while staying bit-identical (cycle counts, DRAM traffic, op
  counts, outputs and stall statistics all match — also enforced broadly by
  ``tests/arch/test_parity.py``);
* the **vectorized reference executor** (gather-plan + ``apply_batch``)
  beats the per-cell scalar executor by orders of magnitude on warm plans,
  with exact (bitwise) equality of the produced grids.

The benchmark configuration models a heavily-queued external memory: ~1 us
effective read latency at a 300 MHz fabric clock (``read_latency=300``) with
an 8-deep response window, which makes the stream latency-bound — the regime
the event-driven scheduler is built for.  With the default low-latency
timing the fast path's win is modest; those numbers are printed and recorded
but not asserted.

Run standalone with ``python benchmarks/bench_sim.py``; the numbers land in
``BENCH_sim.json`` via ``--benchmark-json`` and in each test's
``extra_info``.  Set ``REPRO_BENCH_SMOKE=1`` (CI does) to shrink the
workloads and skip the wall-clock speedup assertions — timing on contended
runners is recorded, not enforced; parity is always enforced.
"""

import os
import sys
import time

if __package__ in (None, ""):  # direct invocation: python benchmarks/bench_sim.py
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for _path in (_ROOT, os.path.join(_ROOT, "src")):
        if _path not in sys.path:
            sys.path.insert(0, _path)

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.host import host_extra_info, smoke_mode
from repro.arch.system import BaselineSystem, SmacheSystem
from repro.core.boundary import BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.memory.dram import DRAMTiming
from repro.reference.kernels import AveragingKernel
from repro.reference.stencil_exec import (
    clear_gather_plan_cache,
    gather_plan,
    make_test_grid,
    reference_run,
    reference_step_scalar,
)

SMOKE = smoke_mode()

#: The fixed benchmark configuration: the paper's 11x11 example against a
#: heavily-queued external memory (~1 us read latency at 300 MHz).
BENCH_TIMING = DRAMTiming(random_access_cycles=8, read_latency=300)
BENCH_ITERATIONS = 10 if SMOKE else 50


def _run_system(system_cls, engine: str, timing=None, iterations=BENCH_ITERATIONS):
    """Build, run and time one system; returns (result, seconds)."""
    config = SmacheConfig.paper_example(11, 11)
    system = system_cls(config, iterations=iterations, dram_timing=timing, engine=engine)
    system.load_input(make_test_grid(config.grid))
    t0 = time.perf_counter()
    result = system.run()
    return result, max(time.perf_counter() - t0, 1e-9)


def _assert_parity(naive, fast):
    """The full bit-identity contract between the two engines."""
    assert fast.cycles == naive.cycles
    assert fast.dram_words_read == naive.dram_words_read
    assert fast.dram_words_written == naive.dram_words_written
    assert fast.operations == naive.operations
    assert fast.extra == naive.extra
    assert np.array_equal(fast.output, naive.output)


class TestFastEngineBenchmark:
    def test_bench_smache_cycles_per_sec(self, benchmark):
        """The acceptance claim: >= 3x cycles/sec on the smache configuration."""
        naive, naive_seconds = _run_system(SmacheSystem, "naive", BENCH_TIMING)
        fast, fast_seconds = run_once(
            benchmark, _run_system, SmacheSystem, "fast", BENCH_TIMING
        )
        _assert_parity(naive, fast)

        cps_naive = naive.cycles / naive_seconds
        cps_fast = fast.cycles / fast_seconds
        speedup = cps_fast / cps_naive
        stats = fast.engine_stats
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(
            cycles=naive.cycles,
            iterations=BENCH_ITERATIONS,
            cycles_per_sec_naive=round(cps_naive),
            cycles_per_sec_fast=round(cps_fast),
            speedup=round(speedup, 2),
            skip_ratio=round(stats["skip_ratio"], 4),
            skip_regions=stats["skip_regions"],
        )
        print()
        print(f"smache ({naive.cycles} cycles, latency-bound timing)")
        print(f"  naive: {cps_naive / 1e3:8.0f}k cycles/s")
        print(f"  fast : {cps_fast / 1e3:8.0f}k cycles/s ({speedup:.2f}x, "
              f"skip ratio {stats['skip_ratio']:.1%} over {stats['skip_regions']} regions)")
        if not SMOKE:
            assert speedup >= 3.0

    def test_bench_baseline_cycles_per_sec(self, benchmark):
        """Same measurement on the no-buffering baseline system."""
        naive, naive_seconds = _run_system(BaselineSystem, "naive", BENCH_TIMING)
        fast, fast_seconds = run_once(
            benchmark, _run_system, BaselineSystem, "fast", BENCH_TIMING
        )
        _assert_parity(naive, fast)

        speedup = (fast.cycles / fast_seconds) / (naive.cycles / naive_seconds)
        stats = fast.engine_stats
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(
            cycles=naive.cycles,
            speedup=round(speedup, 2),
            skip_ratio=round(stats["skip_ratio"], 4),
        )
        print()
        print(f"baseline ({naive.cycles} cycles): {speedup:.2f}x cycles/s, "
              f"skip ratio {stats['skip_ratio']:.1%}")
        if not SMOKE:
            assert speedup >= 2.0

    def test_bench_default_timing_overhead(self, benchmark):
        """With ideal low-latency DRAM there is little to skip: the fast
        engine must stay within a few percent of naive (recorded, and
        loosely bounded so a pathological regression fails loudly)."""
        iterations = 5 if SMOKE else 20
        naive, naive_seconds = _run_system(SmacheSystem, "naive", None, iterations)
        fast, fast_seconds = run_once(
            benchmark, _run_system, SmacheSystem, "fast", None, iterations
        )
        _assert_parity(naive, fast)
        ratio = fast_seconds / naive_seconds
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(overhead_ratio=round(ratio, 3))
        print()
        print(f"default timing: fast/naive wall ratio {ratio:.2f} "
              f"(skip ratio {fast.engine_stats['skip_ratio']:.1%})")
        if not SMOKE:
            assert ratio < 1.5


class TestReferenceExecutorBenchmark:
    def test_bench_reference_cells_per_sec(self, benchmark):
        """Vectorized vs scalar golden executor on one fixed workload."""
        shape = (64, 64) if SMOKE else (128, 128)
        iterations = 4 if SMOKE else 10
        grid = GridSpec(shape=shape)
        stencil = StencilShape.four_point_2d()
        boundary = BoundarySpec.paper_2d()
        kernel = AveragingKernel()
        data = make_test_grid(grid, kind="random")

        clear_gather_plan_cache()
        t0 = time.perf_counter()
        gather_plan(grid, stencil, boundary)
        plan_seconds = time.perf_counter() - t0

        def vectorized():
            return reference_run(data, grid, stencil, boundary, kernel, iterations=iterations)

        out_vec = run_once(benchmark, vectorized)
        t0 = time.perf_counter()
        vectorized()
        vec_seconds = max(time.perf_counter() - t0, 1e-9)

        t0 = time.perf_counter()
        out_scalar = reference_step_scalar(data, grid, stencil, boundary, kernel)
        scalar_seconds = max(time.perf_counter() - t0, 1e-9)
        for _ in range(iterations - 1):
            out_scalar = reference_step_scalar(out_scalar, grid, stencil, boundary, kernel)

        assert np.array_equal(out_vec, out_scalar)  # exact, not tolerance

        cells = grid.size * iterations
        scalar_cps = grid.size / scalar_seconds  # first step only
        vec_cps = cells / vec_seconds
        benchmark.extra_info.update(host_extra_info())
        benchmark.extra_info.update(
            grid=list(shape),
            iterations=iterations,
            plan_build_seconds=round(plan_seconds, 4),
            cells_per_sec_scalar=round(scalar_cps),
            cells_per_sec_vectorized=round(vec_cps),
            speedup=round(vec_cps / scalar_cps, 1),
        )
        print()
        print(f"reference executor on {shape[0]}x{shape[1]} x{iterations} steps")
        print(f"  plan build: {plan_seconds * 1e3:.0f} ms (once per grid/stencil/boundary)")
        print(f"  scalar    : {scalar_cps / 1e3:8.0f}k cells/s")
        print(f"  vectorized: {vec_cps / 1e3:8.0f}k cells/s ({vec_cps / scalar_cps:,.0f}x)")
        if not SMOKE:
            assert vec_cps >= 10 * scalar_cps


if __name__ == "__main__":
    from repro.bench.suites import standalone_main

    sys.exit(standalone_main("sim"))
