"""Benchmark / regeneration of Table I (experiment E2).

Regenerates the estimated-vs-actual on-chip memory table for the four
configurations of the paper ({11x11, 1024x1024} x {register-only, hybrid}).
"""

import pytest

from benchmarks.conftest import run_once
from repro.eval.table1 import run_table1


class TestTable1Benchmark:
    def test_bench_table1(self, benchmark):
        """Time the Table I regeneration (includes planning the 1M-element grid)."""
        result = run_once(benchmark, run_table1)
        print()
        print(result.format())
        for row in result.rows:
            # estimates reproduce the paper's estimates exactly
            assert row.estimate == row.paper_estimate
            # and track our synthesized "actuals" closely (the paper's claim)
            assert row.estimate_vs_actual_error() < 0.20

    def test_bench_planner_1024(self, benchmark):
        """Micro-benchmark: planning the 1024x1024 problem from scratch."""
        from repro.core.config import SmacheConfig

        config = SmacheConfig.paper_example(1024, 1024)
        plan = benchmark(config.plan)
        assert plan.stream.reach == 2048
        assert plan.n_static_buffers == 2
