"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (or one of
the ablations documented in DESIGN.md) and prints the same rows the paper
reports, so running

    pytest benchmarks/ --benchmark-only -s

produces both timing information and the paper-vs-measured tables recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (whole simulations), so a single
    timed round is the right granularity; pytest-benchmark still records the
    wall-clock time and keeps the result available for comparison runs.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
