#!/usr/bin/env python
"""Arbitrary stencil shapes and boundary conditions.

The point of Smache (and of this library) is that the stencil does *not* have
to be the friendly 4-point cross: any finite set of offsets, with any mix of
boundary rules per edge, gets a buffer plan and a working cycle-accurate
datapath.  This example exercises three progressively nastier cases:

* an asymmetric stencil reaching 3 rows down and 2 columns right,
* a high-order star stencil (radius 2) with mirrored boundaries,
* a stencil with an extreme "far tap" — an offset many rows away, which is
  exactly the kind of access that forces a static buffer.

Each case is planned, costed, simulated and validated against the NumPy
reference.

Run with:  python examples/arbitrary_stencil.py
"""

import numpy as np

from repro.core.boundary import BoundaryKind, BoundarySpec, EdgeBehaviour
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.pipeline import StencilProblem, compile, evaluate

ITERATIONS = 3


def show_case(name: str, config: SmacheConfig) -> None:
    """Compile one stencil case, then validate all three backends against
    each other: reference output vs simulation, analytic cycles vs simulated."""
    print(f"=== {name} ===")
    design = compile(StencilProblem.from_config(config))
    print(design.describe())

    reference = evaluate(design, backend="reference", iterations=ITERATIONS,
                         input_kind="random")
    sim = evaluate(design, backend="simulate", iterations=ITERATIONS, input_kind="random")
    predicted = evaluate(design, backend="analytic", iterations=ITERATIONS)
    ok = np.allclose(sim.output, reference.output)
    err = (predicted.cycles - sim.cycles) / sim.cycles
    print(f"  simulation      : {sim.cycles} cycles, matches reference: {ok}")
    print(f"  analytic        : {predicted.cycles} cycles predicted ({err:+.2%})")
    assert ok, f"case '{name}' diverged from the reference"
    print()


def main() -> None:
    # Case 1: asymmetric stencil, circular rows / open columns.
    show_case(
        "asymmetric stencil (centre, north, 2 east, 3 south-west)",
        SmacheConfig(
            grid=GridSpec(shape=(20, 24), word_bytes=4),
            stencil=StencilShape.asymmetric_2d(),
            boundary=BoundarySpec.paper_2d(),
            name="asymmetric",
        ),
    )

    # Case 2: radius-2 star stencil with mirrored boundaries everywhere.
    show_case(
        "radius-2 star stencil, mirrored boundaries",
        SmacheConfig(
            grid=GridSpec(shape=(24, 24), word_bytes=4),
            stencil=StencilShape.star_2d(radius=2),
            boundary=BoundarySpec.per_dimension([BoundaryKind.MIRROR, BoundaryKind.MIRROR]),
            name="star-mirror",
        ),
    )

    # Case 3: a far tap many rows away — only a static buffer can serve it
    # without a huge window.
    far_tap = StencilShape.from_offsets(
        [(0, 0), (-1, 0), (0, -1), (0, 1), (1, 0), (15, 0)], name="far-tap"
    )
    show_case(
        "far-tap stencil (a dependency 15 rows ahead), constant-padded edges",
        SmacheConfig(
            grid=GridSpec(shape=(18, 32), word_bytes=4),
            stencil=far_tap,
            boundary=BoundarySpec(
                edges=(
                    EdgeBehaviour.both(BoundaryKind.CIRCULAR),
                    EdgeBehaviour.both(BoundaryKind.CONSTANT),
                ),
                constant_value=0.5,
            ),
            name="far-tap",
        ),
    )


if __name__ == "__main__":
    main()
