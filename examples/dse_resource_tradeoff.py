#!/usr/bin/env python
"""Design-space exploration: trading registers against BRAM bits.

Section IV of the paper demonstrates the value of the hybrid stream buffer on
a 1-million-element grid: the register-only mapping (Case-R) needs ~66K
registers, while the hybrid mapping (Case-H) needs only ~1.5K registers at the
price of more BRAM bits.  This example runs that exploration with the DSE
module:

1. sweep the register/BRAM split of the stream buffer for a 1024x1024 grid,
2. print the Pareto front of the sweep,
3. pick the best mapping under two different scarcity assumptions
   (register-scarce vs BRAM-scarce),
4. check which mappings fit a small edge-class device once the kernel's own
   resource budget is reserved,
5. run a whole-problem performance sweep through the pipeline: the full
   candidate space is priced with the closed-form `analytic` backend and only
   the cycles/memory Pareto front is re-run cycle-accurately (sharded over
   two worker processes via `jobs=2`), and
6. run the same exploration as a *declarative campaign* through the sweep
   engine: describe the space once, execute it on a process pool with a
   resumable JSONL checkpoint, and re-run to show that completed points are
   loaded instead of re-evaluated.

Run with:  python examples/dse_resource_tradeoff.py
"""

import os
import tempfile
from dataclasses import replace

from repro.api import Workbench
from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.dse import (
    explore_partitions,
    minimise_bram_bits,
    minimise_registers,
    select_best,
)
from repro.dse.explorer import pareto_front
from repro.fpga.device import small_device, stratix_v
from repro.fpga.resources import ResourceUsage
from repro.pipeline import StencilProblem

GRID = (1024, 1024)


def main() -> None:
    config = SmacheConfig.paper_example(*GRID)
    device = stratix_v()
    # Assume the surrounding computation kernel and shell already consume a
    # slice of the device; the front-end has to fit in what is left.
    reserved = ResourceUsage(alms=40_000, registers=150_000, bram_bits=10_000_000)

    print(f"=== sweep: register/BRAM split of the stream buffer ({GRID[0]}x{GRID[1]}) ===")
    points = explore_partitions(config, device=device, steps=8, reserved=reserved)
    header = f"{'mapping':<34}{'Rtotal bits':>14}{'Btotal bits':>14}{'Fmax MHz':>10}{'fits':>6}"
    print(header)
    for p in points:
        print(
            f"{p.label:<34}{p.cost.r_total_bits:>14}{p.cost.b_total_bits:>14}"
            f"{p.synthesis.fmax_mhz:>10.1f}{str(p.fits):>6}"
        )

    print("\n=== Pareto front (register bits vs BRAM bits) ===")
    for p in pareto_front(points):
        print(f"  {p.label:<34} R={p.cost.r_total_bits:<8} B={p.cost.b_total_bits}")

    print("\n=== best mapping under different scarcity assumptions ===")
    register_scarce = select_best(points, minimise_registers)
    bram_scarce = select_best(points, minimise_bram_bits)
    print(f"  register-scarce design -> {register_scarce.label} "
          f"(R={register_scarce.cost.r_total_bits}, B={register_scarce.cost.b_total_bits})")
    print(f"  BRAM-scarce design     -> {bram_scarce.label} "
          f"(R={bram_scarce.cost.r_total_bits}, B={bram_scarce.cost.b_total_bits})")

    print("\n=== feasibility on a small edge-class device ===")
    edge = small_device()
    edge_points = explore_partitions(config, device=edge, steps=8)
    feasible = [p for p in edge_points if p.fits]
    print(f"  {len(feasible)}/{len(edge_points)} mappings fit {edge.name}")
    best_edge = select_best(edge_points, minimise_bram_bits)
    if best_edge is None:
        print("  no mapping fits; the problem needs a larger device or tiling")
    else:
        util = edge.utilisation(best_edge.synthesis.usage)
        print(f"  chosen mapping: {best_edge.label}")
        print(f"  utilisation   : {util['registers']:.1%} registers, "
              f"{util['bram_bits']:.1%} BRAM, {util['alms']:.1%} ALMs")

    print("\n=== whole-problem performance sweep (analytic + Pareto re-simulation) ===")
    base = StencilProblem.paper_example(48, 48)
    candidates = [
        replace(
            base,
            max_stream_reach=reach,
            name=f"48x48-reach<={reach}" if reach is not None else "48x48-unconstrained",
        )
        for reach in (8, 16, 32, 48, 96, None)
    ]
    workbench = Workbench(jobs=2)
    sweep = workbench.explore(candidates, iterations=3)
    print(sweep.format())
    print(f"\n  {len(sweep.points)} candidates priced analytically, "
          f"{sweep.simulated_count} re-simulated (the Pareto front)")
    print(f"  selected: {sweep.selected.label} "
          f"({sweep.selected.cycles} cycles, {sweep.selected.total_bits} bits on chip)")

    print("\n=== declarative campaign: spec -> run -> resume -> report ===")
    checkpoint = os.path.join(tempfile.mkdtemp(prefix="smache-campaign-"), "tradeoff.jsonl")

    def tradeoff_campaign():
        # Successive halving prices all 18 points analytically and
        # re-simulates only the best half; two worker processes share the
        # load.  (`python -m repro.sweep follow <checkpoint>` can tail this
        # from another terminal.)
        return (
            workbench.problem(StencilProblem.paper_example(48, 48))
            .sweep(
                "tradeoff",
                grid_sizes=[(24, 24), (48, 48), (96, 96)],
                max_stream_reaches=[8, 32, None],
                modes=[StreamBufferMode.HYBRID, StreamBufferMode.REGISTER_ONLY],
                iterations=3,
            )
            .strategy("halving", eta=2)
            .checkpoint(checkpoint)
            .run()
        )

    campaign = tradeoff_campaign()
    print(campaign.format(max_rows=12))
    resumed = tradeoff_campaign()
    print(f"\n  re-run from {checkpoint}: {resumed.evaluated} evaluated, "
          f"{resumed.resumed} resumed from checkpoint (no point ran twice)")
    print(f"  regression check vs first run: {campaign.diff(resumed).format()}")


if __name__ == "__main__":
    main()
