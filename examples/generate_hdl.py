#!/usr/bin/env python
"""Automatic generation of a Smache HDL skeleton (the paper's future work).

The paper's stated key future work is to "completely automate the creation of
the Smache architecture given a problem with a particular stencil shape and
boundary conditions".  The `repro.hdlgen` package does exactly that for this
reproduction: from a `SmacheConfig` it derives the buffer plan and emits

* `smache_params.vh` — the parameter layer (window geometry, tap positions,
  static-buffer regions, register/BRAM split),
* `smache_top.v`     — a structural Verilog skeleton of the front-end
  (window buffer, double-buffered static buffers, the three controller FSMs),
* `smache_top_tb.v`  — a testbench stub with the expected per-instance totals.

This example generates the files for two different problems into ./generated/
and shows that only the parameter header changes between structurally
compatible problems (the two-level customisation of Section III).

Run with:  python examples/generate_hdl.py
"""

from pathlib import Path

from repro.pipeline import StencilProblem, evaluate

OUTPUT_DIR = Path(__file__).resolve().parent / "generated"


def strip_comments(text: str) -> str:
    return "\n".join(line for line in text.splitlines() if not line.lstrip().startswith("//"))


def generate_project(problem: StencilProblem):
    """Generate the Verilog project through the pipeline's ``hdl`` backend."""
    return evaluate(problem, backend="hdl").artifacts["project"]


def main() -> None:
    # problem 1: the paper's validation case
    paper = StencilProblem.paper_example(11, 11)
    # problem 2: the same stencil/boundary structure on a much larger grid
    large = StencilProblem.paper_example(1024, 1024)

    for problem, subdir in ((paper, "paper_11x11"), (large, "large_1024x1024")):
        project = generate_project(problem)
        written = project.write_to(OUTPUT_DIR / subdir)
        print(f"=== {problem.name} ===")
        for path in written:
            print(f"  wrote {path}")
        header = project.files["smache_params.vh"]
        interesting = [
            line for line in header.splitlines()
            if any(key in line for key in ("WINDOW_DEPTH", "REG_SLOTS", "BRAM_SLOTS",
                                           "N_STATIC_BUFS", "SB0_BASE", "SB1_BASE"))
        ]
        print("\n".join("  " + line for line in interesting))
        print()

    # the structural layer (the module body) is identical for both problems:
    module_paper = generate_project(paper).files["smache_top.v"]
    module_large = generate_project(large).files["smache_top.v"]
    same_structure = strip_comments(module_paper) == strip_comments(module_large)
    print(f"structural Verilog identical across the two problems: {same_structure}")
    print("(only the generated parameter header differs — the paper's two-level customisation)")


if __name__ == "__main__":
    main()
