#!/usr/bin/env python
"""A zonally-periodic ocean-style diffusion model on Smache.

The paper's motivation is scientific models whose circular boundary
conditions create stencil offsets as large as the whole grid.  A classic
example is a model on a cylindrical domain — periodic east-west (the flow
wraps around the globe), closed north-south.  This example builds exactly
that: an explicit heat-diffusion step on a 48x96 grid, periodic in the
*column* dimension and open in the *row* dimension, and runs it through the
compilation pipeline.

Note how the buffer plan changes compared with the quickstart: the periodic
dimension is now the *fast* (contiguous) one, so the wrap-around offsets are
only +-(columns-1) and the planner decides they are cheap enough to keep in
the stream window — no static buffers are needed.  Flipping the periodicity
to the row dimension (the paper's case) brings the static buffers back.
That is the "arbitrary boundaries" story of the paper in one script.

The analytic backend predicts each variant's cycles and traffic before any
clock is stepped; the cycle-accurate simulation then confirms it.

Run with:  python examples/ocean_diffusion.py
"""

import numpy as np

from repro.core.boundary import BoundaryKind, BoundarySpec, EdgeBehaviour
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.pipeline import StencilProblem, compile, evaluate
from repro.reference import WeightedKernel
from repro.reference.stencil_exec import make_test_grid

ROWS, COLS = 48, 96
ITERATIONS = 5
NU = 0.2  # diffusion number (stable for the explicit scheme)


def build_problem(periodic_dimension: int) -> StencilProblem:
    """A diffusion problem periodic in the given dimension, open in the other."""
    edges = [
        EdgeBehaviour.both(
            BoundaryKind.CIRCULAR if d == periodic_dimension else BoundaryKind.OPEN
        )
        for d in range(2)
    ]
    return StencilProblem(
        grid=GridSpec(shape=(ROWS, COLS), word_bytes=4),
        stencil=StencilShape.five_point_2d(),
        boundary=BoundarySpec(edges=tuple(edges)),
        kernel=WeightedKernel.diffusion_2d(nu=NU),
        name=f"ocean-periodic-dim{periodic_dimension}",
    )


def main() -> None:
    for periodic_dimension, label in ((1, "periodic east-west (fast dimension)"),
                                      (0, "periodic north-south (slow dimension)")):
        design = compile(build_problem(periodic_dimension))
        print(f"=== {label} ===")
        print(design.describe())

        reference = evaluate(design, backend="reference", iterations=ITERATIONS,
                             input_kind="impulse")
        smache = evaluate(design, backend="simulate", iterations=ITERATIONS,
                          input_kind="impulse")
        assert np.allclose(smache.output, reference.output), \
            "Smache diverged from the reference model"

        baseline = evaluate(design, backend="simulate", system="baseline",
                            iterations=ITERATIONS, input_kind="impulse")
        assert np.allclose(baseline.output, reference.output)

        predicted = evaluate(design, backend="analytic", iterations=ITERATIONS)
        grid_in = make_test_grid(design.problem.grid, kind="impulse")

        print(f"  heat conserved      : {np.isclose(smache.output.sum(), grid_in.sum())}")
        print(f"  smache cycles       : {smache.cycles}  "
              f"(analytic predicted {predicted.cycles}, "
              f"{(predicted.cycles - smache.cycles) / smache.cycles:+.2%})")
        print(f"  baseline cycles     : {baseline.cycles}")
        print(f"  DRAM traffic        : {smache.dram_traffic_kib:.1f} KiB vs "
              f"{baseline.dram_traffic_kib:.1f} KiB (baseline)")
        print(f"  traffic ratio       : {smache.dram_traffic_kib / baseline.dram_traffic_kib:.1%}")
        print()


if __name__ == "__main__":
    main()
