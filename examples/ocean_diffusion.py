#!/usr/bin/env python
"""A zonally-periodic ocean-style diffusion model on Smache.

The paper's motivation is scientific models whose circular boundary
conditions create stencil offsets as large as the whole grid.  A classic
example is a model on a cylindrical domain — periodic east-west (the flow
wraps around the globe), closed north-south.  This example builds exactly
that: an explicit heat-diffusion step on a 48x96 grid, periodic in the
*column* dimension and open in the *row* dimension, and runs it through the
cycle-accurate Smache system.

Note how the buffer plan changes compared with the quickstart: the periodic
dimension is now the *fast* (contiguous) one, so the wrap-around offsets are
only +-(columns-1) and the planner decides they are cheap enough to keep in
the stream window — no static buffers are needed.  Flipping the periodicity
to the row dimension (the paper's case) brings the static buffers back.
That is the "arbitrary boundaries" story of the paper in one script.

Run with:  python examples/ocean_diffusion.py
"""

import numpy as np

from repro.core.boundary import BoundaryKind, BoundarySpec, EdgeBehaviour
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.arch.system import run_smache, run_baseline
from repro.reference import WeightedKernel, reference_run
from repro.reference.stencil_exec import make_test_grid

ROWS, COLS = 48, 96
ITERATIONS = 5
NU = 0.2  # diffusion number (stable for the explicit scheme)


def build_config(periodic_dimension: int) -> SmacheConfig:
    """A diffusion problem periodic in the given dimension, open in the other."""
    edges = [
        EdgeBehaviour.both(
            BoundaryKind.CIRCULAR if d == periodic_dimension else BoundaryKind.OPEN
        )
        for d in range(2)
    ]
    return SmacheConfig(
        grid=GridSpec(shape=(ROWS, COLS), word_bytes=4),
        stencil=StencilShape.five_point_2d(),
        boundary=BoundarySpec(edges=tuple(edges)),
        name=f"ocean-periodic-dim{periodic_dimension}",
    )


def main() -> None:
    kernel = WeightedKernel.diffusion_2d(nu=NU)

    for periodic_dimension, label in ((1, "periodic east-west (fast dimension)"),
                                      (0, "periodic north-south (slow dimension)")):
        config = build_config(periodic_dimension)
        analysis = config.analysis()
        print(f"=== {label} ===")
        print(analysis.describe())

        grid_in = make_test_grid(config.grid, kind="impulse")
        reference = reference_run(
            grid_in, config.grid, config.stencil, config.boundary, kernel, iterations=ITERATIONS
        )
        smache = run_smache(config, grid_in, iterations=ITERATIONS, kernel=kernel)
        assert np.allclose(smache.output, reference), "Smache diverged from the reference model"

        baseline = run_baseline(config, grid_in, iterations=ITERATIONS, kernel=kernel)
        assert np.allclose(baseline.output, reference)

        print(f"  heat conserved      : {np.isclose(smache.output.sum(), grid_in.sum())}")
        print(f"  smache cycles       : {smache.cycles}  ({smache.cycles_per_point:.2f} per point)")
        print(f"  baseline cycles     : {baseline.cycles}  ({baseline.cycles_per_point:.2f} per point)")
        print(f"  DRAM traffic        : {smache.dram_traffic_kib:.1f} KiB vs "
              f"{baseline.dram_traffic_kib:.1f} KiB (baseline)")
        print(f"  traffic ratio       : {smache.dram_traffic_kib / baseline.dram_traffic_kib:.1%}")
        print()


if __name__ == "__main__":
    main()
