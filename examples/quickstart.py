#!/usr/bin/env python
"""Quickstart: the paper's validation case end to end.

This example walks the public API through the exact scenario the paper uses
to validate Smache: an 11x11 grid, a 4-point averaging stencil, circular
boundaries at the horizontal edges and open boundaries at the vertical edges.

It shows, in order:

1. describing the problem (`SmacheConfig`),
2. the static analysis and buffer plan (how many static buffers, how big a
   window),
3. the memory cost estimate (Table I style),
4. cycle-accurate simulation of the Smache system and of the no-buffering
   baseline, checked against the NumPy reference,
5. the Figure-2 style comparison (cycles, DRAM traffic, Fmax, time, MOPS).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import SmacheConfig
from repro.arch.system import run_baseline, run_smache
from repro.fpga.synthesis import synthesize_baseline, synthesize_smache
from repro.reference import AveragingKernel, reference_run
from repro.reference.stencil_exec import make_test_grid

ITERATIONS = 20  # the paper runs 100; 20 keeps the example snappy


def main() -> None:
    # 1. describe the problem ------------------------------------------------
    config = SmacheConfig.paper_example(rows=11, cols=11)
    print("=== problem ===")
    print(config.grid.describe())
    print(f"stencil    : {config.stencil}")
    print(f"boundaries : {config.boundary.describe()}")
    print()

    # 2. static analysis and buffer plan --------------------------------------
    analysis = config.analysis()
    print("=== static analysis ===")
    print(analysis.describe())
    print()

    # 3. memory cost estimate --------------------------------------------------
    cost = config.cost_estimate()
    print("=== on-chip memory estimate (hybrid stream buffer) ===")
    for key, value in cost.as_table_row().items():
        print(f"  {key:>7}: {value} bits")
    print()

    # 4. cycle-accurate simulation vs the NumPy reference ----------------------
    kernel = AveragingKernel()
    grid_in = make_test_grid(config.grid, kind="ramp")
    reference = reference_run(
        grid_in, config.grid, config.stencil, config.boundary, kernel, iterations=ITERATIONS
    )
    smache = run_smache(config, grid_in, iterations=ITERATIONS, kernel=kernel)
    baseline = run_baseline(config, grid_in, iterations=ITERATIONS, kernel=kernel)
    assert np.allclose(smache.output, reference), "Smache output diverged from the reference"
    assert np.allclose(baseline.output, reference), "baseline output diverged from the reference"
    print("=== simulation (both designs match the NumPy reference) ===")
    print(f"  iterations          : {ITERATIONS}")
    print(f"  smache cycles       : {smache.cycles}")
    print(f"  baseline cycles     : {baseline.cycles}")
    print(f"  smache DRAM traffic : {smache.dram_traffic_kib:.1f} KiB")
    print(f"  baseline DRAM traffic: {baseline.dram_traffic_kib:.1f} KiB")
    print()

    # 5. Figure-2 style comparison ---------------------------------------------
    smache_fmax = synthesize_smache(config, kernel=kernel).fmax_mhz
    baseline_fmax = synthesize_baseline(config, kernel=kernel).fmax_mhz
    print("=== Figure-2 style comparison ===")
    header = f"{'':<10}{'cycles':>10}{'Fmax MHz':>10}{'KiB':>8}{'time us':>10}{'MOPS':>10}"
    print(header)
    for name, sim, fmax in (("baseline", baseline, baseline_fmax), ("smache", smache, smache_fmax)):
        print(
            f"{name:<10}{sim.cycles:>10}{fmax:>10.1f}{sim.dram_traffic_kib:>8.1f}"
            f"{sim.execution_time_us(fmax):>10.1f}{sim.mops(fmax):>10.1f}"
        )
    speedup = baseline.execution_time_us(baseline_fmax) / smache.execution_time_us(smache_fmax)
    print(f"\nsimulated speed-up: {speedup:.2f}x "
          f"(the paper reports ~3x for 100 iterations)")


if __name__ == "__main__":
    main()
