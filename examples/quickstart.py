#!/usr/bin/env python
"""Quickstart: the paper's validation case end to end, through the pipeline.

This example walks the public API through the exact scenario the paper uses
to validate Smache: an 11x11 grid, a 4-point averaging stencil, circular
boundaries at the horizontal edges and open boundaries at the vertical edges.

It shows, in order:

1. describing the problem (`StencilProblem`),
2. compiling it once (`repro.pipeline.compile`): static analysis, buffer
   plan, register/BRAM partition, memory cost and synthesis estimate,
3. evaluating the compiled design with three interchangeable backends —
   the NumPy `reference`, the cycle-accurate `simulate` and the closed-form
   `analytic` model — and checking they agree,
4. the Figure-2 style comparison (cycles, DRAM traffic, Fmax, time, MOPS).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import StencilProblem, compile, evaluate
from repro.fpga.synthesis import synthesize_baseline

ITERATIONS = 20  # the paper runs 100; 20 keeps the example snappy


def main() -> None:
    # 1. describe the problem ------------------------------------------------
    problem = StencilProblem.paper_example(rows=11, cols=11)
    print("=== problem ===")
    print(problem.describe())
    print()

    # 2. compile once: plan, partition, cost, synthesis ------------------------
    design = compile(problem)
    print("=== compiled design ===")
    print(design.describe())
    print()

    # 3. one design, three backends --------------------------------------------
    reference = evaluate(design, backend="reference", iterations=ITERATIONS)
    smache = evaluate(design, backend="simulate", iterations=ITERATIONS)
    analytic = evaluate(design, backend="analytic", iterations=ITERATIONS)
    baseline = evaluate(design, backend="simulate", system="baseline", iterations=ITERATIONS)
    assert np.allclose(smache.output, reference.output), "Smache diverged from the reference"
    assert np.allclose(baseline.output, reference.output), "baseline diverged from the reference"
    cycle_error = (analytic.cycles - smache.cycles) / smache.cycles
    print("=== evaluation (simulated outputs match the NumPy reference) ===")
    print(f"  iterations           : {ITERATIONS}")
    print(f"  smache cycles        : {smache.cycles} simulated, "
          f"{analytic.cycles} analytic ({cycle_error:+.2%})")
    print(f"  baseline cycles      : {baseline.cycles}")
    print(f"  smache DRAM traffic  : {smache.dram_traffic_kib:.1f} KiB "
          f"(analytic: {analytic.dram_traffic_kib:.1f} KiB)")
    print(f"  baseline DRAM traffic: {baseline.dram_traffic_kib:.1f} KiB")
    print()

    # 4. Figure-2 style comparison ---------------------------------------------
    smache_fmax = design.fmax_mhz
    baseline_fmax = synthesize_baseline(design.config, kernel=problem.effective_kernel).fmax_mhz
    print("=== Figure-2 style comparison ===")
    header = f"{'':<10}{'cycles':>10}{'Fmax MHz':>10}{'KiB':>8}{'time us':>10}{'MOPS':>10}"
    print(header)
    for name, sim, fmax in (("baseline", baseline, baseline_fmax), ("smache", smache, smache_fmax)):
        print(
            f"{name:<10}{sim.cycles:>10}{fmax:>10.1f}{sim.dram_traffic_kib:>8.1f}"
            f"{sim.execution_time_us(fmax):>10.1f}{sim.mops(fmax):>10.1f}"
        )
    speedup = baseline.execution_time_us(baseline_fmax) / smache.execution_time_us(smache_fmax)
    print(f"\nsimulated speed-up: {speedup:.2f}x "
          f"(the paper reports ~3x for 100 iterations)")


if __name__ == "__main__":
    main()
