#!/usr/bin/env python
"""Tour of the unified experiment API: one `Workbench` for everything.

The Workbench is the session object behind every experiment in this repo:
it owns the plan cache, the evaluation backends, the runner policy and the
campaign event stream.  This example walks the whole surface:

1. build a problem fluently and evaluate it at three fidelities,
2. run a declarative campaign with a live progress observer (points/sec,
   ETA) and a resumable JSONL checkpoint,
3. attach a custom observer to the campaign's typed event stream,
4. resume the campaign (nothing re-runs) and diff the two results — the
   regression-tracking primitive behind `python -m repro.sweep diff`.

Run with:  python examples/workbench_tour.py
"""

import os
import sys
import tempfile

from repro.api import Workbench
from repro.sweep import RunObserver


class DramTrafficWatch(RunObserver):
    """A custom observer: flag completed points with heavy DRAM traffic."""

    def __init__(self, threshold_kib: float) -> None:
        self.threshold_kib = threshold_kib
        self.heavy = []

    def on_point_completed(self, event) -> None:
        record = event.record
        if record.dram_traffic_kib and record.dram_traffic_kib > self.threshold_kib:
            self.heavy.append(record)
            print(f"  [watch] {record.label}: {record.dram_traffic_kib:.1f} KiB of DRAM traffic")


def main() -> None:
    workbench = Workbench(jobs=2)

    print("=== one problem, three fidelities ===")
    problem = workbench.problem(rows=11, cols=11).named("tour")
    golden = problem.evaluate(backend="reference", iterations=20)
    simulated = problem.evaluate(backend="simulate", iterations=20)
    predicted = problem.evaluate(backend="analytic", iterations=20)
    print(f"  reference ops : {golden.operations}")
    print(f"  simulated     : {simulated.cycles} cycles")
    print(f"  analytic      : {predicted.cycles} cycles "
          f"({abs(predicted.cycles - simulated.cycles) / simulated.cycles:.1%} off)")

    print("\n=== a campaign with live progress and a custom observer ===")
    checkpoint = os.path.join(tempfile.mkdtemp(prefix="smache-tour-"), "tour.jsonl")
    watch = DramTrafficWatch(threshold_kib=10.0)
    campaign = (
        problem.sweep(
            "tour",
            grid_sizes=[(11, 11), (16, 16), (24, 24)],
            max_stream_reaches=[0, 4, None],
            iterations=2,
        )
        .checkpoint(checkpoint)
        .observe(watch)
        .with_progress(stream=sys.stdout, min_interval=0.0)
        .run()
    )
    print(campaign.format(max_rows=6))
    print(f"  {len(watch.heavy)} heavy-traffic point(s) flagged by the observer")

    print("\n=== resume + regression diff ===")
    resumed = (
        problem.sweep(
            "tour",
            grid_sizes=[(11, 11), (16, 16), (24, 24)],
            max_stream_reaches=[0, 4, None],
            iterations=2,
        )
        .checkpoint(checkpoint)
        .run()
    )
    print(f"  resumed run: {resumed.evaluated} evaluated, {resumed.resumed} resumed")
    print(f"  diff vs first run: {campaign.diff(resumed).format()}")
    print(f"\n  plan cache this session: {workbench.cache_info().hits} hits / "
          f"{workbench.cache_info().misses} misses")
    print(f"  tail any live campaign with: python -m repro.sweep follow {checkpoint}")


if __name__ == "__main__":
    main()
