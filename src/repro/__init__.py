"""Smache reproduction: smart-caching for arbitrary stencils and boundaries on FPGAs.

This package reproduces, in pure Python, the system described in

    Nabi & Vanderbauwhede, "Smart-Cache: Optimising Memory Accesses for
    Arbitrary Boundaries and Stencils on FPGAs", RAW @ IPDPS 2019.

The package is organised as:

``repro.core``
    The paper's primary contribution: the formal stream/static buffering
    model, the buffer-configuration planner (Algorithm 1), the hybrid
    register/BRAM partitioning and the memory-resource cost model.

``repro.sim``
    A cycle-accurate, clocked simulation engine (components, channels,
    FSMs) used to model the hardware prototypes.

``repro.memory``
    Memory substrates: DRAM (streaming vs random access), block RAM and
    register files with FPGA-like port semantics.

``repro.arch``
    The Smache micro-architecture (stream buffer, double-buffered static
    buffers, controller FSMs, kernels) and the no-buffering baseline.

``repro.fpga``
    FPGA device/resource models and the analytical synthesis estimator
    (ALMs, registers, BRAM bits, Fmax).

``repro.reference``
    NumPy golden models used to validate the simulated hardware.

``repro.pipeline``
    The compilation pipeline: a single problem spec, a memoized
    ``compile()`` step and pluggable evaluation backends (cycle-accurate
    simulation, NumPy reference, closed-form analytic model, cost/HDL).

``repro.dse``
    Design-space exploration over buffer configurations and whole
    problems (fast analytic sweeps with Pareto-front re-simulation).

``repro.sweep``
    The parallel sweep engine: declarative campaign specs, serial and
    process-pool runners (cost-balanced chunks), a typed run-event
    stream with pluggable observers, resumable JSONL checkpoints
    (compaction, live ``--follow`` tailing) and adaptive search
    strategies.

``repro.api``
    The unified experiment API: the session-scoped :class:`Workbench`
    owning the plan cache, backends, runner policy and observers, with
    fluent problem/sweep builders.

``repro.eval``
    The experiment harness regenerating every table and figure of the
    paper's evaluation section.
"""

from repro.core.grid import GridSpec, IterationPattern
from repro.core.stencil import StencilShape
from repro.core.boundary import BoundaryKind, BoundarySpec, EdgeBehaviour
from repro.core.config import SmacheConfig, StreamBufferMode
from repro.core.planner import plan_buffers
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.pipeline import (
    CompiledDesign,
    EvaluationRequest,
    EvaluationResult,
    StencilProblem,
    compile,
    evaluate,
    evaluate_batch,
)
from repro.sweep import CampaignResult, SweepSpec, run_campaign
from repro.api import Workbench

__all__ = [
    "Workbench",
    "CampaignResult",
    "SweepSpec",
    "run_campaign",
    "CompiledDesign",
    "EvaluationRequest",
    "EvaluationResult",
    "StencilProblem",
    "compile",
    "evaluate",
    "evaluate_batch",
    "GridSpec",
    "IterationPattern",
    "StencilShape",
    "BoundaryKind",
    "BoundarySpec",
    "EdgeBehaviour",
    "SmacheConfig",
    "StreamBufferMode",
    "plan_buffers",
    "MemoryCostEstimate",
    "estimate_memory_cost",
]

__version__ = "1.0.0"
