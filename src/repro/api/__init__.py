"""The unified experiment API: a session-scoped :class:`Workbench`.

One object to hold what used to be five fragmented entry points:

==============================  =============================================
legacy entry point              Workbench equivalent
==============================  =============================================
``pipeline.compile(p)``         ``wb.compile(p)`` / ``wb.problem(...).compile()``
``pipeline.evaluate(p, ...)``   ``wb.evaluate(p, ...)``
``pipeline.evaluate_batch``     ``wb.evaluate_batch(problems, ...)``
``sweep.run_campaign(spec)``    ``wb.run(spec)`` or the fluent
                                ``wb.problem(...).sweep(...).run()``
``dse.explore_performance``     ``wb.explore(problems, ...)``
==============================  =============================================

Campaigns run through the event-streaming engine of
:mod:`repro.sweep.events`; attach observers session-wide
(``Workbench(observers=[...])``) or per campaign
(``.observe(...)`` / ``.with_progress()``).
"""

from repro.api.workbench import ProblemBuilder, SweepBuilder, Workbench

__all__ = ["ProblemBuilder", "SweepBuilder", "Workbench"]
