"""The :class:`Workbench`: one session object for the whole experiment API.

Historically "run an experiment" was spread over five surfaces —
``compile()``, ``evaluate()``, ``evaluate_batch(jobs=)``, ``run_campaign()``
and the ``dse`` explorer — each carrying its own cache, backend and
parallelism arguments.  The Workbench unifies them: construct one per
session, and it owns

* the **plan cache** every compilation goes through,
* the **runner policy** (default ``jobs``/chunking for batch and campaign
  work),
* the **default backend** for single evaluations and sweeps, and
* the session's **observers**, attached to every campaign's event stream
  (see :mod:`repro.sweep.events`).

The fluent builders lower onto the exact same primitives as the legacy entry
points (:class:`~repro.pipeline.problem.StencilProblem`,
:class:`~repro.sweep.spec.SweepSpec`, the event-streaming campaign engine),
so a Workbench campaign is byte-identical to a legacy ``run_campaign`` call
on the same space::

    from repro.api import Workbench

    wb = Workbench(jobs=4)
    result = (
        wb.problem(rows=11, cols=11)
        .sweep(grid_sizes=[(11, 11), (24, 24)], max_stream_reaches=[0, 4, None])
        .checkpoint("reach-study.jsonl")
        .with_progress()
        .run()
    )
    print(result.format())
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, List, Optional, Sequence, Union

from repro.core.boundary import BoundarySpec
from repro.faults.policy import RetryPolicy
from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.pipeline.backends import (
    EvaluationRequest,
    EvaluationResult,
    available_backends,
    batch_evaluate,
    evaluate as _evaluate,
)
from repro.pipeline.cache import CacheInfo, PlanCache, plan_cache
from repro.pipeline.compile import CompiledDesign, compile as compile_problem
from repro.pipeline.problem import StencilProblem
from repro.reference.kernels import StencilKernel
from repro.sweep.campaign import CampaignResult, execute_campaign
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.eventlog import EventLogObserver
from repro.sweep.events import ProgressReporter
from repro.sweep.runners import Runner, make_runner
from repro.sweep.spec import SweepSpec
from repro.sweep.strategies import SearchStrategy, get_strategy


class ProblemBuilder:
    """Immutable fluent builder over a :class:`StencilProblem`.

    Every ``with_*`` step returns a new builder, so partially configured
    builders can be forked.  Terminal steps: :meth:`build` (the problem),
    :meth:`compile` / :meth:`evaluate` (one-shot work through the session),
    and :meth:`sweep` (a campaign over axes anchored at this problem).
    """

    def __init__(self, workbench: "Workbench", problem: StencilProblem) -> None:
        self._workbench = workbench
        self._problem = problem

    def _with(self, **changes) -> "ProblemBuilder":
        return ProblemBuilder(self._workbench, replace(self._problem, **changes))

    # ------------------------------------------------------------------ #
    # fluent configuration
    # ------------------------------------------------------------------ #
    def with_stencil(self, stencil: StencilShape) -> "ProblemBuilder":
        """Use this stencil shape."""
        return self._with(stencil=stencil)

    def with_kernel(self, kernel: StencilKernel) -> "ProblemBuilder":
        """Use this computation kernel."""
        return self._with(kernel=kernel)

    def with_boundary(self, boundary: BoundarySpec) -> "ProblemBuilder":
        """Use this boundary specification."""
        return self._with(boundary=boundary)

    def with_mode(self, mode: StreamBufferMode) -> "ProblemBuilder":
        """Use this stream-buffer partitioning mode."""
        return self._with(mode=mode)

    def with_grid(self, shape: Sequence[int], word_bytes: Optional[int] = None) -> "ProblemBuilder":
        """Resize the grid (same word size unless overridden)."""
        grid = self._problem.grid
        return self._with(
            grid=type(grid)(
                shape=tuple(int(s) for s in shape),
                word_bytes=word_bytes if word_bytes is not None else grid.word_bytes,
            )
        )

    def with_reach(self, max_stream_reach: Optional[int]) -> "ProblemBuilder":
        """Constrain the stream buffer's maximum reach (None = unconstrained)."""
        return self._with(max_stream_reach=max_stream_reach)

    def with_budget(self, max_total_bits: Optional[int]) -> "ProblemBuilder":
        """Constrain the total on-chip memory budget."""
        return self._with(max_total_bits=max_total_bits)

    def named(self, name: str) -> "ProblemBuilder":
        """Set the problem's report name."""
        return self._with(name=name)

    # ------------------------------------------------------------------ #
    # terminals
    # ------------------------------------------------------------------ #
    def build(self) -> StencilProblem:
        """The configured problem."""
        return self._problem

    def compile(self) -> CompiledDesign:
        """Compile through the session's plan cache."""
        return self._workbench.compile(self._problem)

    def evaluate(self, backend: Optional[str] = None, **request_overrides) -> EvaluationResult:
        """Compile and evaluate with the session's default backend."""
        return self._workbench.evaluate(self._problem, backend=backend, **request_overrides)

    def sweep(
        self,
        name: Optional[str] = None,
        *,
        grid_sizes: Optional[Sequence[Sequence[int]]] = None,
        stencils: Optional[Sequence[StencilShape]] = None,
        modes: Optional[Sequence[StreamBufferMode]] = None,
        max_stream_reaches: Optional[Sequence[Optional[int]]] = None,
        backends: Optional[Sequence[str]] = None,
        systems: Optional[Sequence[str]] = None,
        iterations: int = 1,
        dram_timing=None,
        write_through: bool = True,
    ) -> "SweepBuilder":
        """Open a campaign over axes anchored at this problem.

        Axes default to "keep the problem's value"; every supplied axis
        multiplies the space — the exact semantics of
        :class:`~repro.sweep.spec.SweepSpec`, which this lowers to.
        """
        spec = SweepSpec(
            name=name if name is not None else self._problem.name,
            base=self._problem,
            grid_sizes=tuple(tuple(g) for g in grid_sizes) if grid_sizes else None,
            stencils=tuple(stencils) if stencils else None,
            modes=tuple(modes) if modes else None,
            max_stream_reaches=(
                tuple(max_stream_reaches) if max_stream_reaches is not None else None
            ),
            backends=tuple(backends) if backends else (self._workbench.default_backend,),
            systems=tuple(systems) if systems else ("smache",),
            iterations=iterations,
            dram_timing=dram_timing,
            write_through=write_through,
        )
        return SweepBuilder(self._workbench, spec)


class SweepBuilder:
    """Fluent campaign configuration over a lowered :class:`SweepSpec`.

    Execution knobs (jobs, checkpoint, strategy, observers) accumulate on
    the builder; :meth:`run` hands everything to the session's campaign
    engine.  :meth:`spec` exposes the lowered spec, so the same builder can
    feed the legacy entry points or tests asserting on the expansion.
    """

    def __init__(self, workbench: "Workbench", spec: SweepSpec) -> None:
        self._workbench = workbench
        self._spec = spec
        self._jobs: Optional[int] = None
        self._checkpoint: Optional[Union[str, CampaignCheckpoint]] = None
        self._strategy: Optional[SearchStrategy] = None
        self._runner: Optional[Runner] = None
        self._chunksize: Optional[int] = None
        self._observers: List[Any] = []
        self._event_log: Optional[Union[str, EventLogObserver]] = None
        self._retry_policy: Optional[RetryPolicy] = None
        self._retry_failed: Optional[bool] = None

    # ------------------------------------------------------------------ #
    def spec(self) -> SweepSpec:
        """The lowered declarative spec."""
        return self._spec

    def jobs(self, jobs: int) -> "SweepBuilder":
        """Override the session's parallelism for this campaign."""
        self._jobs = jobs
        return self

    def chunksize(self, chunksize: Optional[int]) -> "SweepBuilder":
        """Force fixed-size chunks (None keeps cost-aware chunking)."""
        self._chunksize = chunksize
        return self

    def checkpoint(self, path: Union[str, CampaignCheckpoint]) -> "SweepBuilder":
        """Persist completed points to a resumable JSONL checkpoint."""
        self._checkpoint = path
        return self

    def with_event_log(self, path: Union[str, EventLogObserver]) -> "SweepBuilder":
        """Persist the full typed event stream to a JSONL event log.

        Every event of the campaign — starts with worker attribution,
        completions, checkpoint flushes — lands in ``path``,
        fingerprint-guarded like the checkpoint, ready for
        ``python -m repro.sweep replay`` and rich ``--follow``.  Attaching a
        log never changes the canonical campaign result.
        """
        self._event_log = path
        return self

    def strategy(self, strategy: Union[str, SearchStrategy], **kwargs) -> "SweepBuilder":
        """Choose the search strategy (a name like ``"halving"`` or an instance)."""
        self._strategy = (
            get_strategy(strategy, **kwargs) if isinstance(strategy, str) else strategy
        )
        return self

    def with_retry_policy(
        self, policy: Optional[RetryPolicy] = None, **kwargs
    ) -> "SweepBuilder":
        """Run the campaign fault-tolerantly under a retry policy.

        Pass a prepared :class:`~repro.faults.policy.RetryPolicy`, or keyword
        knobs to build one (``max_attempts=5``, ``deadline_s=30.0``, ...).
        Failed attempts are retried with deterministic backoff, stragglers
        re-issued, crashed worker pools respawned, and points that exhaust
        the budget recorded as failed instead of aborting the campaign.
        """
        if policy is not None and kwargs:
            raise TypeError("pass either a RetryPolicy or keyword knobs, not both")
        self._retry_policy = policy if policy is not None else RetryPolicy(**kwargs)
        return self

    def retry_failed(self, retry: bool = True) -> "SweepBuilder":
        """Re-evaluate points a previous session recorded as permanently failed."""
        self._retry_failed = retry
        return self

    def runner(self, runner: Runner) -> "SweepBuilder":
        """Use an explicit executor (overrides jobs)."""
        self._runner = runner
        return self

    def observe(self, *observers: Any) -> "SweepBuilder":
        """Attach event observers for this campaign only."""
        self._observers.extend(observers)
        return self

    def with_progress(self, stream=None, min_interval: float = 0.5) -> "SweepBuilder":
        """Attach a live progress reporter (points/sec, ETA)."""
        return self.observe(ProgressReporter(stream=stream, min_interval=min_interval))

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line summary of the campaign about to run."""
        return self._spec.describe()

    def run(self) -> CampaignResult:
        """Execute the campaign through the session's event-streaming engine."""
        return self._workbench.run(
            self._spec,
            jobs=self._jobs,
            checkpoint=self._checkpoint,
            strategy=self._strategy,
            runner=self._runner,
            chunksize=self._chunksize,
            observers=self._observers,
            event_log=self._event_log,
            retry_policy=self._retry_policy,
            retry_failed=self._retry_failed,
        )


class Workbench:
    """Session facade unifying compile, evaluate, sweep and explore.

    Parameters
    ----------
    jobs:
        Default parallelism for batches and campaigns (overridable per call).
    backend:
        Default evaluation backend (``analytic``: price sweeps with the
        closed-form model, re-simulate what matters).
    cache:
        The plan cache compilations go through.  Defaults to the
        process-global cache, which is also the only cache worker processes
        can share — a private :class:`PlanCache` keeps batches on the serial
        path (exactly like the legacy ``evaluate_batch(cache=...)``).
    observers:
        Session-wide event observers, attached to every campaign this
        workbench runs (per-campaign observers add on top).
    """

    def __init__(
        self,
        jobs: int = 1,
        backend: str = "analytic",
        cache: Optional[PlanCache] = plan_cache,
        observers: Sequence[Any] = (),
        chunksize: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be positive")
        self.jobs = jobs
        self.default_backend = backend
        self.cache = cache
        self.chunksize = chunksize
        self.observers: List[Any] = list(observers)
        self._analytic_engine: Optional[Any] = None
        self._async_batcher: Optional[Any] = None
        self._async_batcher_loop: Optional[Any] = None

    @property
    def analytic_engine(self):
        """The session's vectorized pricing engine (lazy, shared across calls).

        Serial ``evaluate_batch(backend="analytic")`` calls price through
        this :class:`~repro.pipeline.analytic_batch.AnalyticBatchEngine`, so
        the packed per-design knobs survive from one batch to the next —
        re-pricing a space under new timings or instance counts is pure
        array arithmetic.
        """
        if self._analytic_engine is None:
            from repro.pipeline.analytic_batch import AnalyticBatchEngine

            self._analytic_engine = AnalyticBatchEngine()
        return self._analytic_engine

    @classmethod
    def ensure(cls, workbench: Optional["Workbench"], jobs: int = 1) -> "Workbench":
        """The caller's session, or a throwaway one at ``jobs``.

        The shared idiom of every ``workbench=None`` compatibility seam
        (:func:`repro.dse.explorer.explore_performance`, the eval
        experiments): legacy callers keep their ``jobs`` argument working,
        session callers keep their cache and runner policy.
        """
        return workbench if workbench is not None else cls(jobs=jobs)

    # ------------------------------------------------------------------ #
    # problems
    # ------------------------------------------------------------------ #
    def problem(
        self,
        base: Optional[Union[StencilProblem, SmacheConfig]] = None,
        *,
        rows: int = 11,
        cols: int = 11,
        **overrides,
    ) -> ProblemBuilder:
        """Open a fluent problem builder.

        ``base`` may be an existing :class:`StencilProblem` or a plain
        :class:`SmacheConfig`; without one, the paper's validation case at
        ``rows × cols`` seeds the builder.  ``overrides`` are applied as
        dataclass replacements (``mode=...``, ``max_stream_reach=...``).
        """
        if base is None:
            problem = StencilProblem.paper_example(rows, cols)
        elif isinstance(base, SmacheConfig):
            problem = StencilProblem.from_config(base)
        else:
            problem = base
        if overrides:
            problem = replace(problem, **overrides)
        return ProblemBuilder(self, problem)

    def sweep(self, spec: SweepSpec) -> SweepBuilder:
        """Wrap an existing declarative spec in the fluent campaign builder."""
        return SweepBuilder(self, spec)

    # ------------------------------------------------------------------ #
    # one-shot work
    # ------------------------------------------------------------------ #
    def compile(self, problem: Union[StencilProblem, SmacheConfig]) -> CompiledDesign:
        """Compile (memoized in the session's plan cache)."""
        if isinstance(problem, SmacheConfig):
            problem = StencilProblem.from_config(problem)
        return compile_problem(problem, cache=self.cache)

    def evaluate(
        self,
        problem,
        backend: Optional[str] = None,
        request: Optional[EvaluationRequest] = None,
        **request_overrides,
    ) -> EvaluationResult:
        """Compile and evaluate one problem with the session's defaults."""
        return _evaluate(
            problem,
            backend=backend or self.default_backend,
            request=request,
            cache=self.cache,
            **request_overrides,
        )

    async def evaluate_async(
        self,
        problem,
        backend: Optional[str] = None,
        request: Optional[EvaluationRequest] = None,
        **request_overrides,
    ) -> EvaluationResult:
        """Asynchronously evaluate one problem through the session.

        Analytic evaluations are routed through a per-session adaptive
        micro-batcher (:class:`repro.serve.batcher.AdaptiveBatcher`) sharing
        the session's :attr:`analytic_engine`: concurrent ``evaluate_async``
        callers on the same event loop are priced together in one vectorized
        engine call, so ``asyncio.gather`` over a thousand points costs a
        handful of batched folds, not a thousand scalar walks — the same
        substrate the TCP evaluation service (:mod:`repro.serve`) builds on.
        ``REPRO_ANALYTIC_BATCH=0`` falls back to the scalar reference path
        per flushed bucket, byte-identically.  Non-analytic backends (a
        simulation can run for seconds) are handed to the default executor
        so the event loop stays responsive.
        """
        import asyncio

        backend = backend or self.default_backend
        req = request or EvaluationRequest()
        if request_overrides:
            req = replace(req, **request_overrides)
        loop = asyncio.get_running_loop()
        if backend != "analytic":
            return await loop.run_in_executor(
                None, lambda: self.evaluate(problem, backend=backend, request=req)
            )
        if self._async_batcher is None or self._async_batcher_loop is not loop:
            from repro.serve.batcher import AdaptiveBatcher

            self._async_batcher = AdaptiveBatcher(self._price_async_bucket)
            self._async_batcher_loop = loop
        return await self._async_batcher.submit(problem, req)

    def _price_async_bucket(self, problems, request):
        """Flush one micro-batch through the session's engine (or scalar)."""
        from repro.pipeline.analytic_batch import batching_enabled

        if batching_enabled():
            return self.analytic_engine.price_batch(problems, request, cache=self.cache)
        return [
            _evaluate(p, backend="analytic", request=request, cache=self.cache)
            for p in problems
        ]

    def evaluate_batch(
        self,
        problems: Sequence[Any],
        backend: Optional[str] = None,
        request: Optional[EvaluationRequest] = None,
        jobs: Optional[int] = None,
        chunksize: Optional[int] = None,
        with_artifacts: bool = True,
        **request_overrides,
    ) -> List[EvaluationResult]:
        """Evaluate many problems, sharded over the session's runner policy.

        Serial analytic batches price through the session's
        :attr:`analytic_engine`, whose packed-session cache keys on the
        problem list itself: re-pricing the same problems under new request
        knobs (iterations, DRAM timing, write policy) reuses the packed
        design columns and skips compilation outright (see
        :mod:`repro.pipeline.analytic_batch`).  Results always come back in
        input order.  ``with_artifacts=False`` skips per-point prediction
        artifacts when only the metrics matter (bulk scoring loops).
        """
        return batch_evaluate(
            problems,
            backend=backend or self.default_backend,
            request=request,
            cache=self.cache,
            jobs=jobs if jobs is not None else self.jobs,
            chunksize=chunksize if chunksize is not None else self.chunksize,
            engine=self.analytic_engine,
            with_artifacts=with_artifacts,
            **request_overrides,
        )

    # ------------------------------------------------------------------ #
    # campaigns
    # ------------------------------------------------------------------ #
    def runner(self, jobs: Optional[int] = None) -> Runner:
        """A runner at the session's (or an overridden) parallelism degree."""
        return make_runner(
            jobs if jobs is not None else self.jobs, chunksize=self.chunksize
        )

    def run(
        self,
        spec: Union[SweepSpec, SweepBuilder],
        jobs: Optional[int] = None,
        checkpoint: Optional[Union[str, CampaignCheckpoint]] = None,
        strategy: Optional[SearchStrategy] = None,
        runner: Optional[Runner] = None,
        chunksize: Optional[int] = None,
        observers: Sequence[Any] = (),
        progress: bool = False,
        event_log: Optional[Union[str, EventLogObserver]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_failed: Optional[bool] = None,
    ) -> CampaignResult:
        """Run (or resume) a campaign through the event-streaming engine.

        A :class:`SweepBuilder` may be passed directly: everything it
        accumulated (jobs, checkpoint, strategy, runner, chunksize,
        observers, event log) carries over, with explicit arguments to this
        call taking precedence.  Session observers, per-call ``observers``
        and — with ``progress=True`` — a live :class:`ProgressReporter` all
        consume the same event stream; their failures are isolated on
        ``result.observer_errors``.  ``event_log`` persists that stream to a
        JSONL sidecar for ``--follow`` and ``replay``.
        """
        extra_observers: List[Any] = []
        if isinstance(spec, SweepBuilder):
            builder = spec
            jobs = jobs if jobs is not None else builder._jobs
            checkpoint = checkpoint if checkpoint is not None else builder._checkpoint
            strategy = strategy if strategy is not None else builder._strategy
            runner = runner if runner is not None else builder._runner
            chunksize = chunksize if chunksize is not None else builder._chunksize
            event_log = event_log if event_log is not None else builder._event_log
            retry_policy = (
                retry_policy if retry_policy is not None else builder._retry_policy
            )
            retry_failed = (
                retry_failed if retry_failed is not None else builder._retry_failed
            )
            extra_observers = list(builder._observers)
            spec = builder.spec()
        attached = list(self.observers) + extra_observers + list(observers)
        if progress:
            attached.append(ProgressReporter())
        return execute_campaign(
            spec,
            jobs=jobs if jobs is not None else self.jobs,
            checkpoint=checkpoint,
            strategy=strategy,
            runner=runner,
            chunksize=chunksize if chunksize is not None else self.chunksize,
            observers=attached,
            event_log=event_log,
            retry_policy=retry_policy,
            retry_failed=bool(retry_failed),
        )

    # ------------------------------------------------------------------ #
    # exploration and introspection
    # ------------------------------------------------------------------ #
    def explore(self, problems: Sequence[StencilProblem], **kwargs):
        """Whole-problem performance sweep (analytic pricing + Pareto re-sim).

        Delegates to :func:`repro.dse.explorer.explore_performance` with this
        session as the batch engine; see there for parameters.
        """
        from repro.dse.explorer import explore_performance

        return explore_performance(problems, workbench=self, **kwargs)

    def add_observer(self, observer: Any) -> None:
        """Attach a session-wide observer to every future campaign."""
        self.observers.append(observer)

    def backends(self) -> List[str]:
        """Names of every registered evaluation backend."""
        return available_backends()

    def cache_info(self) -> CacheInfo:
        """Counters of the session's plan cache."""
        cache = self.cache if self.cache is not None else plan_cache
        return cache.cache_info()

    def analytic_cache_info(self):
        """Counters of the session's vectorized pricing engine.

        An :class:`repro.pipeline.analytic_batch.EngineCacheInfo`: the knob
        cache (first four fields, :class:`CacheInfo`-shaped) plus the
        packed-session LRU and fold-memo counters the evaluation service's
        ``/stats`` verb reports.
        """
        return self.analytic_engine.cache_info()
