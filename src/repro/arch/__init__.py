"""Cycle-accurate micro-architecture models.

This package is the Python analogue of the paper's Verilog-HDL prototypes:

* :class:`~repro.arch.smache.SmacheFrontEnd` — the Smache module of Fig. 1(b):
  window (stream) buffer, double-buffered static buffers with write-through,
  and the three controller FSMs;
* :class:`~repro.arch.kernel.KernelHW` — the computation kernel (the paper's
  4-point averaging filter, or any :class:`repro.reference.kernels.StencilKernel`);
* :mod:`~repro.arch.baseline` — the no-buffering baseline master that reads
  every stencil operand from DRAM;
* :mod:`~repro.arch.system` — complete systems (DRAM + front-end + kernel +
  write-back) for both designs, returning :class:`~repro.arch.system.SimulationResult`.
"""

from repro.arch.access_table import AccessTable, PointAccess
from repro.arch.kernel import KernelHW, TupleData
from repro.arch.smache import SmacheFrontEnd
from repro.arch.static_buffer import StaticBufferHW
from repro.arch.stream_buffer import WindowBuffer
from repro.arch.system import (
    BaselineSystem,
    SimulationResult,
    SmacheSystem,
    run_baseline,
    run_smache,
)

__all__ = [
    "AccessTable",
    "PointAccess",
    "KernelHW",
    "TupleData",
    "SmacheFrontEnd",
    "StaticBufferHW",
    "WindowBuffer",
    "BaselineSystem",
    "SmacheSystem",
    "SimulationResult",
    "run_baseline",
    "run_smache",
]
