"""Pre-resolved per-position access tables.

In hardware the Smache controller resolves boundary conditions with a handful
of comparators on the row/column counters; the outcome for a given grid
position never changes between work-instances.  The simulation therefore
pre-computes, once per system, the resolved accesses of every grid position.
Both the Smache front-end and the baseline master use the same table, which
also guarantees they agree with the NumPy reference on what each position
reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.boundary import BoundarySpec, ResolutionKind
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape


@dataclass(frozen=True)
class ResolvedAccess:
    """One resolved stencil operand for one grid position."""

    offset: Tuple[int, ...]
    kind: ResolutionKind
    target: Optional[int] = None        # linear grid index, when the operand exists
    constant: Optional[float] = None    # substituted value for CONSTANT boundaries

    @property
    def exists(self) -> bool:
        """True if the operand reads a grid element."""
        return self.target is not None


@dataclass(frozen=True)
class PointAccess:
    """All resolved operands of one grid position."""

    linear: int
    accesses: Tuple[ResolvedAccess, ...]

    @property
    def n_reads(self) -> int:
        """Number of operands that read a grid element."""
        return sum(1 for a in self.accesses if a.exists)


class AccessTable:
    """Resolved accesses for every position of a grid/stencil/boundary triple."""

    def __init__(
        self,
        grid: GridSpec,
        stencil: StencilShape,
        boundary: BoundarySpec,
    ) -> None:
        self.grid = grid
        self.stencil = stencil
        self.boundary = boundary
        self._points: List[PointAccess] = []
        for linear in range(grid.size):
            centre = grid.coord(linear)
            resolved = []
            for point in boundary.resolve_stencil(grid, centre, stencil):
                if point.kind is ResolutionKind.SKIPPED:
                    resolved.append(
                        ResolvedAccess(offset=point.offset, kind=point.kind)
                    )
                elif point.kind is ResolutionKind.CONSTANT:
                    resolved.append(
                        ResolvedAccess(
                            offset=point.offset,
                            kind=point.kind,
                            constant=point.constant_value,
                        )
                    )
                else:
                    resolved.append(
                        ResolvedAccess(
                            offset=point.offset,
                            kind=point.kind,
                            target=point.linear_index,
                        )
                    )
            self._points.append(PointAccess(linear=linear, accesses=tuple(resolved)))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, linear: int) -> PointAccess:
        return self._points[linear]

    def total_element_reads(self) -> int:
        """Total grid-element reads per work-instance (used for traffic checks)."""
        return sum(p.n_reads for p in self._points)

    def max_operands(self) -> int:
        """Largest number of existing operands of any position."""
        return max((p.n_reads for p in self._points), default=0)
