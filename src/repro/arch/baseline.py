"""The no-buffering baseline design.

This is the comparison point of the paper's Figure 2: a straightforward
master that, for every grid point of every work-instance, reads each stencil
operand from DRAM, computes the kernel and writes the result back.  It has no
on-chip stencil buffers, so it performs ``n_points`` word reads per grid point
(4x redundancy for the 4-point stencil) and its access pattern is not
contiguous, which in the paper's argument is exactly what breaks sustained
DRAM bandwidth.

To keep the comparison fair the baseline is still *pipelined*: it issues read
requests back-to-back and overlaps the kernel computation and the result
write with subsequent reads.  The bottleneck is the shared DRAM command bus
(one transaction per cycle), which matches the paper's observed ~5 cycles per
grid point.

Open-boundary operands, which do not exist, are handled the way a naive HDL
master handles them: the address calculation clamps to the centre element and
the fetched word is ignored by the kernel.  The word is still transferred, so
the baseline's DRAM traffic is exactly ``(n_points + 1) * N`` words per
work-instance, matching the paper's traffic accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.arch.access_table import AccessTable
from repro.core.boundary import ResolutionKind
from repro.memory.dram import DRAMCommand, DRAMModel
from repro.reference.kernels import StencilKernel
from repro.sim.engine import Component, Simulator
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class _FetchPlanEntry:
    """Pre-resolved fetch schedule for one grid point."""

    linear: int
    fetch_offsets: Tuple[int, ...]          # relative addresses to fetch (length == n_points)
    participate: Tuple[bool, ...]           # does fetch i feed the kernel?
    offsets: Tuple[Tuple[int, ...], ...]    # grid offsets of the participating fetches
    constant_offsets: Tuple[Tuple[int, ...], ...]
    constant_values: Tuple[float, ...]


def build_fetch_plan(table: AccessTable) -> List[_FetchPlanEntry]:
    """Translate an access table into the baseline's per-point fetch schedule."""
    plan: List[_FetchPlanEntry] = []
    for linear in range(len(table)):
        point = table[linear]
        fetch_rel: List[int] = []
        participate: List[bool] = []
        offsets: List[Tuple[int, ...]] = []
        const_offsets: List[Tuple[int, ...]] = []
        const_values: List[float] = []
        for acc in point.accesses:
            if acc.kind is ResolutionKind.CONSTANT:
                # no fetch needed; the constant is injected at compute time,
                # but the naive master still issues a (dummy) centre read to
                # keep its fetch schedule regular.
                fetch_rel.append(linear)
                participate.append(False)
                const_offsets.append(acc.offset)
                const_values.append(float(acc.constant))
            elif acc.kind is ResolutionKind.SKIPPED:
                fetch_rel.append(linear)
                participate.append(False)
            else:
                fetch_rel.append(acc.target)
                participate.append(True)
                offsets.append(acc.offset)
        plan.append(
            _FetchPlanEntry(
                linear=linear,
                fetch_offsets=tuple(fetch_rel),
                participate=tuple(participate),
                offsets=tuple(offsets),
                constant_offsets=tuple(const_offsets),
                constant_values=tuple(const_values),
            )
        )
    return plan


class BaselineMaster(Component):
    """Issues reads, collects operands, computes and writes back — no buffers."""

    def __init__(
        self,
        sim: Simulator,
        dram: DRAMModel,
        table: AccessTable,
        kernel: StencilKernel,
        iterations: int,
        base_a: int = 0,
        base_b: Optional[int] = None,
        name: str = "baseline",
        stats: Optional[StatsCollector] = None,
    ) -> None:
        super().__init__(sim, name)
        self.dram = dram
        self.table = table
        self.kernel = kernel
        self.iterations = iterations
        self.grid_words = len(table)
        self.base_a = base_a
        self.base_b = base_b if base_b is not None else base_a + self.grid_words
        self.stats = stats or StatsCollector(name)
        self.fetch_plan = build_fetch_plan(table)

        # request side
        self._req_instance = 0
        self._req_point = 0
        self._req_operand = 0
        # response / compute side
        self._rsp_instance = 0
        self._rsp_point = 0
        self._collected: List[float] = []
        self._compute_pipe: Deque[Tuple[int, int, float]] = deque()  # (ready, addr, value)
        self._writes_issued = 0

        self.operations = 0
        self.points_completed = 0

    # ------------------------------------------------------------------ #
    def src_base(self, instance: int) -> int:
        """DRAM base address of the grid copy read by ``instance``."""
        return self.base_a if instance % 2 == 0 else self.base_b

    def dst_base(self, instance: int) -> int:
        """DRAM base address of the grid copy written by ``instance``."""
        return self.base_b if instance % 2 == 0 else self.base_a

    @property
    def done(self) -> bool:
        """True when every work-instance has been computed and written."""
        return (
            self._req_instance >= self.iterations
            and self._rsp_instance >= self.iterations
            and not self._compute_pipe
            and self.dram.writes_completed >= self.iterations * self.grid_words
        )

    def finished(self) -> bool:
        return self.done

    def reset(self) -> None:
        self._req_instance = 0
        self._req_point = 0
        self._req_operand = 0
        self._rsp_instance = 0
        self._rsp_point = 0
        self._collected = []
        self._compute_pipe.clear()
        self._writes_issued = 0
        self.operations = 0
        self.points_completed = 0

    # ------------------------------------------------------------------ #
    def _advance_request(self) -> None:
        entry = self.fetch_plan[self._req_point]
        self._req_operand += 1
        if self._req_operand >= len(entry.fetch_offsets):
            self._req_operand = 0
            self._req_point += 1
            if self._req_point >= self.grid_words:
                self._req_point = 0
                self._req_instance += 1

    def _request_allowed(self) -> bool:
        """A new instance may only start once the previous one is fully in DRAM."""
        if self._req_instance >= self.iterations:
            return False
        if self._req_point == 0 and self._req_operand == 0 and self._req_instance > 0:
            return self.dram.writes_completed >= self._req_instance * self.grid_words
        return True

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        now = self.sim.cycle
        if self.iterations == 0:
            return None
        # _request_allowed gates on dram.writes_completed, which can only
        # move when the DRAM itself acts (and reports that activity), so it
        # is frozen inside any dead region.
        if self._request_allowed() and self.dram.read_cmd.can_push():
            return now
        if self._rsp_instance < self.iterations and self.dram.read_rsp.can_pop():
            return now
        if self._compute_pipe:
            ready = self._compute_pipe[0][0]
            if ready > now:
                return ready  # self-scheduled kernel-latency expiry
            if self.dram.write_cmd.can_push():
                return now
        return None

    def skip_digest(self):
        return (
            self._req_instance,
            self._req_point,
            self._req_operand,
            self._rsp_instance,
            self._rsp_point,
            len(self._collected),
            len(self._compute_pipe),
            self._writes_issued,
        )

    def tick(self) -> None:
        if self.iterations == 0:
            return
        # Issue at most one read request per cycle.
        if self._request_allowed() and self.dram.read_cmd.can_push():
            entry = self.fetch_plan[self._req_point]
            addr = self.src_base(self._req_instance) + entry.fetch_offsets[self._req_operand]
            self.dram.read_cmd.push(DRAMCommand(kind="read", addr=addr, tag=self._req_point))
            self._advance_request()

        # Collect at most one response per cycle.
        if self._rsp_instance < self.iterations and self.dram.read_rsp.can_pop():
            rsp = self.dram.read_rsp.pop()
            self._collected.append(rsp.data)
            entry = self.fetch_plan[self._rsp_point]
            if len(self._collected) == len(entry.fetch_offsets):
                offsets = list(entry.offsets) + list(entry.constant_offsets)
                values = [
                    v for use, v in zip(entry.participate, self._collected) if use
                ] + list(entry.constant_values)
                result = self.kernel.apply(tuple(offsets), tuple(values))
                self.operations += self.kernel.ops_per_point
                self.stats.incr("kernel_ops", self.kernel.ops_per_point)
                dst = self.dst_base(self._rsp_instance) + entry.linear
                self._compute_pipe.append((self.cycle + self.kernel.latency, dst, result))
                self._collected = []
                self._rsp_point += 1
                self.points_completed += 1
                if self._rsp_point >= self.grid_words:
                    self._rsp_point = 0
                    self._rsp_instance += 1

        # Issue at most one write per cycle once the kernel latency has elapsed.
        if (
            self._compute_pipe
            and self._compute_pipe[0][0] <= self.cycle
            and self.dram.write_cmd.can_push()
        ):
            _, addr, value = self._compute_pipe.popleft()
            self.dram.write_cmd.push(DRAMCommand(kind="write", addr=addr, data=value))
            self._writes_issued += 1
