"""The computation kernel as a pipelined hardware block.

:class:`KernelHW` consumes one stencil tuple per cycle (when available),
applies a :class:`repro.reference.kernels.StencilKernel` and emits the result
after a fixed pipeline latency.  The arithmetic itself is delegated to the
kernel object so the cycle-accurate system and the NumPy reference can never
disagree about the mathematics — only about scheduling, which is the point of
the simulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

from repro.reference.kernels import StencilKernel
from repro.sim.channel import Channel
from repro.sim.engine import Component, Simulator
from repro.sim.stats import StatsCollector


@dataclass(frozen=True)
class TupleData:
    """One stencil tuple travelling from the front-end to the kernel."""

    index: int                              # linear index of the centre element
    offsets: Tuple[Tuple[int, ...], ...]    # grid offsets of the existing operands
    values: Tuple[float, ...]               # operand values (parallel to offsets)

    @property
    def n_operands(self) -> int:
        """Number of operands present in the tuple."""
        return len(self.values)


@dataclass(frozen=True)
class KernelResult:
    """One kernel output value."""

    index: int
    value: float


class KernelHW(Component):
    """A pipelined stencil kernel: one tuple in, one result out, fixed latency."""

    def __init__(
        self,
        sim: Simulator,
        kernel: StencilKernel,
        name: str = "kernel",
        stats: StatsCollector | None = None,
        tuple_in: Channel | None = None,
        input_capacity: int = 2,
        output_capacity: int = 2,
    ) -> None:
        super().__init__(sim, name)
        self.kernel = kernel
        self.stats = stats or StatsCollector(name)
        #: Input channel; pass the front-end's ``tuple_out`` to connect them.
        self.tuple_in: Channel = tuple_in if tuple_in is not None else self.channel(
            "tuple_in", input_capacity
        )
        self.result_out: Channel = self.channel("result_out", output_capacity)
        #: In-flight bound of the initiation pipeline; shared by tick() and
        #: next_activity() so the scheduler can never drift from the datapath.
        self._pipe_capacity = max(1, self.kernel.latency) + 2
        self._pipeline: Deque[Tuple[int, KernelResult]] = deque()
        self.tuples_processed = 0
        self.operations = 0
        self.busy_cycles = 0
        self.stall_cycles = 0

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self._pipeline.clear()
        self.tuples_processed = 0
        self.operations = 0
        self.busy_cycles = 0
        self.stall_cycles = 0

    def finished(self) -> bool:
        return not self._pipeline and not self.tuple_in.can_pop()

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        now = self.sim.cycle
        if self.tuple_in.can_pop() and len(self._pipeline) < self._pipe_capacity:
            return now
        if self._pipeline:
            ready = self._pipeline[0][0]
            if ready > now:
                return ready  # self-scheduled retire time
            # Result ready but the output is full: per-cycle stall
            # bookkeeping only, reproduced by skip().
            return now if self.result_out.can_push() else None
        return None

    def skip(self, cycles: int) -> None:
        if (
            self._pipeline
            and self._pipeline[0][0] <= self.sim.cycle
            and not self.result_out.can_push()
        ):
            self.result_out.note_push_stall(cycles)
            self.stall_cycles += cycles

    def skip_digest(self):
        return (len(self._pipeline), self.tuples_processed, self.operations)

    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        # Retire results whose latency has elapsed.
        if self._pipeline and self._pipeline[0][0] <= self.cycle:
            if self.result_out.can_push():
                _, result = self._pipeline.popleft()
                self.result_out.push(result)
            else:
                self.result_out.note_push_stall()
                self.stall_cycles += 1

        # Accept a new tuple if the pipeline has room (one initiation per cycle).
        if self.tuple_in.can_pop() and len(self._pipeline) < self._pipe_capacity:
            data: TupleData = self.tuple_in.pop()
            value = self.kernel.apply(data.offsets, data.values)
            ready = self.cycle + self.kernel.latency
            self._pipeline.append((ready, KernelResult(index=data.index, value=value)))
            self.tuples_processed += 1
            self.operations += self.kernel.ops_per_point
            self.stats.incr("kernel_ops", self.kernel.ops_per_point)
            self.busy_cycles += 1
