"""Shell components around the Smache front-end.

These model the parts of the design that the paper treats as "shell logic":
the DRAM read master that keeps the contiguous stream going, the response
router that separates warm-up prefetch data from stream data, the write-back
unit that returns kernel results to DRAM (and to FSM-3 for write-through), and
the work-instance sequencer that runs the kernel the requested number of
times (the paper's experiment runs it 100 times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.arch.kernel import KernelResult
from repro.arch.smache import SmacheFrontEnd
from repro.memory.dram import DRAMCommand, DRAMModel, DRAMResponse
from repro.sim.channel import Channel
from repro.sim.engine import Component, Simulator
from repro.sim.fsm import FSM
from repro.sim.trace import TraceLog

#: Response tags used to route read data.
TAG_STREAM = 0
TAG_PREFETCH = 1


@dataclass(frozen=True)
class ReadJob:
    """A contiguous read burst to be issued by the read master."""

    base: int
    length: int
    tag: int


class ReadMaster(Component):
    """Issues contiguous DRAM read bursts, one word per cycle."""

    def __init__(self, sim: Simulator, dram: DRAMModel, name: str = "read_master",
                 job_capacity: int = 8) -> None:
        super().__init__(sim, name)
        self.dram = dram
        self.jobs: Channel = self.channel("jobs", job_capacity)
        self._current: Optional[ReadJob] = None
        self._next_addr = 0
        self._remaining = 0
        self.words_requested = 0

    def reset(self) -> None:
        self._current = None
        self._next_addr = 0
        self._remaining = 0
        self.words_requested = 0

    def finished(self) -> bool:
        return self._current is None and not self.jobs.can_pop()

    def tick(self) -> None:
        if self._current is None and self.jobs.can_pop():
            job: ReadJob = self.jobs.pop()
            self._current = job
            self._next_addr = job.base
            self._remaining = job.length
        if self._current is not None and self._remaining > 0:
            if self.dram.read_cmd.can_push():
                self.dram.read_cmd.push(
                    DRAMCommand(kind="read", addr=self._next_addr, tag=self._current.tag)
                )
                self._next_addr += 1
                self._remaining -= 1
                self.words_requested += 1
            else:
                self.dram.read_cmd.note_push_stall()
        if self._current is not None and self._remaining == 0:
            self._current = None

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        if self._current is not None:
            # A job in progress always has words left between cycles (the
            # last word clears the job within the same tick it is pushed).
            return self.sim.cycle if self.dram.read_cmd.can_push() else None
        return self.sim.cycle if self.jobs.can_pop() else None

    def skip(self, cycles: int) -> None:
        if self._current is not None and not self.dram.read_cmd.can_push():
            self.dram.read_cmd.note_push_stall(cycles)

    def skip_digest(self):
        return (self._current, self._next_addr, self._remaining, self.words_requested)


class ResponseRouter(Component):
    """Routes DRAM read data to the stream or prefetch input of the front-end."""

    def __init__(self, sim: Simulator, dram: DRAMModel, smache: SmacheFrontEnd,
                 name: str = "router") -> None:
        super().__init__(sim, name)
        self.dram = dram
        self.smache = smache
        self.routed_stream = 0
        self.routed_prefetch = 0

    def reset(self) -> None:
        self.routed_stream = 0
        self.routed_prefetch = 0

    def finished(self) -> bool:
        return not self.dram.read_rsp.can_pop()

    def tick(self) -> None:
        if not self.dram.read_rsp.can_pop():
            return
        rsp: DRAMResponse = self.dram.read_rsp.peek()
        if rsp.tag == TAG_PREFETCH:
            if self.smache.prefetch_in.can_push():
                self.dram.read_rsp.pop()
                self.smache.prefetch_in.push(rsp.data)
                self.routed_prefetch += 1
        else:
            if self.smache.stream_in.can_push():
                self.dram.read_rsp.pop()
                self.smache.stream_in.push(rsp.data)
                self.routed_stream += 1

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        if not self.dram.read_rsp.can_pop():
            return None
        rsp: DRAMResponse = self.dram.read_rsp.peek()
        target = self.smache.prefetch_in if rsp.tag == TAG_PREFETCH else self.smache.stream_in
        return self.sim.cycle if target.can_push() else None

    def skip_digest(self):
        return (self.routed_stream, self.routed_prefetch)


class WritebackUnit(Component):
    """Returns kernel results to DRAM and feeds FSM-3's write-through path."""

    def __init__(
        self,
        sim: Simulator,
        dram: DRAMModel,
        smache: Optional[SmacheFrontEnd],
        result_channel: Channel,
        name: str = "writeback",
    ) -> None:
        super().__init__(sim, name)
        self.dram = dram
        self.smache = smache
        self.result_channel = result_channel
        self.dst_base = 0
        self.results_written = 0

    def reset(self) -> None:
        self.dst_base = 0
        self.results_written = 0

    def finished(self) -> bool:
        return not self.result_channel.can_pop()

    def set_destination(self, dst_base: int) -> None:
        """Point the write-back at the destination grid copy for this instance."""
        self.dst_base = dst_base

    def tick(self) -> None:
        if not self.result_channel.can_pop():
            return
        if not self.dram.write_cmd.can_push():
            self.dram.write_cmd.note_push_stall()
            return
        if self.smache is not None and not self.smache.result_in.can_push():
            return
        result: KernelResult = self.result_channel.pop()
        self.dram.write_cmd.push(
            DRAMCommand(kind="write", addr=self.dst_base + result.index, data=result.value)
        )
        if self.smache is not None:
            self.smache.result_in.push(result)
        self.results_written += 1

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        if not self.result_channel.can_pop():
            return None
        if not self.dram.write_cmd.can_push():
            return None  # stall bookkeeping only; reproduced by skip()
        if self.smache is not None and not self.smache.result_in.can_push():
            return None
        return self.sim.cycle

    def skip(self, cycles: int) -> None:
        if self.result_channel.can_pop() and not self.dram.write_cmd.can_push():
            self.dram.write_cmd.note_push_stall(cycles)

    def skip_digest(self):
        return (self.dst_base, self.results_written)


class WorkSequencer(Component):
    """Runs the requested number of work-instances back to back.

    Responsibilities: issue the warm-up prefetch jobs before the first
    instance, issue the stream read job of every instance, ping-pong the
    source/destination grid copies, swap the static buffers at instance
    boundaries and detect completion.
    """

    def __init__(
        self,
        sim: Simulator,
        dram: DRAMModel,
        read_master: ReadMaster,
        smache: SmacheFrontEnd,
        writeback: WritebackUnit,
        grid_words: int,
        iterations: int,
        base_a: int = 0,
        base_b: Optional[int] = None,
        name: str = "sequencer",
        trace: Optional[TraceLog] = None,
        prefetch_every_instance: bool = False,
    ) -> None:
        super().__init__(sim, name)
        self.dram = dram
        self.read_master = read_master
        self.smache = smache
        self.writeback = writeback
        self.grid_words = grid_words
        self.iterations = iterations
        #: When True (write-through ablation), the static buffers are reloaded
        #: from DRAM at the start of every work-instance, not just the first.
        self.prefetch_every_instance = prefetch_every_instance
        self.base_a = base_a
        self.base_b = base_b if base_b is not None else base_a + grid_words
        self.trace = trace or TraceLog(enabled=False)

        self.fsm = FSM("sequencer", ["INIT", "WAIT", "DONE"], "INIT")
        self.current_instance = 0
        self.instance_start_cycles: List[int] = []
        self.instance_end_cycles: List[int] = []

    # ------------------------------------------------------------------ #
    def src_base(self, instance: int) -> int:
        """DRAM base address of the grid copy read by ``instance``."""
        return self.base_a if instance % 2 == 0 else self.base_b

    def dst_base(self, instance: int) -> int:
        """DRAM base address of the grid copy written by ``instance``."""
        return self.base_b if instance % 2 == 0 else self.base_a

    @property
    def done(self) -> bool:
        """True when every work-instance has completed."""
        return self.fsm.is_in("DONE")

    def finished(self) -> bool:
        return self.done

    def reset(self) -> None:
        self.fsm.reset()
        self.current_instance = 0
        self.instance_start_cycles = []
        self.instance_end_cycles = []

    # ------------------------------------------------------------------ #
    def _launch_instance(self, instance: int) -> None:
        src = self.src_base(instance)
        if instance == 0 or self.prefetch_every_instance:
            for spec in self.smache.plan.statics:
                self.read_master.jobs.push(
                    ReadJob(base=src + spec.start, length=spec.length, tag=TAG_PREFETCH)
                )
        self.read_master.jobs.push(ReadJob(base=src, length=self.grid_words, tag=TAG_STREAM))
        self.writeback.set_destination(self.dst_base(instance))
        self.smache.start_work_instance(instance)
        self.instance_start_cycles.append(self.cycle)
        self.trace.record(self.cycle, self.name, "launch_instance", instance)

    def tick(self) -> None:
        self.fsm.tick()
        if self.iterations == 0:
            self.fsm.go("DONE", self.cycle)
            return
        if self.fsm.is_in("INIT"):
            self._launch_instance(0)
            self.fsm.go("WAIT", self.cycle)
            return
        if self.fsm.is_in("WAIT"):
            expected_writes = (self.current_instance + 1) * self.grid_words
            if self.dram.writes_completed >= expected_writes:
                self.smache.end_work_instance()
                self.instance_end_cycles.append(self.cycle)
                self.current_instance += 1
                if self.current_instance >= self.iterations:
                    self.fsm.go("DONE", self.cycle)
                else:
                    self._launch_instance(self.current_instance)

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        now = self.sim.cycle
        if self.iterations == 0:
            return now if not self.fsm.is_in("DONE") else None
        if self.fsm.is_in("INIT"):
            return now
        if self.fsm.is_in("WAIT"):
            # dram.writes_completed can only move when the DRAM itself acts,
            # and the DRAM reports that activity — inside a dead region the
            # count is frozen, so waiting on it is not self-scheduled work.
            expected_writes = (self.current_instance + 1) * self.grid_words
            return now if self.dram.writes_completed >= expected_writes else None
        return None  # DONE

    def skip(self, cycles: int) -> None:
        self.fsm.skip(cycles)

    def skip_digest(self):
        return (self.fsm.state, self.current_instance, len(self.instance_end_cycles))
