"""The Smache front-end: window buffer + static buffers + controller FSMs.

This is the cycle-accurate model of the module inside the dotted rectangle of
the paper's Fig. 1(b).  It sits between the DRAM read stream and the
computation kernel and is controlled by three concurrent FSMs, exactly as in
the paper:

* **FSM-1 (prefetch)** — during warm-up (first work-instance only) it fills
  the static buffers' read banks from the prefetch stream;
* **FSM-2 (gather/emit)** — accepts one stream word per cycle into the window
  buffer and, once the look-ahead is satisfied, assembles one stencil tuple
  per cycle from the window, the static buffers and the boundary rules, and
  emits it to the kernel;
* **FSM-3 (write-back)** — watches the kernel results and writes the ones
  falling inside a static buffer's coverage through into its write bank, so
  the next work-instance finds its boundary data on chip.

Static buffers are double buffered and swapped by
:meth:`SmacheFrontEnd.end_work_instance`, which the work sequencer calls at
the end of every work-instance.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arch.access_table import AccessTable
from repro.arch.kernel import KernelResult, TupleData
from repro.arch.static_buffer import StaticBufferHW
from repro.arch.stream_buffer import WindowBuffer
from repro.core.boundary import ResolutionKind
from repro.core.buffers import BufferPlan
from repro.core.partition import HybridPartition
from repro.sim.channel import Channel
from repro.sim.engine import Component, SimulationError, Simulator
from repro.sim.fsm import FSM
from repro.sim.stats import StatsCollector
from repro.sim.trace import TraceLog


class SmacheFrontEnd(Component):
    """Cycle-accurate model of the Smache smart-caching module."""

    def __init__(
        self,
        sim: Simulator,
        plan: BufferPlan,
        partition: Optional[HybridPartition] = None,
        access_table: Optional[AccessTable] = None,
        name: str = "smache",
        stats: Optional[StatsCollector] = None,
        trace: Optional[TraceLog] = None,
        write_through: bool = True,
    ) -> None:
        super().__init__(sim, name)
        self.plan = plan
        self.grid = plan.grid
        #: When False (ablation), kernel results are not written through into
        #: the static buffers and every work-instance re-prefetches them.
        self.write_through = write_through
        self.stats = stats or StatsCollector(name)
        self.trace = trace or TraceLog(enabled=False)
        self.access_table = access_table or AccessTable(
            plan.grid, plan.stencil, plan.boundary
        )

        taps = [o for o in plan.lookup_offsets() if o != 0]
        self.window = WindowBuffer(
            plan.stream, partition=partition, tap_offsets=taps, stats=self.stats
        )
        self.statics: List[StaticBufferHW] = [StaticBufferHW(s) for s in plan.statics]

        # channels
        self.stream_in: Channel = self.channel("stream_in", 2)
        self.prefetch_in: Channel = self.channel("prefetch_in", 2)
        self.result_in: Channel = self.channel("result_in", 2)
        self.tuple_out: Channel = self.channel("tuple_out", 2)

        # controller FSMs
        self.fsm_prefetch = FSM("fsm1-prefetch", ["IDLE", "FILL", "DONE"], "IDLE")
        self.fsm_gather = FSM("fsm2-gather", ["IDLE", "WAIT", "RUN", "DONE"], "IDLE")
        self.fsm_writeback = FSM("fsm3-writeback", ["RUN"], "RUN")

        # per-work-instance state
        self._n = self.grid.size
        self._received = 0
        self._emitted = 0
        self._work_instance = -1
        self._prefetch_buffer_idx = 0
        self._active = False

        # statistics
        self.tuples_emitted = 0
        self.static_hits = 0
        self.window_hits = 0
        self.emit_stall_cycles = 0
        self.input_starved_cycles = 0

    # ------------------------------------------------------------------ #
    # control interface (driven by the work sequencer)
    # ------------------------------------------------------------------ #
    @property
    def needs_prefetch(self) -> bool:
        """True when the warm-up prefetch has not completed yet."""
        return bool(self.statics) and not all(s.prefetch_complete for s in self.statics)

    def start_work_instance(self, work_instance: int) -> None:
        """Begin streaming work-instance ``work_instance``."""
        self._work_instance = work_instance
        self._received = 0
        self._emitted = 0
        self._active = True
        self.window.reset()
        needs_fill = bool(self.statics) and (work_instance == 0 or not self.write_through)
        if needs_fill and not self.write_through and work_instance > 0:
            for s in self.statics:
                s.begin_prefetch()
            self._prefetch_buffer_idx = 0
        if needs_fill:
            self.fsm_prefetch.go("FILL", self.cycle)
            self.fsm_gather.go("WAIT", self.cycle)
        else:
            self.fsm_prefetch.go("DONE", self.cycle)
            self.fsm_gather.go("RUN", self.cycle)
        self.trace.record(self.cycle, self.name, "start_work_instance", work_instance)

    def end_work_instance(self) -> None:
        """Swap static-buffer banks at the end of a work-instance."""
        if self.write_through:
            for s in self.statics:
                s.swap()
        self._active = False
        self.fsm_gather.go("DONE", self.cycle)
        self.trace.record(self.cycle, self.name, "end_work_instance", self._work_instance)

    @property
    def emitted(self) -> int:
        """Tuples emitted in the current work-instance."""
        return self._emitted

    @property
    def work_instance(self) -> int:
        """Index of the current work-instance (-1 before the first)."""
        return self._work_instance

    def finished(self) -> bool:
        return not self._active or self._emitted >= self._n

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _static_covering(self, linear: int) -> Optional[StaticBufferHW]:
        for s in self.statics:
            if s.covers(linear):
                return s
        return None

    def _assemble_tuple(self, centre: int) -> TupleData:
        """Gather the operand values for one centre element (FSM-2 datapath)."""
        window_lo = self.plan.stream.window_lo
        window_hi = self.plan.stream.window_hi
        offsets = []
        values = []
        for acc in self.access_table[centre].accesses:
            if acc.kind is ResolutionKind.SKIPPED:
                continue
            if acc.kind is ResolutionKind.CONSTANT:
                offsets.append(acc.offset)
                values.append(float(acc.constant))
                continue
            target = acc.target
            stream_offset = target - centre
            if window_lo <= stream_offset <= window_hi and self.window.covers(target):
                value = self.window.read(target, self.cycle)
                self.window_hits += 1
            else:
                static = self._static_covering(target)
                if static is None:
                    raise SimulationError(
                        f"{self.name}: operand {target} of centre {centre} is served "
                        "neither by the window nor by any static buffer "
                        "(buffer plan is inconsistent with the access pattern)"
                    )
                value = static.read(target)
                self.static_hits += 1
            offsets.append(acc.offset)
            values.append(value)
        return TupleData(index=centre, offsets=tuple(offsets), values=tuple(values))

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self):
        now = self.sim.cycle
        if self.result_in.can_pop():
            return now  # FSM-3 write-through
        if self.fsm_prefetch.is_in("FILL"):
            # FSM-1 consumes a prefetch word, or retires the FILL state the
            # moment the warm-up completed; while starved for prefetch data
            # the gather FSM sits in WAIT and the rest of the tick is inert.
            return now if self.prefetch_in.can_pop() or not self.needs_prefetch else None
        if not self._active or not self.fsm_gather.is_in("RUN"):
            return None
        window_hi = self.plan.stream.window_hi
        head = self.window.head
        if head < self._emitted + window_hi:
            if self._received < self._n:
                if self.stream_in.can_pop():
                    return now  # FSM-2 accepts a stream word
            elif self._emitted < self._n:
                return now  # tail flush: pad push into the window
        if (
            self._emitted < self._n
            and head >= self._emitted + window_hi
            and self.tuple_out.can_push()
        ):
            return now  # FSM-2 emits a tuple
        return None

    def skip(self, cycles: int) -> None:
        self.fsm_prefetch.skip(cycles)
        self.fsm_gather.skip(cycles)
        self.fsm_writeback.skip(cycles)
        if not self._active or not self.fsm_gather.is_in("RUN"):
            return
        window_hi = self.plan.stream.window_hi
        head = self.window.head
        if (
            head < self._emitted + window_hi
            and self._received < self._n
            and not self.stream_in.can_pop()
        ):
            self.input_starved_cycles += cycles
        if (
            self._emitted < self._n
            and head >= self._emitted + window_hi
            and not self.tuple_out.can_push()
        ):
            self.tuple_out.note_push_stall(cycles)
            self.emit_stall_cycles += cycles

    def skip_digest(self):
        return (
            self.fsm_prefetch.state,
            self.fsm_gather.state,
            self._work_instance,
            self._received,
            self._emitted,
            self.tuples_emitted,
            self.window.head,
        )

    # ------------------------------------------------------------------ #
    # clocked behaviour
    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        self.fsm_prefetch.tick()
        self.fsm_gather.tick()
        self.fsm_writeback.tick()

        # FSM-3: write-through of kernel results into static write banks.
        if self.result_in.can_pop():
            result: KernelResult = self.result_in.pop()
            if self.write_through:
                for s in self.statics:
                    if s.capture(result.index, result.value):
                        self.stats.incr("static_write_through")
                        break

        # FSM-1: warm-up prefetch into static read banks.
        if self.fsm_prefetch.is_in("FILL"):
            if self.prefetch_in.can_pop():
                value = self.prefetch_in.pop()
                while (
                    self._prefetch_buffer_idx < len(self.statics)
                    and self.statics[self._prefetch_buffer_idx].prefetch_complete
                ):
                    self._prefetch_buffer_idx += 1
                if self._prefetch_buffer_idx >= len(self.statics):
                    raise SimulationError(f"{self.name}: prefetch data after warm-up completed")
                self.statics[self._prefetch_buffer_idx].prefetch_word(value)
            if not self.needs_prefetch:
                self.fsm_prefetch.go("DONE", self.cycle)
                if self.fsm_gather.is_in("WAIT"):
                    self.fsm_gather.go("RUN", self.cycle)
                self.trace.record(self.cycle, self.name, "prefetch_done")

        if not self._active or not self.fsm_gather.is_in("RUN"):
            return

        window_hi = self.plan.stream.window_hi

        # FSM-2 (a): accept at most one stream word per cycle into the window.
        # The window is kept aligned with the emission point (head never runs
        # more than ``window_hi`` ahead of the centre being assembled) — this
        # is the stall/back-pressure path of the AXI-Stream interface.  Once
        # the input stream is exhausted, padding words flush the tail of the
        # grid through the window so the last rows can be emitted.
        aligned_limit = self._emitted + window_hi
        if self.window.head < aligned_limit:
            if self._received < self._n:
                if self.stream_in.can_pop():
                    value = self.stream_in.pop()
                    self.window.push(self._received, value, self.cycle)
                    self._received += 1
                else:
                    self.input_starved_cycles += 1
            elif self._emitted < self._n:
                self.window.push(self.window.head + 1, 0.0, self.cycle)
                self.stats.incr("window_pad_pushes")

        # FSM-2 (b): emit at most one stencil tuple per cycle.
        if self._emitted < self._n and self.window.head >= self._emitted + window_hi:
            if self.tuple_out.can_push():
                data = self._assemble_tuple(self._emitted)
                self.tuple_out.push(data)
                self._emitted += 1
                self.tuples_emitted += 1
            else:
                self.tuple_out.note_push_stall()
                self.emit_stall_cycles += 1
