"""Double-buffered static buffers with write-through.

A static buffer holds a *fixed* set of grid elements (in the paper's
validation case: the top row and the bottom row of the grid).  It is double
buffered:

* the **read bank** holds those elements for the work-instance currently
  streaming (i.e. values of grid ``k``);
* the **write bank** is filled transparently, via write-through from the
  kernel output, with the same elements of grid ``k+1`` as they are produced.

At the end of every work-instance the banks swap, so the next instance finds
its boundary data already on chip without touching DRAM — only the very first
instance needs a warm-up prefetch (FSM-1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.buffers import StaticBufferSpec


class StaticBufferError(RuntimeError):
    """Access outside the buffer's coverage or protocol misuse."""


class StaticBufferHW:
    """Hardware model of one double-buffered static buffer."""

    def __init__(self, spec: StaticBufferSpec) -> None:
        self.spec = spec
        self._banks = [
            np.zeros(spec.length, dtype=np.float64),
            np.zeros(spec.length, dtype=np.float64),
        ]
        self._read_bank = 0
        self._prefetch_fill = 0
        # statistics
        self.reads = 0
        self.writes = 0
        self.swaps = 0
        self.prefetched_words = 0

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The buffer's name (from its specification)."""
        return self.spec.name

    @property
    def write_bank_index(self) -> int:
        """Index of the bank currently being written through."""
        return 1 - self._read_bank if self.spec.double_buffered else self._read_bank

    def covers(self, linear_index: int) -> bool:
        """True if the buffer holds grid element ``linear_index``."""
        return self.spec.covers(linear_index)

    # ------------------------------------------------------------------ #
    # FSM-1: warm-up prefetch
    # ------------------------------------------------------------------ #
    def prefetch_word(self, value: float) -> None:
        """Append one prefetched word into the read bank (in element order)."""
        if self._prefetch_fill >= self.spec.length:
            raise StaticBufferError(
                f"static buffer '{self.name}' prefetch overflow "
                f"({self.spec.length} elements)"
            )
        self._banks[self._read_bank][self._prefetch_fill] = value
        self._prefetch_fill += 1
        self.prefetched_words += 1

    @property
    def prefetch_complete(self) -> bool:
        """True once the warm-up prefetch has filled the read bank."""
        return self._prefetch_fill >= self.spec.length

    def begin_prefetch(self) -> None:
        """Restart the prefetch fill pointer (used when write-through is disabled
        and the buffer must be re-loaded from DRAM every work-instance)."""
        self._prefetch_fill = 0

    def load_read_bank(self, values: Sequence[float]) -> None:
        """Directly load the read bank (test helper, no cycle cost)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != self.spec.length:
            raise StaticBufferError(
                f"static buffer '{self.name}' expects {self.spec.length} values, got {values.size}"
            )
        self._banks[self._read_bank][:] = values
        self._prefetch_fill = self.spec.length

    # ------------------------------------------------------------------ #
    # FSM-2: reads during tuple assembly
    # ------------------------------------------------------------------ #
    def read(self, linear_index: int) -> float:
        """Read a grid element from the read bank."""
        if not self.covers(linear_index):
            raise StaticBufferError(
                f"static buffer '{self.name}' does not cover grid element {linear_index}"
            )
        self.reads += 1
        return float(self._banks[self._read_bank][linear_index - self.spec.start])

    # ------------------------------------------------------------------ #
    # FSM-3: write-through from the kernel output
    # ------------------------------------------------------------------ #
    def capture(self, linear_index: int, value: float) -> bool:
        """Write-through one kernel result; returns True if it was captured."""
        if not self.covers(linear_index):
            return False
        self._banks[self.write_bank_index][linear_index - self.spec.start] = value
        self.writes += 1
        return True

    # ------------------------------------------------------------------ #
    def swap(self) -> None:
        """Swap read and write banks (end of a work-instance)."""
        if self.spec.double_buffered:
            self._read_bank = 1 - self._read_bank
        self.swaps += 1

    def read_bank_snapshot(self) -> np.ndarray:
        """Copy of the current read bank (tests / debugging)."""
        return self._banks[self._read_bank].copy()

    def write_bank_snapshot(self) -> np.ndarray:
        """Copy of the current write bank (tests / debugging)."""
        return self._banks[self.write_bank_index].copy()

    def reset(self) -> None:
        """Clear both banks and all statistics."""
        for bank in self._banks:
            bank[:] = 0.0
        self._read_bank = 0
        self._prefetch_fill = 0
        self.reads = 0
        self.writes = 0
        self.swaps = 0
        self.prefetched_words = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StaticBufferHW({self.name!r}, grid[{self.spec.start}:{self.spec.end}], "
            f"{'double' if self.spec.double_buffered else 'single'}-buffered)"
        )
