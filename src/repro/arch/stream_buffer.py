"""The moving-window (stream) buffer.

The window holds the most recent ``depth`` stream elements.  When the element
with linear index ``h`` has just been accepted, the centre being assembled is
``c = h - window_hi`` and any operand whose linear index lies in
``[c + window_lo, c + window_hi]`` can be read from the window.

Hybrid register/BRAM accounting
-------------------------------
Functionally the window is one FIFO; physically (Case-H) the stencil tap
positions are registers and the stretches between taps are BRAM FIFOs.  The
model keeps the data in a single deque for speed, but tracks, per cycle, how
many reads each physical section would perform, so tests can verify the
paper's claim that the BRAM sections never need more than one concurrent read
(the shift-through read) while the register taps are read in parallel.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.buffers import StreamBufferSpec
from repro.core.partition import HybridPartition, StreamBufferMode
from repro.sim.stats import StatsCollector


class WindowReadError(RuntimeError):
    """An access fell outside the window's current coverage."""


class WindowBuffer:
    """Functional window buffer with register/BRAM port accounting."""

    def __init__(
        self,
        spec: StreamBufferSpec,
        partition: Optional[HybridPartition] = None,
        tap_offsets: Sequence[int] = (),
        stats: Optional[StatsCollector] = None,
    ) -> None:
        self.spec = spec
        self.partition = partition
        self.stats = stats or StatsCollector("window")
        self.depth = spec.depth
        #: positions (distance from the newest element) implemented as registers
        self.register_positions = self._register_positions(tap_offsets)
        # frozenset mirror for the per-read membership test on the hot path
        self._register_position_set = frozenset(self.register_positions)
        self._values: Deque[float] = deque(maxlen=self.depth)
        self._head: int = -1  # linear index of the newest element, -1 = empty
        self._count = 0
        # per-cycle port accounting
        self._cycle = -1
        self._bram_reads_this_cycle = 0
        self._register_reads_this_cycle = 0
        self.max_bram_reads_per_cycle = 0
        self.max_register_reads_per_cycle = 0

    # ------------------------------------------------------------------ #
    def _register_positions(self, tap_offsets: Sequence[int]) -> Tuple[int, ...]:
        """Window positions (0 = newest) that are register slots.

        Tap offsets are stream offsets relative to the centre; the centre sits
        ``window_hi`` positions behind the newest element.
        """
        positions = {0, self.depth - 1, self.spec.window_hi}  # input, output, centre
        for o in tap_offsets:
            pos = self.spec.window_hi - o
            if 0 <= pos < self.depth:
                positions.add(pos)
                if pos + 1 < self.depth:
                    positions.add(pos + 1)
        return tuple(sorted(positions))

    def _advance_cycle(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._bram_reads_this_cycle = 0
            self._register_reads_this_cycle = 0

    # ------------------------------------------------------------------ #
    @property
    def head(self) -> int:
        """Linear index of the most recently accepted element (-1 if empty)."""
        return self._head

    @property
    def centre(self) -> int:
        """Linear index of the centre the window is currently aligned on."""
        return self._head - self.spec.window_hi

    def fill_count(self) -> int:
        """Number of elements currently held (saturates at ``depth``)."""
        return self._count

    def reset(self) -> None:
        """Empty the window (start of a new work-instance)."""
        self._values.clear()
        self._head = -1
        self._count = 0

    # ------------------------------------------------------------------ #
    def push(self, linear_index: int, value: float, cycle: int) -> None:
        """Accept the next stream element (must arrive in linear order)."""
        self._advance_cycle(cycle)
        if self._head >= 0 and linear_index != self._head + 1:
            raise WindowReadError(
                f"stream element {linear_index} arrived out of order (head {self._head})"
            )
        self._values.append(value)
        self._head = linear_index
        self._count = min(self._count + 1, self.depth)
        # Shifting the window performs one write (and, once full, one
        # shift-through read) on every BRAM section; with the sections chained
        # this is at most one read per section per cycle by construction.
        self.stats.incr("window_pushes")

    def covers(self, linear_index: int) -> bool:
        """True if the element is currently resident in the window."""
        if self._head < 0:
            return False
        oldest = self._head - self._count + 1
        return oldest <= linear_index <= self._head

    def read(self, linear_index: int, cycle: int) -> float:
        """Read an element resident in the window (one stencil tap)."""
        self._advance_cycle(cycle)
        if not self.covers(linear_index):
            raise WindowReadError(
                f"window read of element {linear_index} outside coverage "
                f"[{self._head - self._count + 1}, {self._head}]"
            )
        position = self._head - linear_index  # 0 = newest
        value = self._values[self._count - 1 - position]
        if position in self._register_position_set:
            self._register_reads_this_cycle += 1
            self.stats.incr("window_register_reads")
        else:
            self._bram_reads_this_cycle += 1
            self.stats.incr("window_bram_reads")
        self.max_bram_reads_per_cycle = max(
            self.max_bram_reads_per_cycle, self._bram_reads_this_cycle
        )
        self.max_register_reads_per_cycle = max(
            self.max_register_reads_per_cycle, self._register_reads_this_cycle
        )
        return float(value)

    # ------------------------------------------------------------------ #
    def port_report(self) -> Dict[str, int]:
        """Summary of the port activity (used by tests and reports)."""
        return {
            "register_positions": len(self.register_positions),
            "max_register_reads_per_cycle": self.max_register_reads_per_cycle,
            "max_bram_reads_per_cycle": self.max_bram_reads_per_cycle,
            "register_reads": int(self.stats.get("window_register_reads")),
            "bram_reads": int(self.stats.get("window_bram_reads")),
            "pushes": int(self.stats.get("window_pushes")),
        }
