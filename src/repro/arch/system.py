"""Complete simulated systems: Smache vs baseline.

A *system* is DRAM plus a design (Smache front-end + kernel + write-back, or
the no-buffering baseline master), assembled on one
:class:`repro.sim.engine.Simulator` and run for a number of work-instances.
Both systems ping-pong between two grid copies in DRAM (read ``k``, write
``k+1``) and both return a :class:`SimulationResult` carrying everything the
evaluation harness needs: cycle count, DRAM traffic, operation count and the
final grid (validated against the NumPy reference in the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.arch.access_table import AccessTable
from repro.arch.baseline import BaselineMaster
from repro.arch.kernel import KernelHW
from repro.arch.shell import ReadMaster, ResponseRouter, WorkSequencer, WritebackUnit
from repro.arch.smache import SmacheFrontEnd
from repro.core.buffers import BufferPlan
from repro.core.config import SmacheConfig
from repro.core.partition import HybridPartition
from repro.memory.dram import DRAMModel, DRAMTiming
from repro.reference.kernels import AveragingKernel, StencilKernel
from repro.sim.engine import Simulator
from repro.sim.stats import StatsCollector
from repro.sim.trace import TraceLog


@dataclass
class SimulationResult:
    """Outcome of running one system for a number of work-instances."""

    design: str
    cycles: int
    iterations: int
    grid_points: int
    dram_words_read: int
    dram_words_written: int
    dram_bytes: int
    operations: int
    output: np.ndarray
    instance_cycles: List[int] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Scheduler efficiency counters (engine mode, ticks_executed,
    #: cycles_skipped, skip_ratio, ...).  Kept apart from ``extra`` on
    #: purpose: ``extra`` feeds the canonical campaign output, which must be
    #: byte-identical across engine modes, while these counters describe the
    #: scheduler, not the simulated hardware.
    engine_stats: Dict[str, object] = field(default_factory=dict)

    @property
    def dram_traffic_kib(self) -> float:
        """Total DRAM traffic in KiB (the paper's "KB")."""
        return self.dram_bytes / 1024.0

    @property
    def cycles_per_point(self) -> float:
        """Average cycles per grid point per work-instance."""
        total_points = max(1, self.grid_points * self.iterations)
        return self.cycles / total_points

    def execution_time_us(self, frequency_mhz: float) -> float:
        """Simulated execution time in microseconds at the given clock."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles / frequency_mhz

    def mops(self, frequency_mhz: float) -> float:
        """Millions of kernel operations per second at the given clock."""
        time_us = self.execution_time_us(frequency_mhz)
        if time_us == 0:
            return 0.0
        return self.operations / time_us


# --------------------------------------------------------------------------- #
# Smache system
# --------------------------------------------------------------------------- #
class SmacheSystem:
    """DRAM + Smache front-end + kernel + write-back, ready to run."""

    def __init__(
        self,
        config: SmacheConfig,
        kernel: Optional[StencilKernel] = None,
        iterations: int = 1,
        dram_timing: Optional[DRAMTiming] = None,
        plan: Optional[BufferPlan] = None,
        partition: Optional[HybridPartition] = None,
        trace: Optional[TraceLog] = None,
        write_through: bool = True,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config
        self.kernel_spec = kernel or AveragingKernel()
        self.iterations = iterations
        self.trace = trace or TraceLog(enabled=False)
        self.stats = StatsCollector("smache_system")
        self.write_through = write_through

        self.plan = plan or config.plan()
        self.partition = partition or config.partition(self.plan)
        grid = config.grid
        n = grid.size

        self.sim = Simulator("smache_system", engine=engine)
        self.dram = DRAMModel(
            self.sim,
            "dram",
            size_words=2 * n,
            word_bytes=grid.word_bytes,
            timing=dram_timing,
            shared_bus=False,
        )
        self.access_table = AccessTable(grid, config.stencil, config.boundary)
        self.front_end = SmacheFrontEnd(
            self.sim,
            self.plan,
            partition=self.partition,
            access_table=self.access_table,
            stats=self.stats,
            trace=self.trace,
            write_through=write_through,
        )
        self.kernel = KernelHW(
            self.sim, self.kernel_spec, tuple_in=self.front_end.tuple_out, stats=self.stats
        )
        self.read_master = ReadMaster(self.sim, self.dram)
        self.router = ResponseRouter(self.sim, self.dram, self.front_end)
        self.writeback = WritebackUnit(
            self.sim, self.dram, self.front_end, self.kernel.result_out
        )
        self.sequencer = WorkSequencer(
            self.sim,
            self.dram,
            self.read_master,
            self.front_end,
            self.writeback,
            grid_words=n,
            iterations=iterations,
            trace=self.trace,
            prefetch_every_instance=not write_through,
        )

    # ------------------------------------------------------------------ #
    def load_input(self, array: np.ndarray) -> None:
        """Place the initial grid into DRAM copy A."""
        array = np.asarray(array, dtype=np.float64)
        if array.shape != self.config.grid.shape:
            raise ValueError(
                f"input shape {array.shape} does not match grid {self.config.grid.shape}"
            )
        self.dram.preload(0, array.ravel())

    def run(self, max_cycles: int = 50_000_000) -> SimulationResult:
        """Run all work-instances and collect the result."""
        n = self.config.grid.size
        self.sim.run_until(lambda: self.sequencer.done, max_cycles=max_cycles)
        final_base = self.sequencer.src_base(self.iterations)
        output = self.dram.snapshot(final_base, n).reshape(self.config.grid.shape)
        instance_cycles = [
            end - start
            for start, end in zip(
                self.sequencer.instance_start_cycles, self.sequencer.instance_end_cycles
            )
        ]
        return SimulationResult(
            design="smache",
            cycles=self.sim.cycle,
            iterations=self.iterations,
            grid_points=n,
            dram_words_read=self.dram.words_read,
            dram_words_written=self.dram.words_written,
            dram_bytes=self.dram.total_traffic_bytes,
            operations=self.kernel.operations,
            output=output,
            instance_cycles=instance_cycles,
            extra={
                "window_hits": self.front_end.window_hits,
                "static_hits": self.front_end.static_hits,
                "emit_stalls": self.front_end.emit_stall_cycles,
                "input_starved": self.front_end.input_starved_cycles,
                "dram_sequential": self.dram.sequential_accesses,
                "dram_random": self.dram.random_accesses,
                "max_bram_reads_per_cycle": self.front_end.window.max_bram_reads_per_cycle,
            },
            engine_stats=self.sim.run_stats(),
        )


# --------------------------------------------------------------------------- #
# Baseline system
# --------------------------------------------------------------------------- #
class BaselineSystem:
    """DRAM + the no-buffering baseline master."""

    def __init__(
        self,
        config: SmacheConfig,
        kernel: Optional[StencilKernel] = None,
        iterations: int = 1,
        dram_timing: Optional[DRAMTiming] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config
        self.kernel_spec = kernel or AveragingKernel()
        self.iterations = iterations
        grid = config.grid
        n = grid.size

        self.sim = Simulator("baseline_system", engine=engine)
        self.dram = DRAMModel(
            self.sim,
            "dram",
            size_words=2 * n,
            word_bytes=grid.word_bytes,
            timing=dram_timing,
            shared_bus=True,
        )
        self.access_table = AccessTable(grid, config.stencil, config.boundary)
        self.master = BaselineMaster(
            self.sim,
            self.dram,
            self.access_table,
            self.kernel_spec,
            iterations=iterations,
        )

    # ------------------------------------------------------------------ #
    def load_input(self, array: np.ndarray) -> None:
        """Place the initial grid into DRAM copy A."""
        array = np.asarray(array, dtype=np.float64)
        if array.shape != self.config.grid.shape:
            raise ValueError(
                f"input shape {array.shape} does not match grid {self.config.grid.shape}"
            )
        self.dram.preload(0, array.ravel())

    def run(self, max_cycles: int = 100_000_000) -> SimulationResult:
        """Run all work-instances and collect the result."""
        n = self.config.grid.size
        self.sim.run_until(lambda: self.master.done, max_cycles=max_cycles)
        final_base = self.master.src_base(self.iterations)
        output = self.dram.snapshot(final_base, n).reshape(self.config.grid.shape)
        return SimulationResult(
            design="baseline",
            cycles=self.sim.cycle,
            iterations=self.iterations,
            grid_points=n,
            dram_words_read=self.dram.words_read,
            dram_words_written=self.dram.words_written,
            dram_bytes=self.dram.total_traffic_bytes,
            operations=self.master.operations,
            output=output,
            extra={
                "dram_sequential": self.dram.sequential_accesses,
                "dram_random": self.dram.random_accesses,
                "points_completed": self.master.points_completed,
            },
            engine_stats=self.sim.run_stats(),
        )


# --------------------------------------------------------------------------- #
# convenience wrappers
# --------------------------------------------------------------------------- #
def run_smache(
    config: SmacheConfig,
    input_grid: np.ndarray,
    iterations: int = 1,
    kernel: Optional[StencilKernel] = None,
    dram_timing: Optional[DRAMTiming] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Build, load and run a Smache system in one call."""
    system = SmacheSystem(
        config, kernel=kernel, iterations=iterations, dram_timing=dram_timing, engine=engine
    )
    system.load_input(input_grid)
    return system.run()


def run_baseline(
    config: SmacheConfig,
    input_grid: np.ndarray,
    iterations: int = 1,
    kernel: Optional[StencilKernel] = None,
    dram_timing: Optional[DRAMTiming] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Build, load and run a baseline system in one call."""
    system = BaselineSystem(
        config, kernel=kernel, iterations=iterations, dram_timing=dram_timing, engine=engine
    )
    system.load_input(input_grid)
    return system.run()
