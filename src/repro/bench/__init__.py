"""repro.bench: the performance-regression gating subsystem.

One envelope (:class:`BenchResult`), one host fingerprint
(:class:`HostFingerprint`), declarative per-host reference bands
(:data:`DEFAULT_REFERENCES`), an append-only perf history
(:class:`PerfHistory`), and the ``python -m repro.bench`` CLI that drives
the four benchmark suites through a single harness and gates their
metrics — see :mod:`repro.bench.__main__`.
"""

from repro.bench.gate import (
    FAIL_STATUSES,
    GateReport,
    MetricCheck,
    check_result,
    gate_results,
)
from repro.bench.history import (
    HISTORY_FORMAT,
    HistoryRecord,
    PerfHistory,
    PerfHistoryWarning,
    git_commit_info,
)
from repro.bench.host import (
    SMOKE_ENV,
    HostFingerprint,
    contention,
    cpu_count,
    current_host,
    host_extra_info,
    smoke_mode,
)
from repro.bench.model import (
    BENCH_FORMAT,
    BenchFormatError,
    BenchResult,
    load_result,
    suite_of_path,
)
from repro.bench.references import (
    CONTENDED_EXEMPT,
    DEFAULT_REFERENCES,
    WILDCARD,
    band_bounds,
    format_band,
    in_band,
    load_references,
    resolve_references,
)
from repro.bench.suites import (
    SUITES,
    BenchRunError,
    BenchSpec,
    find_script,
    run_suite,
    standalone_main,
)
from repro.bench.trend import (
    WorkerThroughput,
    format_trend_report,
    format_worker_report,
    mine_worker_throughput,
)

__all__ = [
    "BENCH_FORMAT",
    "BenchFormatError",
    "BenchResult",
    "BenchRunError",
    "BenchSpec",
    "CONTENDED_EXEMPT",
    "DEFAULT_REFERENCES",
    "FAIL_STATUSES",
    "GateReport",
    "HISTORY_FORMAT",
    "HistoryRecord",
    "HostFingerprint",
    "MetricCheck",
    "PerfHistory",
    "PerfHistoryWarning",
    "SMOKE_ENV",
    "SUITES",
    "WILDCARD",
    "WorkerThroughput",
    "band_bounds",
    "check_result",
    "contention",
    "cpu_count",
    "current_host",
    "find_script",
    "format_band",
    "format_trend_report",
    "format_worker_report",
    "gate_results",
    "git_commit_info",
    "host_extra_info",
    "in_band",
    "load_references",
    "load_result",
    "mine_worker_throughput",
    "resolve_references",
    "run_suite",
    "smoke_mode",
    "standalone_main",
    "suite_of_path",
]
