"""Benchmark harness and regression gate: ``python -m repro.bench``.

Subcommands::

    python -m repro.bench run [SUITE ...] [--smoke] [--json-dir DIR]
                              [--record HISTORY] [--gate]
    python -m repro.bench record FILE ... --history HISTORY
    python -m repro.bench gate [FILE ...] [--history HISTORY] [--strict]
                               [--references REFS.json]
    python -m repro.bench trend [--history HISTORY] [--metric SUBSTR]
                                [--events LOG ...]

``run`` drives any subset of the four registered benchmark suites (sim,
pipeline, analytic, serve — default all) through one pytest harness,
prints each suite's gate report, and optionally appends the envelopes to a
perf history.  ``record`` appends existing benchmark JSON files (native
envelopes or pytest-benchmark dumps) to a history.  ``gate`` checks either
benchmark JSON files (default: the four committed ``BENCH_*.json``
baselines in the cwd) or the newest history record per (suite, host)
against the per-host reference bands, exiting 1 on any out-of-band metric
— the ``python -m repro.sweep diff`` convention.  ``trend`` renders
per-metric history tables and, given campaign event logs, per-worker
throughput mined from the stream.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional, Sequence

from repro.bench.gate import GateReport, gate_results
from repro.bench.history import PerfHistory
from repro.bench.model import BenchResult, load_result, suite_of_path
from repro.bench.references import (
    DEFAULT_REFERENCES,
    ReferenceTable,
    load_references,
)
from repro.bench.suites import SUITES, BenchRunError, run_suite
from repro.bench.trend import format_trend_report, format_worker_report

SUBCOMMANDS = ("run", "record", "gate", "trend")

#: The committed baseline files ``gate`` checks when given no inputs.
DEFAULT_BASELINES = tuple(spec.default_json for spec in SUITES.values())


def _parse_suites(names: List[str], parser: argparse.ArgumentParser) -> List[str]:
    chosen = names or list(SUITES)
    for name in chosen:
        if name not in SUITES:
            parser.error(
                f"unknown suite {name!r} (choose from: {', '.join(SUITES)})"
            )
    return chosen


def _load_files(
    paths: List[str], parser: argparse.ArgumentParser
) -> List[BenchResult]:
    results = []
    for path in paths:
        suite = suite_of_path(path)
        if suite is None:
            parser.error(
                f"cannot infer the suite from {path!r}; name files like "
                "BENCH_sim.json or pass envelopes that carry their own suite"
            )
        try:
            results.append(load_result(path, suite=suite))
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load {path!r}: {exc}")
    return results


def _references(
    path: Optional[str], parser: argparse.ArgumentParser
) -> ReferenceTable:
    if path is None:
        return DEFAULT_REFERENCES
    try:
        return load_references(path)
    except (OSError, ValueError) as exc:
        parser.error(f"cannot load references {path!r}: {exc}")


def _print_reports(reports: Sequence[GateReport], exit_code: int) -> None:
    for report in reports:
        print(report.format())
        print()
    verdict = "PASS" if exit_code == 0 else "FAIL"
    print(f"gate: {verdict} ({len(reports)} suite report(s))")


# --------------------------------------------------------------------------- #
def _run_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench run",
        description="Run benchmark suites through the shared pytest harness, "
        "report their metrics against the per-host references, and optionally "
        "append the results to a perf history.",
    )
    parser.add_argument(
        "suites",
        nargs="*",
        metavar="SUITE",
        help=f"suites to run (default: all of {', '.join(SUITES)})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrunk CI workloads; smoke results are reported but never gate",
    )
    parser.add_argument(
        "--json-dir",
        default=None,
        help="directory for the per-suite benchmark JSON files "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--record",
        metavar="HISTORY",
        default=None,
        help="append each suite's envelope to this perf-history JSONL",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="also gate the fresh results: exit 1 on any out-of-band metric",
    )
    parser.add_argument(
        "--references",
        metavar="REFS.json",
        default=None,
        help="reference table to gate against (default: the built-in table)",
    )
    args = parser.parse_args(argv)
    chosen = _parse_suites(args.suites, parser)
    references = _references(args.references, parser)

    results: List[BenchResult] = []
    failed_suites: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        json_dir = args.json_dir or tmp
        os.makedirs(json_dir, exist_ok=True)
        for name in chosen:
            spec = SUITES[name]
            json_path = os.path.join(json_dir, f"BENCH_{name}.json")
            print(f"== running suite {name!r} ({spec.description})", flush=True)
            try:
                results.append(run_suite(spec, json_path, smoke=args.smoke))
            except BenchRunError as exc:
                print(f"!! {exc}", file=sys.stderr)
                failed_suites.append(name)

    if args.record and results:
        history = PerfHistory(args.record)
        for result in results:
            history.append(result)
        print(f"recorded {len(results)} result(s) to {args.record}")

    reports, exit_code = gate_results(results, references)
    _print_reports(reports, exit_code)
    if failed_suites:
        print(f"suites failed to run: {', '.join(failed_suites)}", file=sys.stderr)
        return 1
    return exit_code if args.gate else 0


def _record_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench record",
        description="Append benchmark JSON files (native envelopes or "
        "pytest-benchmark dumps) to an append-only perf-history JSONL.",
    )
    parser.add_argument("files", nargs="+", metavar="FILE", help="benchmark JSON files")
    parser.add_argument(
        "--history", required=True, help="perf-history JSONL to append to"
    )
    args = parser.parse_args(argv)
    results = _load_files(args.files, parser)
    history = PerfHistory(args.history)
    for result in results:
        record = history.append(result)
        print(
            f"recorded {record.suite} @ {record.host_key} "
            f"({len(record.metrics)} metric(s), "
            f"commit {(record.commit_id or 'unknown')[:10]})"
        )
    return 0


def _gate_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench gate",
        description="Gate benchmark results against the per-host reference "
        "bands.  With FILEs (default: the committed BENCH_*.json baselines in "
        "the cwd) each file is checked; with --history the newest record per "
        "(suite, host) is checked.  Exit code 0 when every metric is in band, "
        "1 otherwise.  Smoke results never gate.",
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="benchmark JSON files (default: the committed baselines)",
    )
    parser.add_argument(
        "--history",
        metavar="HISTORY",
        default=None,
        help="gate the newest perf-history record per (suite, host) instead",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a referenced metric is missing from a result",
    )
    parser.add_argument(
        "--references",
        metavar="REFS.json",
        default=None,
        help="reference table JSON (default: the built-in table)",
    )
    args = parser.parse_args(argv)
    references = _references(args.references, parser)

    if args.history is not None:
        if args.files:
            parser.error("pass FILEs or --history, not both")
        latest = PerfHistory(args.history).latest()
        if not latest:
            print(f"perf history {args.history!r} holds no records")
            return 1
        results = [record.to_result() for record in latest]
    else:
        results = _load_files(args.files or list(DEFAULT_BASELINES), parser)

    reports, exit_code = gate_results(results, references, strict=args.strict)
    _print_reports(reports, exit_code)
    return exit_code


def _trend_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench trend",
        description="Render per-metric history tables (value and delta per "
        "recorded commit/host) and, given campaign event logs, per-worker "
        "throughput mined from the persisted event stream.",
    )
    parser.add_argument(
        "--history", metavar="HISTORY", default=None, help="perf-history JSONL"
    )
    parser.add_argument(
        "--suite", default=None, help="restrict history tables to one suite"
    )
    parser.add_argument(
        "--metric",
        default=None,
        help="restrict history tables to metrics containing this substring",
    )
    parser.add_argument(
        "--no-smoke",
        action="store_true",
        help="exclude smoke records from the history tables",
    )
    parser.add_argument(
        "--events",
        nargs="+",
        metavar="LOG",
        default=None,
        help="campaign event logs to mine for per-worker throughput",
    )
    args = parser.parse_args(argv)
    if args.history is None and not args.events:
        parser.error("nothing to report: pass --history and/or --events")

    sections = []
    if args.history is not None:
        records = PerfHistory(args.history).records(
            suite=args.suite, include_smoke=not args.no_smoke
        )
        sections.append(format_trend_report(records, contains=args.metric))
    for log in args.events or ():
        sections.append(format_worker_report(log))
    print("\n\n".join(sections))
    return 0


# --------------------------------------------------------------------------- #
def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return {
            "run": _run_main,
            "record": _record_main,
            "gate": _gate_main,
            "trend": _trend_main,
        }[argv[0]](argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark harness and performance-regression gate "
        "(subcommands: run, record, gate, trend).",
    )
    parser.parse_args(argv)
    parser.error(f"choose a subcommand: {', '.join(SUBCOMMANDS)}")
    return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
