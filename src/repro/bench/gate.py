"""Regression gating: benchmark envelopes against per-host reference bands.

:func:`check_result` compares one :class:`~repro.bench.model.BenchResult`
with the references resolved for its host and produces a
:class:`GateReport`; :func:`gate_results` folds many reports into one
process exit code — the same pattern as ``CampaignResult.diff`` /
``python -m repro.sweep diff`` (0 when clean, 1 on any out-of-band metric).

Exemptions are explicit, never silent:

* **smoke** results never gate — CI's shrunk workloads check the plumbing,
  not the performance of a shared runner; every metric is reported with
  status ``smoke`` and the report passes by construction;
* metrics in :data:`~repro.bench.references.CONTENDED_EXEMPT` are skipped
  on hosts whose envelope says ``contended`` (pool-vs-serial wall clock on
  a single core is a scheduling artefact, not a regression);
* a referenced metric absent from the result is reported ``missing`` and
  only fails under ``strict`` (a benchmark being *dropped* should not slip
  through a gate that was tuned to watch it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bench.model import BenchResult
from repro.bench.references import (
    CONTENDED_EXEMPT,
    DEFAULT_REFERENCES,
    MetricBand,
    ReferenceTable,
    WILDCARD,
    band_bounds,
    format_band,
    in_band,
    resolve_references,
)
from repro.utils.tables import format_table

#: Check statuses that count as failures (plus ``missing`` under strict).
FAIL_STATUSES = ("low", "high")


@dataclass(frozen=True)
class MetricCheck:
    """One metric against one band: the unit of gate output."""

    metric: str
    status: str  #: ok | low | high | missing | smoke | contended | unreferenced
    value: Optional[float] = None
    band: Optional[MetricBand] = None

    @property
    def failed(self) -> bool:
        return self.status in FAIL_STATUSES

    def format_row(self) -> List:
        band = format_band(self.band) if self.band is not None else "-"
        value = "-" if self.value is None else self.value
        return [self.metric, value, band, self.status]


@dataclass
class GateReport:
    """Every metric check for one benchmark envelope."""

    suite: str
    host_key: str
    smoke: bool
    contended: Optional[bool]
    reference_host: str  #: which table entry resolved ("vm:x86_64", "*", or "-")
    checks: List[MetricCheck] = field(default_factory=list)

    def failures(self, strict: bool = False) -> List[MetricCheck]:
        """The checks that gate this report (out-of-band, plus missing when strict)."""
        bad = [c for c in self.checks if c.failed]
        if strict:
            bad += [c for c in self.checks if c.status == "missing"]
        return bad

    def passed(self, strict: bool = False) -> bool:
        return not self.failures(strict)

    def counts(self) -> dict:
        tally: dict = {}
        for check in self.checks:
            tally[check.status] = tally.get(check.status, 0) + 1
        return tally

    def format(self) -> str:
        """Aligned per-metric table plus a one-line verdict."""
        flags = []
        if self.smoke:
            flags.append("smoke")
        if self.contended:
            flags.append("contended")
        title = (
            f"{self.suite} @ {self.host_key}"
            f" ({', '.join(flags) if flags else 'non-smoke'};"
            f" references: {self.reference_host})"
        )
        rows = [c.format_row() for c in self.checks]
        if not rows:
            return f"{title}\n  (no metrics)"
        table = format_table(["metric", "value", "band", "status"], rows, title=title)
        tally = ", ".join(f"{n} {status}" for status, n in sorted(self.counts().items()))
        return f"{table}\n  -> {tally}"


def check_result(
    result: BenchResult,
    references: Optional[ReferenceTable] = None,
) -> GateReport:
    """Check one envelope against the references resolved for its host."""
    table = DEFAULT_REFERENCES if references is None else references
    host_key = result.host.key
    if table.get(host_key):
        reference_host = host_key
    elif table.get(WILDCARD):
        reference_host = WILDCARD
    else:
        reference_host = "-"
    resolved = resolve_references(host_key, table)
    metrics = result.qualified_metrics()
    prefix = f"{result.suite}."
    suite_refs = {
        name: band for name, band in resolved.items() if name.startswith(prefix)
    }

    checks: List[MetricCheck] = []
    for name in sorted(set(suite_refs) | set(metrics)):
        band = suite_refs.get(name)
        value = metrics.get(name)
        if band is None:
            # Recorded but not gated: raw seconds, counts nobody banded yet.
            checks.append(MetricCheck(metric=name, status="unreferenced", value=value))
            continue
        if result.smoke:
            checks.append(
                MetricCheck(metric=name, status="smoke", value=value, band=band)
            )
            continue
        if result.contended and name in CONTENDED_EXEMPT:
            checks.append(
                MetricCheck(metric=name, status="contended", value=value, band=band)
            )
            continue
        if value is None:
            checks.append(MetricCheck(metric=name, status="missing", band=band))
            continue
        if in_band(value, band):
            status = "ok"
        else:
            lower, _upper = band_bounds(band)
            status = "low" if lower is not None and value < lower else "high"
        checks.append(MetricCheck(metric=name, status=status, value=value, band=band))
    return GateReport(
        suite=result.suite,
        host_key=host_key,
        smoke=result.smoke,
        contended=result.contended,
        reference_host=reference_host,
        checks=checks,
    )


def gate_results(
    results: Sequence[BenchResult],
    references: Optional[ReferenceTable] = None,
    strict: bool = False,
) -> Tuple[List[GateReport], int]:
    """Check many envelopes; returns ``(reports, exit_code)``.

    Exit code 0 when every report passes, 1 otherwise — the
    ``python -m repro.sweep diff`` convention.
    """
    reports = [check_result(result, references) for result in results]
    failed = [r for r in reports if not r.passed(strict)]
    return reports, (1 if failed else 0)
