"""The append-only JSONL perf-history store.

One file accumulates every benchmark record a machine (or a CI fleet on a
shared artifact store) ever produced: the first line is a header naming the
log, every later line one :class:`HistoryRecord` — the benchmark envelope
plus a commit id and an append timestamp — so the performance trajectory of
a metric can be reconstructed per host across PRs.

Reading is tolerant by the same contract as every campaign sidecar file:
parsing reuses :func:`repro.sweep.checkpoint.iter_jsonl`, so a torn trailing
line (a killed writer) or a corrupted record is **skipped with a
warning** (:class:`PerfHistoryWarning`) instead of poisoning the whole
history.  Appends are flushed line-by-line and re-opening an existing file
newline-terminates a torn tail first, exactly like the campaign checkpoint.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.host import HostFingerprint
from repro.bench.model import BenchResult
from repro.sweep.checkpoint import iter_jsonl

#: Version tag of the perf-history file format.
HISTORY_FORMAT = 1


class PerfHistoryWarning(UserWarning):
    """A malformed history line was skipped."""


def git_commit_info(cwd: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """Best-effort ``{"id", "branch", "dirty"}`` of the working tree.

    Returns None outside a git checkout (history records then carry the
    commit info embedded in the benchmark payload, when any).
    """
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if head.returncode != 0:
            return None
        branch = subprocess.run(
            ["git", "rev-parse", "--abbrev-ref", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        return {
            "id": head.stdout.strip(),
            "branch": branch.stdout.strip() if branch.returncode == 0 else None,
            "dirty": bool(status.stdout.strip()) if status.returncode == 0 else None,
        }
    except (OSError, subprocess.SubprocessError):
        return None


@dataclass
class HistoryRecord:
    """One appended benchmark envelope, with its append-time stamps."""

    suite: str
    host: HostFingerprint
    metrics: Dict[str, float] = field(default_factory=dict)
    smoke: bool = False
    contended: Optional[bool] = None
    commit: Optional[Dict[str, Any]] = None
    datetime: Optional[str] = None  #: when the benchmark ran (from its payload)
    recorded_ts: Optional[float] = None  #: when the record was appended

    @property
    def host_key(self) -> str:
        return self.host.key

    @property
    def commit_id(self) -> Optional[str]:
        return (self.commit or {}).get("id")

    def to_result(self) -> BenchResult:
        """The envelope view (what the gate consumes)."""
        return BenchResult(
            suite=self.suite,
            host=self.host,
            metrics=dict(self.metrics),
            smoke=self.smoke,
            contended=self.contended,
            commit=self.commit,
            datetime=self.datetime,
        )

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "kind": "perf",
            "format": HISTORY_FORMAT,
            "suite": self.suite,
            "host": self.host.to_json_dict(),
            "host_key": self.host_key,
            "smoke": self.smoke,
            "contended": self.contended,
            "commit": self.commit,
            "datetime": self.datetime,
            "recorded_ts": self.recorded_ts,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "HistoryRecord":
        metrics = payload.get("metrics")
        if not isinstance(metrics, dict) or not payload.get("suite"):
            raise ValueError("perf record needs a suite and a metrics dict")
        return cls(
            suite=str(payload["suite"]),
            host=HostFingerprint.from_json_dict(payload.get("host") or {}),
            metrics={
                str(k): v
                for k, v in metrics.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            },
            smoke=bool(payload.get("smoke", False)),
            contended=payload.get("contended"),
            commit=payload.get("commit"),
            datetime=payload.get("datetime"),
            recorded_ts=payload.get("recorded_ts"),
        )


class PerfHistory:
    """Append-only JSONL store of benchmark envelopes."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.dropped_lines = 0  #: malformed lines skipped by the last read

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(
        self,
        result: BenchResult,
        commit: Optional[Dict[str, Any]] = None,
        recorded_ts: Optional[float] = None,
    ) -> HistoryRecord:
        """Append one envelope; returns the record as written.

        ``commit`` defaults to the payload's own commit info, then to the
        current git checkout's.
        """
        record = HistoryRecord(
            suite=result.suite,
            host=result.host,
            metrics=dict(result.metrics),
            smoke=result.smoke,
            contended=result.contended,
            commit=commit or result.commit or git_commit_info(),
            datetime=result.datetime,
            recorded_ts=time.time() if recorded_ts is None else recorded_ts,
        )
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        is_new = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        needs_newline = False
        if not is_new:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            if needs_newline:
                fh.write("\n")
            if is_new:
                header = {
                    "kind": "header",
                    "log": "perf-history",
                    "format": HISTORY_FORMAT,
                }
                fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.write(json.dumps(record.to_json_dict(), sort_keys=True) + "\n")
        return record

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def records(
        self,
        suite: Optional[str] = None,
        host_key: Optional[str] = None,
        include_smoke: bool = True,
    ) -> List[HistoryRecord]:
        """Every intact record, oldest first, optionally filtered.

        Malformed lines — JSON fragments from a torn write, or lines missing
        the record shape — are skipped with a :class:`PerfHistoryWarning`.
        """
        self.dropped_lines = 0
        records: List[HistoryRecord] = []
        if not os.path.exists(self.path):
            return records

        def corrupt(line: str) -> None:
            self.dropped_lines += 1
            warnings.warn(
                f"perf history {self.path!r}: skipping malformed line "
                f"{line[:80]!r}",
                PerfHistoryWarning,
                stacklevel=3,
            )

        for payload in iter_jsonl(self.path, on_corrupt=corrupt):
            kind = payload.get("kind") if isinstance(payload, dict) else None
            if kind == "header":
                continue
            if kind != "perf":
                corrupt(json.dumps(payload)[:80])
                continue
            try:
                record = HistoryRecord.from_json_dict(payload)
            except (ValueError, TypeError, KeyError):
                corrupt(json.dumps(payload)[:80])
                continue
            if suite is not None and record.suite != suite:
                continue
            if host_key is not None and record.host_key != host_key:
                continue
            if not include_smoke and record.smoke:
                continue
            records.append(record)
        return records

    def latest(self) -> List[HistoryRecord]:
        """The newest record per ``(suite, host_key)`` — what ``gate`` checks."""
        latest: Dict[tuple, HistoryRecord] = {}
        for record in self.records():
            latest[(record.suite, record.host_key)] = record
        return [latest[key] for key in sorted(latest)]

    def suites(self) -> List[str]:
        """The distinct suites present, sorted."""
        return sorted({r.suite for r in self.records()})
