"""The shared host fingerprint: who ran a benchmark, and under what load.

Every benchmark script used to probe the machine on its own — an
``os.environ`` check for smoke mode here, a ``sched_getaffinity`` call
there, slightly different ``contended`` heuristics everywhere.  This module
is the single home for all of it:

* :func:`smoke_mode` — the ``REPRO_BENCH_SMOKE`` switch CI flips to shrink
  workloads and skip wall-clock assertions;
* :func:`cpu_count` / :func:`contention` — the affinity-aware core count
  and the shared "can this host even express parallel speedup" probe;
* :class:`HostFingerprint` — the identity stamped into every benchmark
  envelope and perf-history record, whose :attr:`~HostFingerprint.key`
  (``node:machine``, e.g. ``vm:x86_64``) selects the per-host reference
  bands in :mod:`repro.bench.references`.
"""

from __future__ import annotations

import os
import platform
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Environment variable that switches every benchmark into smoke mode.
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE`` requests shrunk, assertion-free runs."""
    return os.environ.get(SMOKE_ENV, "") not in ("", "0")


def cpu_count() -> Optional[int]:
    """Cores actually available to this process (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count()


def contention(jobs: int = 1) -> bool:
    """Whether wall-clock comparisons on this host are scheduling artefacts.

    A single-core container cannot speed anything up with more workers, and
    a pool with more workers than cores only adds context switching — on
    such hosts speedup numbers are recorded for the trajectory but must not
    gate.  ``jobs`` is the parallelism the benchmark asked for (1 for
    purely serial comparisons, which still need two cores to time fairly).
    """
    cpus = cpu_count()
    return cpus is None or cpus < 2 or cpus < jobs


def host_extra_info(jobs: int = 1) -> Dict[str, Any]:
    """The ``extra_info`` stamps every benchmark records: smoke/cpus/contended.

    Stamping these on *every* test (not just the parallel ones) is what lets
    the gate filter correctly — an envelope without a ``contended`` field
    cannot claim its exemptions.
    """
    return {
        "smoke": smoke_mode(),
        "cpus": cpu_count(),
        "contended": contention(jobs),
    }


@dataclass(frozen=True)
class HostFingerprint:
    """The identity of the machine a benchmark ran on.

    ``key`` — ``"node:machine"`` — is what the reference tables are keyed
    by, mirroring ReFrame's ``system:partition`` convention.
    """

    node: str
    system: str
    machine: str
    python: str
    cpus: Optional[int]

    @property
    def key(self) -> str:
        """The reference-selection key, e.g. ``"vm:x86_64"``."""
        return f"{self.node}:{self.machine}"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "system": self.system,
            "machine": self.machine,
            "python": self.python,
            "cpus": self.cpus,
        }

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "HostFingerprint":
        return cls(
            node=str(payload.get("node", "")),
            system=str(payload.get("system", "")),
            machine=str(payload.get("machine", "")),
            python=str(payload.get("python", "")),
            cpus=payload.get("cpus"),
        )


def current_host() -> HostFingerprint:
    """Fingerprint of the machine this process is running on."""
    return HostFingerprint(
        node=platform.node(),
        system=platform.system(),
        machine=platform.machine(),
        python=platform.python_version(),
        cpus=cpu_count(),
    )
