"""The benchmark envelope: one schema-versioned payload for every suite.

The four committed benchmark records (``BENCH_sim.json``,
``BENCH_pipeline.json``, ``BENCH_analytic.json``, ``BENCH_serve.json``) are
raw pytest-benchmark dumps — machine info, commit info and a list of
benchmarks whose interesting numbers live in ``extra_info``.  This module
unifies them onto one **envelope**:

.. code-block:: json

    {"bench_format": 1, "suite": "sim",
     "host": {"node": "vm", "machine": "x86_64", "cpus": 1, ...},
     "smoke": false, "contended": true,
     "commit": {"id": "...", "time": "...", "branch": "main", "dirty": true},
     "datetime": "...",
     "metrics": {"smache_cycles_per_sec.speedup": 5.05, ...}}

:func:`BenchResult.from_payload` is the **compat reader**: it accepts both
the native envelope and the legacy pytest-benchmark schema, so the committed
files keep working unmodified.  Metric names are flattened to
``<benchmark>.<field>`` (with the ``test_bench_`` prefix stripped), and the
gate layer further qualifies them as ``<suite>.<benchmark>.<field>`` when
matching references.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.bench.host import HostFingerprint

#: Version tag of the benchmark envelope format.
BENCH_FORMAT = 1


class BenchFormatError(ValueError):
    """A payload that is neither an envelope nor a pytest-benchmark dump."""


def _strip_test_prefix(name: str) -> str:
    """``test_bench_smache_cycles_per_sec`` → ``smache_cycles_per_sec``."""
    for prefix in ("test_bench_", "test_"):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def _suite_of_fullname(fullname: str) -> Optional[str]:
    """``benchmarks/bench_sim.py::...`` → ``sim`` (None when unrecognised)."""
    script = fullname.split("::", 1)[0]
    base = os.path.basename(script)
    if base.startswith("bench_") and base.endswith(".py"):
        return base[len("bench_"):-len(".py")]
    return None


def suite_of_path(path: str) -> Optional[str]:
    """``.../BENCH_ci_sim.json`` → ``sim`` (None when unrecognised)."""
    base = os.path.basename(os.fspath(path))
    for prefix in ("BENCH_ci_", "BENCH_"):
        if base.startswith(prefix) and base.endswith(".json"):
            return base[len(prefix):-len(".json")]
    return None


@dataclass
class BenchResult:
    """One benchmark suite's outcome, in the unified envelope shape."""

    suite: str
    host: HostFingerprint
    metrics: Dict[str, float] = field(default_factory=dict)
    smoke: bool = False
    contended: Optional[bool] = None
    commit: Optional[Dict[str, Any]] = None
    datetime: Optional[str] = None

    # ------------------------------------------------------------------ #
    def qualified_metrics(self) -> Dict[str, float]:
        """Metrics keyed ``<suite>.<benchmark>.<field>`` (what references use)."""
        return {f"{self.suite}.{name}": value for name, value in self.metrics.items()}

    def to_payload(self) -> Dict[str, Any]:
        """The native schema-versioned envelope."""
        return {
            "bench_format": BENCH_FORMAT,
            "suite": self.suite,
            "host": self.host.to_json_dict(),
            "smoke": self.smoke,
            "contended": self.contended,
            "commit": self.commit,
            "datetime": self.datetime,
            "metrics": dict(self.metrics),
        }

    # ------------------------------------------------------------------ #
    @classmethod
    def from_payload(
        cls, payload: Dict[str, Any], suite: Optional[str] = None
    ) -> "BenchResult":
        """Read a native envelope **or** a legacy pytest-benchmark dump.

        ``suite`` overrides/supplies the suite name (needed for legacy
        payloads whose benchmark paths don't resolve, e.g. hand-built ones).
        """
        if payload.get("bench_format") is not None:
            if payload["bench_format"] > BENCH_FORMAT:
                raise BenchFormatError(
                    f"envelope format {payload['bench_format']} is newer than "
                    f"this reader (format {BENCH_FORMAT})"
                )
            return cls(
                suite=suite or payload.get("suite", ""),
                host=HostFingerprint.from_json_dict(payload.get("host") or {}),
                metrics={
                    str(k): v
                    for k, v in (payload.get("metrics") or {}).items()
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                },
                smoke=bool(payload.get("smoke", False)),
                contended=payload.get("contended"),
                commit=payload.get("commit"),
                datetime=payload.get("datetime"),
            )
        if "benchmarks" in payload and "machine_info" in payload:
            return cls._from_pytest_benchmark(payload, suite=suite)
        raise BenchFormatError(
            "payload is neither a bench envelope (no 'bench_format') nor a "
            "pytest-benchmark record (no 'benchmarks'/'machine_info')"
        )

    @classmethod
    def _from_pytest_benchmark(
        cls, payload: Dict[str, Any], suite: Optional[str] = None
    ) -> "BenchResult":
        machine = payload.get("machine_info") or {}
        cpu = machine.get("cpu") or {}
        host = HostFingerprint(
            node=str(machine.get("node", "")),
            system=str(machine.get("system", "")),
            machine=str(machine.get("machine", "")),
            python=str(machine.get("python_version", "")),
            cpus=cpu.get("count"),
        )
        metrics: Dict[str, float] = {}
        smoke = False
        contended: Optional[bool] = None
        for bench in payload.get("benchmarks") or []:
            name = _strip_test_prefix(bench.get("name", ""))
            if suite is None:
                suite = _suite_of_fullname(bench.get("fullname", ""))
            extra = bench.get("extra_info") or {}
            # The run flags are hoisted to the envelope level: one smoke
            # benchmark marks the whole payload (CI sets the env var for the
            # entire run), and any stamped contention labels the host.
            if extra.get("smoke"):
                smoke = True
            if "contended" in extra:
                contended = bool(contended) or bool(extra["contended"])
            for key, value in extra.items():
                if key in ("smoke", "contended"):
                    continue
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                metrics[f"{name}.{key}"] = value
            stats = bench.get("stats") or {}
            if isinstance(stats.get("min"), (int, float)):
                metrics[f"{name}.seconds"] = stats["min"]
        commit = payload.get("commit_info")
        if commit is not None:
            commit = {
                "id": commit.get("id"),
                "time": commit.get("time"),
                "branch": commit.get("branch"),
                "dirty": commit.get("dirty"),
            }
        return cls(
            suite=suite or "",
            host=host,
            metrics=metrics,
            smoke=smoke,
            contended=contended,
            commit=commit,
            datetime=payload.get("datetime"),
        )


def load_result(path: str, suite: Optional[str] = None) -> BenchResult:
    """Load a benchmark JSON file (envelope or pytest-benchmark) from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if suite is None:
        suite = suite_of_path(path)
    result = BenchResult.from_payload(payload, suite=suite)
    if not result.suite:
        raise BenchFormatError(
            f"could not infer the suite of {path!r}; pass suite= explicitly"
        )
    return result
