"""Declarative per-host performance references (the ReFrame idiom).

A reference table maps a host key (``"node:machine"``, see
:attr:`repro.bench.host.HostFingerprint.key`) to a dict of metric bands::

    {
        "vm:x86_64": {
            "sim.smache_cycles_per_sec.speedup": (5.0, -0.5, None, "x"),
            ...
        },
        "*": {  # wildcard: any host without its own entry
            "sim.smache_cycles_per_sec.speedup": (3.0, -0.35, None, "x"),
        },
    }

Each band is ``(ref, lo_frac, hi_frac, unit)`` — exactly ReFrame's
convention: the measured value must lie within ``[ref * (1 + lo_frac),
ref * (1 + hi_frac)]``; ``None`` on either side means unbounded.  So
``(5.0, -0.5, None, "x")`` reads "at least half the reference speedup,
no upper limit", and ``(240, 0, 0, "points")`` is an exact-match band.

Resolution is **per metric**: a host's own entry wins, and any metric it
does not mention falls back to the wildcard — a new host gets the generic
bands immediately and can pin tighter ones over time.

The default table below covers the four committed baselines
(``BENCH_*.json``, recorded on the 1-core ``vm:x86_64`` container).
Wall-clock-absolute numbers (raw seconds) are deliberately *not*
referenced — only ratios, rates measured in one process, and exact counts,
which survive runner noise.  Metrics in :data:`CONTENDED_EXEMPT` are only
gated on uncontended hosts (see :mod:`repro.bench.host`): a process pool
cannot beat the serial runner on a single core, so its "speedup" says
nothing there.
"""

from __future__ import annotations

import json
from typing import Dict, Mapping, Optional, Sequence, Tuple

#: One reference band: (reference value, lo fraction, hi fraction, unit).
MetricBand = Tuple[float, Optional[float], Optional[float], str]

#: A full reference table: host key (or "*") -> metric name -> band.
ReferenceTable = Mapping[str, Mapping[str, MetricBand]]

#: The wildcard host key.
WILDCARD = "*"

#: Metrics that compare wall-clock across process counts: meaningless on a
#: contended host (fewer cores than workers), so the gate skips them there.
CONTENDED_EXEMPT = frozenset({
    "pipeline.parallel_campaign.parallel_speedup",
})

#: Reference bands for the committed baselines plus conservative wildcard
#: fallbacks for unknown hosts.  Bands on the recorded host are centred on
#: the committed ``BENCH_*.json`` numbers; wildcard bands restate the
#: benchmarks' own minimum acceptance claims.
DEFAULT_REFERENCES: ReferenceTable = {
    "vm:x86_64": {
        # --- bench_sim.py (BENCH_sim.json: 5.05x / 4.09x / 1.016 / 1512x) ---
        "sim.smache_cycles_per_sec.speedup": (5.0, -0.5, None, "x"),
        "sim.smache_cycles_per_sec.skip_ratio": (0.94, -0.05, 0.05, "frac"),
        "sim.baseline_cycles_per_sec.speedup": (4.0, -0.5, None, "x"),
        "sim.default_timing_overhead.overhead_ratio": (1.0, None, 0.5, "ratio"),
        "sim.reference_cells_per_sec.speedup": (1500.0, -0.8, None, "x"),
        # --- bench_pipeline.py (BENCH_pipeline.json: 240-point campaign) ---
        "pipeline.parallel_campaign.resumed_points": (240.0, 0.0, 0.0, "points"),
        # --- bench_analytic.py (BENCH_analytic.json: 24.1x / 11.6x warm) ---
        "analytic.scalar_vs_vectorized.warm_speedup": (24.0, -0.6, None, "x"),
        "analytic.scalar_vs_vectorized.reprice_new_knobs_speedup": (
            11.6, -0.6, None, "x",
        ),
        # --- bench_serve.py (BENCH_serve.json: 2.13x serial / 0.8 memo) ---
        "serve.batched_vs_scalar_serving.speedup_vs_serial_scalar": (
            2.1, -0.5, None, "x",
        ),
        "serve.batched_vs_scalar_serving.memo_hit_rate": (0.8, -0.05, 0.05, "frac"),
    },
    WILDCARD: {
        # The asserted minimum claims of each benchmark, as loose bands any
        # healthy host must clear (see the assertions in benchmarks/*.py).
        "sim.smache_cycles_per_sec.speedup": (3.0, -0.35, None, "x"),
        "sim.baseline_cycles_per_sec.speedup": (2.0, -0.35, None, "x"),
        "sim.default_timing_overhead.overhead_ratio": (1.0, None, 0.6, "ratio"),
        "sim.reference_cells_per_sec.speedup": (10.0, -0.5, None, "x"),
        "pipeline.parallel_campaign.parallel_speedup": (1.1, -0.1, None, "x"),
        "analytic.scalar_vs_vectorized.warm_speedup": (20.0, -0.25, None, "x"),
        "serve.batched_vs_scalar_serving.speedup_vs_serial_scalar": (
            5.0, -0.3, None, "x",
        ),
    },
}


def band_bounds(band: MetricBand) -> Tuple[Optional[float], Optional[float]]:
    """The absolute ``(lower, upper)`` bounds of a reference band."""
    ref, lo_frac, hi_frac, _unit = band
    lower = None if lo_frac is None else ref * (1.0 + lo_frac)
    upper = None if hi_frac is None else ref * (1.0 + hi_frac)
    return lower, upper


def in_band(value: float, band: MetricBand) -> bool:
    """Whether ``value`` lies inside the band's tolerance."""
    lower, upper = band_bounds(band)
    if lower is not None and value < lower:
        return False
    if upper is not None and value > upper:
        return False
    return True


def format_band(band: MetricBand) -> str:
    """``[2.5, -] x`` — the absolute band, for reports."""
    lower, upper = band_bounds(band)
    lo = "-" if lower is None else f"{lower:g}"
    hi = "-" if upper is None else f"{upper:g}"
    unit = band[3]
    return f"[{lo}, {hi}] {unit}".rstrip()


def resolve_references(
    host_key: str, references: ReferenceTable
) -> Dict[str, MetricBand]:
    """The effective metric bands for one host.

    Per-metric precedence: the host's own entry wins; metrics it does not
    mention fall back to the wildcard entry.  A host with no entry of its
    own gets the wildcard table verbatim.
    """
    resolved: Dict[str, MetricBand] = {}
    for name, band in (references.get(WILDCARD) or {}).items():
        resolved[name] = _normalize_band(name, band)
    for name, band in (references.get(host_key) or {}).items():
        resolved[name] = _normalize_band(name, band)
    return resolved


def _normalize_band(name: str, band: Sequence) -> MetricBand:
    """Validate and normalise one band (tuples from Python, lists from JSON)."""
    if not isinstance(band, (tuple, list)) or len(band) != 4:
        raise ValueError(
            f"reference {name!r} must be (ref, lo_frac, hi_frac, unit), got {band!r}"
        )
    ref, lo, hi, unit = band
    if not isinstance(ref, (int, float)) or isinstance(ref, bool):
        raise ValueError(f"reference {name!r} has a non-numeric ref {ref!r}")
    for frac in (lo, hi):
        if frac is not None and (
            not isinstance(frac, (int, float)) or isinstance(frac, bool)
        ):
            raise ValueError(f"reference {name!r} has a non-numeric bound {frac!r}")
    return (float(ref), lo, hi, str(unit))


def load_references(path: str) -> ReferenceTable:
    """Load a reference table from JSON (bands as 4-element lists).

    The file mirrors the Python structure::

        {"vm:x86_64": {"sim.smache_cycles_per_sec.speedup": [5.0, -0.5, null, "x"]},
         "*": {...}}
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"reference file {path!r} must hold a JSON object")
    table: Dict[str, Dict[str, MetricBand]] = {}
    for host_key, metrics in payload.items():
        if not isinstance(metrics, dict):
            raise ValueError(
                f"reference file {path!r}: host {host_key!r} must map metrics "
                "to [ref, lo, hi, unit] bands"
            )
        table[host_key] = {
            name: _normalize_band(name, band) for name, band in metrics.items()
        }
    return table
