"""The benchmark-suite registry and the one harness that runs them.

Each of the four benchmark scripts under ``benchmarks/`` is registered here
as a :class:`BenchSpec`; ``python -m repro.bench run`` drives any subset of
them through one pytest invocation per suite (the same command CI and the
scripts' own ``__main__`` blocks use), loads the resulting JSON through the
compat reader, and hands back unified envelopes ready for recording and
gating.

The scripts stay runnable standalone — ``python benchmarks/bench_sim.py``
— through :func:`standalone_main`, which owns the flags they all share
(``--benchmark-json``, ``--smoke``, ``--jobs``) so the per-script
boilerplate collapses to two lines.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.host import SMOKE_ENV
from repro.bench.model import BenchResult, load_result


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark suite."""

    name: str  #: suite key ("sim") — also the metric-name prefix
    script: str  #: path relative to the repo root
    default_json: str  #: where the standalone script records by default
    description: str


#: The registered suites, in canonical run order.
SUITES: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            name="sim",
            script="benchmarks/bench_sim.py",
            default_json="BENCH_sim.json",
            description="fast simulation core: cycles/sec, reference executor",
        ),
        BenchSpec(
            name="pipeline",
            script="benchmarks/bench_pipeline.py",
            default_json="BENCH_pipeline.json",
            description="compilation pipeline + parallel campaign engine",
        ),
        BenchSpec(
            name="analytic",
            script="benchmarks/bench_analytic.py",
            default_json="BENCH_analytic.json",
            description="vectorized analytic pricing vs the scalar loop",
        ),
        BenchSpec(
            name="serve",
            script="benchmarks/bench_serve.py",
            default_json="BENCH_serve.json",
            description="micro-batched evaluation service throughput",
        ),
    )
}


def repo_root() -> str:
    """The checkout root (the parent of ``src/``), for script resolution."""
    here = os.path.dirname(os.path.abspath(__file__))  # src/repro/bench
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def find_script(spec: BenchSpec, cwd: Optional[str] = None) -> str:
    """Resolve a suite's script against the cwd, then the checkout root."""
    base = os.path.abspath(cwd or os.getcwd())
    candidate = os.path.join(base, spec.script)
    if os.path.exists(candidate):
        return candidate
    candidate = os.path.join(repo_root(), spec.script)
    if os.path.exists(candidate):
        return candidate
    raise FileNotFoundError(
        f"cannot find {spec.script!r} for suite {spec.name!r} (looked under "
        f"{base!r} and {repo_root()!r})"
    )


def run_command(
    spec: BenchSpec, json_path: str, cwd: Optional[str] = None
) -> List[str]:
    """The subprocess argv ``run_suite`` executes (split out for tests)."""
    script = find_script(spec, cwd=cwd)
    return [
        sys.executable,
        "-m",
        "pytest",
        script,
        "--benchmark-only",
        "-q",
        "-s",
        f"--benchmark-json={json_path}",
    ]


def run_suite(
    spec: BenchSpec,
    json_path: str,
    smoke: bool = False,
    cwd: Optional[str] = None,
    env: Optional[Dict[str, str]] = None,
) -> BenchResult:
    """Run one suite through pytest, record ``json_path``, load the envelope.

    Raises :class:`BenchRunError` when the benchmark process fails — its
    assertions are part of the gate surface, so a red suite must not be
    silently recorded as green.
    """
    merged = dict(os.environ)
    if env:
        merged.update(env)
    if smoke:
        merged[SMOKE_ENV] = "1"
    command = run_command(spec, json_path, cwd=cwd)
    proc = subprocess.run(command, cwd=cwd or os.getcwd(), env=merged)
    if proc.returncode != 0:
        raise BenchRunError(
            f"benchmark suite {spec.name!r} failed with exit code "
            f"{proc.returncode} (command: {' '.join(command)})"
        )
    return load_result(json_path, suite=spec.name)


class BenchRunError(RuntimeError):
    """A benchmark suite subprocess exited non-zero."""


def standalone_main(
    suite: str,
    argv: Optional[Sequence[str]] = None,
    description: Optional[str] = None,
) -> int:
    """The shared ``__main__`` of every benchmark script.

    Parses the flags the scripts always supported (``--benchmark-json``,
    plus ``--smoke`` and ``--jobs``) and invokes pytest in-process on the
    calling script, exactly as before the harness existed.
    """
    spec = SUITES[suite]
    parser = argparse.ArgumentParser(description=description or spec.description)
    parser.add_argument(
        "--benchmark-json",
        default=spec.default_json,
        help=f"where to write the benchmark record (default: {spec.default_json})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink workloads and skip wall-clock assertions (CI mode)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="workers for parallel benchmarks (default: the suite's own)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ[SMOKE_ENV] = "1"
    if args.jobs is not None:
        os.environ["REPRO_BENCH_JOBS"] = str(args.jobs)

    import pytest

    script = find_script(spec)
    return pytest.main(
        [script, "--benchmark-only", "-s", f"--benchmark-json={args.benchmark_json}"]
    )
