"""Trend reports: metric trajectories and per-worker campaign throughput.

Two data sources feed the ``python -m repro.bench trend`` subcommand:

* the **perf history** (:mod:`repro.bench.history`): every recorded value
  of every metric, oldest first, rendered as one table per metric with the
  commit, host and delta-vs-previous columns a reviewer needs to spot a
  slow drift that no single gate run would catch;
* campaign **event logs** (:mod:`repro.sweep.eventlog`): replaying the
  persisted stream through :class:`CampaignReplay` recovers each worker's
  own begin/finish stamps (``PointRecord.meta``), from which the per-worker
  points/sec of a sweep is mined — the ground truth behind any
  campaign-level speedup number in the history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.history import HistoryRecord
from repro.sweep.eventlog import CampaignReplay
from repro.sweep.events import PointCompleted, PointStarted
from repro.utils.tables import format_table


# --------------------------------------------------------------------------- #
# metric trajectories from the history store
# --------------------------------------------------------------------------- #
def metric_names(
    records: Sequence[HistoryRecord], contains: Optional[str] = None
) -> List[str]:
    """Every qualified metric name in the records, sorted and filtered."""
    names = {
        f"{record.suite}.{name}"
        for record in records
        for name in record.metrics
    }
    if contains:
        names = {name for name in names if contains in name}
    return sorted(names)


def metric_series(records: Sequence[HistoryRecord], metric: str) -> List[tuple]:
    """``(record, value)`` pairs for one qualified metric, oldest first."""
    series = []
    for record in records:
        prefix = f"{record.suite}."
        if not metric.startswith(prefix):
            continue
        value = record.metrics.get(metric[len(prefix):])
        if value is not None:
            series.append((record, value))
    return series


def format_metric_trend(records: Sequence[HistoryRecord], metric: str) -> str:
    """One per-metric history table (commit, host, flags, value, delta)."""
    series = metric_series(records, metric)
    if not series:
        return f"{metric}: no recorded values"
    rows = []
    previous: Optional[float] = None
    for record, value in series:
        commit = (record.commit_id or "-")[:10]
        flags = []
        if record.smoke:
            flags.append("smoke")
        if record.contended:
            flags.append("contended")
        if previous in (None, 0):
            delta = "-"
        else:
            delta = f"{100.0 * (value - previous) / abs(previous):+.1f}%"
        rows.append(
            [
                record.datetime or "-",
                commit,
                record.host_key,
                ",".join(flags) or "-",
                value,
                delta,
            ]
        )
        previous = value
    return format_table(
        ["recorded", "commit", "host", "flags", "value", "delta"],
        rows,
        title=metric,
    )


def format_trend_report(
    records: Sequence[HistoryRecord],
    contains: Optional[str] = None,
    max_metrics: Optional[int] = None,
) -> str:
    """Tables for every (filtered) metric, plus a coverage summary line."""
    if not records:
        return "perf history is empty"
    names = metric_names(records, contains=contains)
    shown = names if max_metrics is None else names[:max_metrics]
    parts = [format_metric_trend(records, name) for name in shown]
    summary = (
        f"{len(records)} record(s), {len(names)} metric(s)"
        + (f", showing {len(shown)}" if len(shown) != len(names) else "")
    )
    return "\n\n".join(parts + [summary])


# --------------------------------------------------------------------------- #
# per-worker throughput mined from campaign event logs
# --------------------------------------------------------------------------- #
@dataclass
class WorkerThroughput:
    """One worker's mined campaign activity."""

    worker: int
    points: int = 0
    first_ts: Optional[float] = None  #: earliest started_ts stamped
    last_ts: Optional[float] = None  #: latest finished_ts stamped

    @property
    def span_seconds(self) -> Optional[float]:
        if self.first_ts is None or self.last_ts is None:
            return None
        return max(self.last_ts - self.first_ts, 0.0)

    @property
    def points_per_second(self) -> Optional[float]:
        span = self.span_seconds
        if span is None or span <= 0:
            return None
        return self.points / span


def mine_worker_throughput(path: str) -> Dict[int, WorkerThroughput]:
    """Per-worker throughput from one event log's worker-stamped records.

    Completions carry the evaluating process's own begin/finish timestamps
    in ``PointRecord.meta`` (see :mod:`repro.sweep.runners`); starts fill
    in workers whose completions never landed (a killed campaign).
    """
    workers: Dict[int, WorkerThroughput] = {}
    for event in CampaignReplay(path).events():
        if isinstance(event, PointCompleted):
            meta = event.record.meta or {}
            worker = meta.get("worker")
            if worker is None:
                continue
            stats = workers.setdefault(worker, WorkerThroughput(worker=worker))
            stats.points += 1
            started = meta.get("started_ts")
            finished = meta.get("finished_ts")
            if started is not None:
                stats.first_ts = (
                    started if stats.first_ts is None
                    else min(stats.first_ts, started)
                )
            if finished is not None:
                stats.last_ts = (
                    finished if stats.last_ts is None
                    else max(stats.last_ts, finished)
                )
        elif isinstance(event, PointStarted) and event.worker is not None:
            stats = workers.setdefault(
                event.worker, WorkerThroughput(worker=event.worker)
            )
            if event.ts is not None:
                stats.first_ts = (
                    event.ts if stats.first_ts is None
                    else min(stats.first_ts, event.ts)
                )
    return workers


def format_worker_report(path: str) -> str:
    """The per-worker table for one event log."""
    workers = mine_worker_throughput(path)
    if not workers:
        return f"{path}: no worker-stamped events"
    rows = []
    total_points = 0
    for worker in sorted(workers):
        stats = workers[worker]
        total_points += stats.points
        rate = stats.points_per_second
        span = stats.span_seconds
        rows.append(
            [
                worker,
                stats.points,
                "-" if span is None else f"{span:.2f}s",
                "-" if rate is None else f"{rate:.2f}/s",
            ]
        )
    table = format_table(
        ["worker", "points", "span", "rate"], rows, title=path
    )
    return f"{table}\n  -> {total_points} point(s) across {len(workers)} worker(s)"
