"""The paper's primary contribution: the Smache formal model and planner.

This subpackage contains everything that is *architecture-independent*: the
description of grids, stencils and boundary conditions; the formal
stream/tuple/range/reach model of Section II; the buffer-configuration
planner (Algorithm 1); the hybrid register/BRAM partitioning of the stream
buffer; and the memory-resource cost model used for design-space
exploration (Table I estimates).

The cycle-accurate hardware realisation of a plan lives in ``repro.arch``.
"""

from repro.core.grid import GridSpec, IterationPattern
from repro.core.stencil import StencilShape
from repro.core.boundary import BoundaryKind, BoundarySpec, EdgeBehaviour, ResolvedPoint
from repro.core.access import StreamTuple, tuple_for, reach_of, stream_tuples
from repro.core.ranges import StreamRange, partition_into_ranges, classify_cases
from repro.core.buffers import StreamBufferSpec, StaticBufferSpec, BufferPlan
from repro.core.planner import plan_buffers, RangePlan, optimal_split_for_range
from repro.core.partition import HybridPartition, partition_stream_buffer
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.core.analysis import analyse_static_buffers, StaticBufferRequirement
from repro.core.config import SmacheConfig, StreamBufferMode

__all__ = [
    "GridSpec",
    "IterationPattern",
    "StencilShape",
    "BoundaryKind",
    "BoundarySpec",
    "EdgeBehaviour",
    "ResolvedPoint",
    "StreamTuple",
    "tuple_for",
    "reach_of",
    "stream_tuples",
    "StreamRange",
    "partition_into_ranges",
    "classify_cases",
    "StreamBufferSpec",
    "StaticBufferSpec",
    "BufferPlan",
    "plan_buffers",
    "RangePlan",
    "optimal_split_for_range",
    "HybridPartition",
    "partition_stream_buffer",
    "MemoryCostEstimate",
    "estimate_memory_cost",
    "analyse_static_buffers",
    "StaticBufferRequirement",
    "SmacheConfig",
    "StreamBufferMode",
]
