"""The formal stream / tuple / range / reach model of Section II.

Given a grid (the memory vector ``m``), an iteration pattern ``p`` and a
stencil with boundary conditions, each stream position ``i`` has a *stream
tuple*: the set of elements of ``m`` that participate in the computation for
``s[i] = m[p(i)]``.  From the tuple we derive the two quantities the paper's
buffer planner works with:

* the **reach** — the difference between the largest and smallest offset
  (in stream positions) from the centre element to the tuple elements; and
* the **range** — a maximal run of consecutive stream positions whose tuples
  share the same *shape* (the same set of offsets), see
  :mod:`repro.core.ranges`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.boundary import BoundarySpec, ResolvedPoint, ResolutionKind
from repro.core.grid import GridSpec, IterationPattern
from repro.core.stencil import StencilShape


@dataclass(frozen=True)
class StreamTuple:
    """The tuple of accesses needed to compute one stream element.

    Attributes
    ----------
    position:
        Position in the stream (index into the iteration pattern).
    centre_linear:
        Linear index of the centre element in ``m``.
    points:
        The resolved stencil accesses (grid elements, constants or skipped).
    stream_offsets:
        For each *existing* point, its offset in stream positions relative to
        the centre (``linear_index − centre_linear`` for a contiguous
        pattern).  This is the quantity whose spread defines the reach.
    """

    position: int
    centre_linear: int
    points: Tuple[ResolvedPoint, ...]
    stream_offsets: Tuple[int, ...]

    @property
    def n_existing(self) -> int:
        """Number of accesses that read an actual grid element."""
        return len(self.stream_offsets)

    @property
    def reach(self) -> int:
        """max − min stream offset over the existing accesses (0 if <=1 access)."""
        return reach_of(self.stream_offsets)

    @property
    def max_abs_offset(self) -> int:
        """Largest absolute stream offset (useful for window sizing)."""
        if not self.stream_offsets:
            return 0
        return max(abs(o) for o in self.stream_offsets)

    @property
    def shape_key(self) -> Tuple[int, ...]:
        """Canonical key describing the tuple's shape (sorted stream offsets).

        Two stream positions belong to the same *stencil case* exactly when
        their shape keys are equal.  Skipped accesses are excluded; constant
        accesses are encoded as a sentinel so that e.g. a constant-padded
        corner is a different case from an open corner.
        """
        key = sorted(self.stream_offsets)
        n_const = sum(1 for p in self.points if p.kind is ResolutionKind.CONSTANT)
        n_skip = sum(1 for p in self.points if p.kind is ResolutionKind.SKIPPED)
        return tuple(key) + ("const", n_const) + ("skip", n_skip) if (n_const or n_skip) else tuple(key)


def reach_of(offsets: Sequence[int]) -> int:
    """The paper's *reach*: ``max(offsets) − min(offsets)`` (0 for empty/singleton)."""
    if len(offsets) <= 1:
        return 0
    return max(offsets) - min(offsets)


def tuple_for(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    position: int,
    centre_linear: Optional[int] = None,
) -> StreamTuple:
    """Build the stream tuple for one stream position.

    ``centre_linear`` defaults to ``position`` (contiguous iteration pattern).
    """
    if centre_linear is None:
        centre_linear = position
    centre = grid.coord(centre_linear)
    points = boundary.resolve_stencil(grid, centre, stencil)
    offsets = tuple(
        p.linear_index - centre_linear for p in points if p.exists and p.linear_index is not None
    )
    return StreamTuple(
        position=position,
        centre_linear=centre_linear,
        points=points,
        stream_offsets=offsets,
    )


def stream_tuples(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    pattern: Optional[IterationPattern] = None,
) -> Iterator[StreamTuple]:
    """Yield the stream tuple for every position of the iteration pattern."""
    if pattern is None:
        pattern = IterationPattern.contiguous(grid)
    for position, centre_linear in enumerate(pattern.indices()):
        yield tuple_for(grid, stencil, boundary, position, centre_linear)


def max_reach(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    pattern: Optional[IterationPattern] = None,
) -> int:
    """The largest reach over the whole stream.

    For a grid with circular boundaries this is typically of the order of the
    whole grid size, which is exactly the situation static buffers address.
    """
    return max((t.reach for t in stream_tuples(grid, stencil, boundary, pattern)), default=0)


def interior_reach(grid: GridSpec, stencil: StencilShape) -> int:
    """Reach of an interior (no boundary rule applied) element."""
    return stencil.interior_reach(grid.strides)


def access_histogram(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
) -> Dict[Tuple[int, ...], int]:
    """Histogram of tuple shapes over the stream.

    Returns a mapping from shape key to the number of stream positions having
    that shape.  For the paper's 11x11 example with circular top/bottom and
    open left/right boundaries this has exactly nine entries (4 corners,
    4 edges, 1 interior).
    """
    hist: Dict[Tuple[int, ...], int] = {}
    for t in stream_tuples(grid, stencil, boundary):
        hist[t.shape_key] = hist.get(t.shape_key, 0) + 1
    return hist
