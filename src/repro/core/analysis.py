"""Static analysis of a stencil problem.

Section III of the paper describes a two-level customisation of the Smache
architecture: the *number of static buffers* is fixed structurally (it is
determined by a static analysis of the stencil code), and a set of runtime
parameters then specialises the fixed structure to a concrete problem.

This module provides that static analysis: from a grid, stencil and boundary
specification it derives how many static buffers are needed, which grid
regions they must hold, which stencil offsets they serve and how large the
stream buffer has to be.  The result is a thin, report-friendly wrapper around
the planner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.boundary import BoundarySpec
from repro.core.buffers import BufferPlan
from repro.core.grid import GridSpec
from repro.core.planner import plan_buffers
from repro.core.ranges import classify_cases, partition_into_ranges
from repro.core.stencil import StencilShape


@dataclass(frozen=True)
class StaticBufferRequirement:
    """One static buffer identified by the analysis."""

    name: str
    start: int
    length: int
    serves_offsets: Tuple[int, ...]

    @property
    def end(self) -> int:
        """One past the last linear grid index covered."""
        return self.start + self.length


@dataclass(frozen=True)
class StencilAnalysis:
    """Result of statically analysing a stencil problem."""

    grid: GridSpec
    stencil: StencilShape
    boundary: BoundarySpec
    n_cases: int
    n_ranges: int
    max_reach: int
    stream_reach: int
    static_buffers: Tuple[StaticBufferRequirement, ...]
    plan: BufferPlan

    @property
    def n_static_buffers(self) -> int:
        """The structural parameter: how many static buffers the design needs."""
        return len(self.static_buffers)

    @property
    def needs_static_buffers(self) -> bool:
        """True when the stream buffer alone cannot economically serve the stencil."""
        return self.n_static_buffers > 0

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples and reports)."""
        lines = [
            f"Stencil analysis: {self.stencil} on {self.grid.describe()}",
            f"  boundaries        : {self.boundary.describe()}",
            f"  stencil cases     : {self.n_cases}",
            f"  stream ranges     : {self.n_ranges}",
            f"  max tuple reach   : {self.max_reach} elements",
            f"  stream buffer     : reach {self.stream_reach} "
            f"({self.plan.stream.depth} slots)",
            f"  static buffers    : {self.n_static_buffers}",
        ]
        for req in self.static_buffers:
            lines.append(
                f"    - {req.name}: grid[{req.start}:{req.end}] "
                f"({req.length} elements), serves offsets {list(req.serves_offsets)}"
            )
        return "\n".join(lines)


def analyse_static_buffers(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    *,
    max_stream_reach: Optional[int] = None,
    max_total_bits: Optional[int] = None,
) -> StencilAnalysis:
    """Statically analyse a stencil problem and derive its buffer requirements.

    This is the entry point used by :class:`repro.core.config.SmacheConfig`
    and by the examples; constraints model the available on-chip memory.
    """
    ranges = partition_into_ranges(grid, stencil, boundary)
    cases = classify_cases(ranges)
    plan = plan_buffers(
        grid,
        stencil,
        boundary,
        max_stream_reach=max_stream_reach,
        max_total_bits=max_total_bits,
    )
    statics = tuple(
        StaticBufferRequirement(
            name=s.name,
            start=s.start,
            length=s.length,
            serves_offsets=s.serves_offsets,
        )
        for s in plan.statics
    )
    max_reach = max((r.reach for r in ranges), default=0)
    return StencilAnalysis(
        grid=grid,
        stencil=stencil,
        boundary=boundary,
        n_cases=len(cases),
        n_ranges=len(ranges),
        max_reach=max_reach,
        stream_reach=plan.stream.reach,
        static_buffers=statics,
        plan=plan,
    )


def required_static_buffer_count(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
) -> int:
    """Shortcut: the number of static buffers a problem needs (structural layer)."""
    return analyse_static_buffers(grid, stencil, boundary).n_static_buffers
