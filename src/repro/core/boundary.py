"""Boundary conditions and resolution of out-of-grid stencil accesses.

The paper's motivating case is a 2D grid with *circular* boundaries at the
horizontal edges (top/bottom rows wrap around) and *open* boundaries at the
vertical edges (the missing neighbours simply do not participate).  Those two,
plus mirrored, clamped and constant-value boundaries, cover the boundary
conditions found in typical structured-grid scientific codes, and all of them
are expressible per-dimension and per-side here.

Resolution of a stencil access is the key operation: given a centre
coordinate and an offset that may fall outside the grid, produce a
:class:`ResolvedPoint` that says whether the access maps to a real grid
element (and which one), to a constant, or to nothing at all (open boundary).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape


class BoundaryKind(enum.Enum):
    """Behaviour of a single grid edge."""

    #: The neighbour does not exist; it is skipped (excluded from the tuple).
    OPEN = "open"
    #: Periodic wrap-around (the paper's "circular" boundary).
    CIRCULAR = "circular"
    #: Reflect about the edge (mirror without repeating the edge element).
    MIRROR = "mirror"
    #: Clamp to the nearest in-grid element along that dimension.
    CLAMP = "clamp"
    #: Substitute a fixed constant value.
    CONSTANT = "constant"


class ResolutionKind(enum.Enum):
    """How an individual stencil access resolved."""

    INTERIOR = "interior"      # in-grid without invoking any boundary rule
    WRAPPED = "wrapped"        # in-grid after applying circular/mirror/clamp rules
    CONSTANT = "constant"      # replaced by a constant value
    SKIPPED = "skipped"        # open boundary: the access does not exist


@dataclass(frozen=True)
class ResolvedPoint:
    """The result of resolving one stencil offset at one centre coordinate."""

    kind: ResolutionKind
    offset: Tuple[int, ...]
    linear_index: Optional[int] = None
    constant_value: Optional[float] = None

    @property
    def exists(self) -> bool:
        """True if this access reads a grid element (interior or wrapped)."""
        return self.kind in (ResolutionKind.INTERIOR, ResolutionKind.WRAPPED)


@dataclass(frozen=True)
class EdgeBehaviour:
    """Boundary behaviour of the low and high edge of one dimension."""

    low: BoundaryKind = BoundaryKind.OPEN
    high: BoundaryKind = BoundaryKind.OPEN

    @classmethod
    def both(cls, kind: BoundaryKind) -> "EdgeBehaviour":
        """Same behaviour at both edges of the dimension."""
        return cls(low=kind, high=kind)


@dataclass(frozen=True)
class BoundarySpec:
    """Per-dimension boundary conditions for a grid.

    Parameters
    ----------
    edges:
        One :class:`EdgeBehaviour` per grid dimension (outermost first).
    constant_value:
        Value substituted for ``CONSTANT`` boundaries.
    """

    edges: Tuple[EdgeBehaviour, ...]
    constant_value: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "edges", tuple(self.edges))
        if not self.edges:
            raise ValueError("boundary specification needs at least one dimension")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def all_open(cls, ndim: int) -> "BoundarySpec":
        """Open boundaries everywhere."""
        return cls(edges=tuple(EdgeBehaviour.both(BoundaryKind.OPEN) for _ in range(ndim)))

    @classmethod
    def all_circular(cls, ndim: int) -> "BoundarySpec":
        """Fully periodic grid."""
        return cls(edges=tuple(EdgeBehaviour.both(BoundaryKind.CIRCULAR) for _ in range(ndim)))

    @classmethod
    def paper_2d(cls) -> "BoundarySpec":
        """The paper's validation case: circular top/bottom, open left/right.

        In the paper's 11x11 example (Fig. 1a), the *horizontal* edges (top
        and bottom rows, i.e. dimension 0) are circular and the *vertical*
        edges (left/right columns, dimension 1) are open.
        """
        return cls(
            edges=(
                EdgeBehaviour.both(BoundaryKind.CIRCULAR),
                EdgeBehaviour.both(BoundaryKind.OPEN),
            )
        )

    @classmethod
    def per_dimension(cls, kinds: Sequence[BoundaryKind], constant_value: float = 0.0) -> "BoundarySpec":
        """Same behaviour at both edges of each dimension."""
        return cls(
            edges=tuple(EdgeBehaviour.both(k) for k in kinds),
            constant_value=constant_value,
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        """Number of dimensions covered by this specification."""
        return len(self.edges)

    def kind_at(self, dim: int, high_side: bool) -> BoundaryKind:
        """Boundary kind at the low (``high_side=False``) or high edge of ``dim``."""
        edge = self.edges[dim]
        return edge.high if high_side else edge.low

    def has_circular(self) -> bool:
        """True if any edge is circular (the large-reach case)."""
        return any(
            BoundaryKind.CIRCULAR in (e.low, e.high) for e in self.edges
        )

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def resolve(
        self,
        grid: GridSpec,
        centre: Sequence[int],
        offset: Sequence[int],
    ) -> ResolvedPoint:
        """Resolve a single stencil access ``centre + offset`` on ``grid``.

        The resolution applies each dimension's rule independently, which is
        the usual semantics for structured grids (a corner access may wrap in
        one dimension and be skipped in another; skipping wins).
        """
        if grid.ndim != self.ndim:
            raise ValueError(
                f"boundary spec covers {self.ndim} dimensions but grid has {grid.ndim}"
            )
        if len(centre) != grid.ndim or len(offset) != grid.ndim:
            raise ValueError("centre/offset arity does not match the grid")

        target = [c + o for c, o in zip(centre, offset)]
        wrapped = False
        for d, (t, extent) in enumerate(zip(list(target), grid.shape)):
            if 0 <= t < extent:
                continue
            kind = self.kind_at(d, high_side=t >= extent)
            if kind is BoundaryKind.OPEN:
                return ResolvedPoint(kind=ResolutionKind.SKIPPED, offset=tuple(offset))
            if kind is BoundaryKind.CONSTANT:
                return ResolvedPoint(
                    kind=ResolutionKind.CONSTANT,
                    offset=tuple(offset),
                    constant_value=self.constant_value,
                )
            if kind is BoundaryKind.CIRCULAR:
                target[d] = t % extent
            elif kind is BoundaryKind.CLAMP:
                target[d] = min(max(t, 0), extent - 1)
            elif kind is BoundaryKind.MIRROR:
                target[d] = _mirror_index(t, extent)
            else:  # pragma: no cover - exhaustive over enum
                raise AssertionError(f"unhandled boundary kind {kind}")
            wrapped = True
            if not (0 <= target[d] < extent):
                # Extremely large offsets on small grids can still land
                # outside after one mirror pass; treat as skipped.
                return ResolvedPoint(kind=ResolutionKind.SKIPPED, offset=tuple(offset))

        linear = grid.linear_index(target)
        kind = ResolutionKind.WRAPPED if wrapped else ResolutionKind.INTERIOR
        return ResolvedPoint(kind=kind, offset=tuple(offset), linear_index=linear)

    def resolve_stencil(
        self,
        grid: GridSpec,
        centre: Sequence[int],
        stencil: StencilShape,
    ) -> Tuple[ResolvedPoint, ...]:
        """Resolve every offset of ``stencil`` at ``centre``."""
        return tuple(self.resolve(grid, centre, off) for off in stencil.offsets)

    def describe(self) -> str:
        """Short human-readable description of the boundary conditions."""
        parts = []
        for d, edge in enumerate(self.edges):
            if edge.low == edge.high:
                parts.append(f"dim{d}:{edge.low.value}")
            else:
                parts.append(f"dim{d}:{edge.low.value}/{edge.high.value}")
        return ", ".join(parts)


def _mirror_index(t: int, extent: int) -> int:
    """Reflect an out-of-range index about the grid edges (no edge repetition)."""
    if extent == 1:
        return 0
    period = 2 * (extent - 1)
    t = t % period
    if t < 0:
        t += period
    if t >= extent:
        t = period - t
    return t
