"""Buffer specifications: the output of the buffer-configuration planner.

A :class:`BufferPlan` is the architecture-independent description of *what*
needs to be buffered on chip: one stream (window) buffer plus zero or more
static buffers.  ``repro.arch`` instantiates cycle-accurate hardware from a
plan; ``repro.core.cost_model`` prices it in registers and BRAM bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.core.boundary import BoundarySpec
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.utils.validation import check_non_negative, check_positive

#: Extra window slots beyond the raw reach.  The prototype HDL registers the
#: incoming word, the outgoing word and the centre tap separately, so the
#: physical window depth is ``reach + PIPELINE_SLACK`` elements; this constant
#: reproduces the stream-buffer sizes reported in Table I of the paper
#: (2*W + 3 elements for the 4-point stencil on a width-W grid).
PIPELINE_SLACK = 3


@dataclass(frozen=True)
class StreamBufferSpec:
    """The single moving-window (stream) buffer.

    Attributes
    ----------
    reach:
        Largest reach served by the window (max − min stream offset).
    window_lo / window_hi:
        The window covers stream offsets ``[window_lo, window_hi]`` relative
        to the current element, with ``window_hi − window_lo == reach``.
    depth:
        Physical number of element slots (``reach + PIPELINE_SLACK``).
    word_bits:
        Element width in bits.
    """

    reach: int
    window_lo: int
    window_hi: int
    word_bits: int
    slack: int = PIPELINE_SLACK

    def __post_init__(self) -> None:
        check_non_negative("reach", self.reach)
        check_positive("word_bits", self.word_bits)
        if self.window_hi - self.window_lo != self.reach:
            raise ValueError("window bounds are inconsistent with the reach")

    @property
    def depth(self) -> int:
        """Physical element slots including pipeline slack."""
        return self.reach + self.slack

    @property
    def total_bits(self) -> int:
        """Total storage of the stream buffer in bits."""
        return self.depth * self.word_bits


@dataclass(frozen=True)
class StaticBufferSpec:
    """One static buffer: a fixed set of grid elements kept on chip.

    Unlike the stream buffer, a static buffer does not slide with the stream;
    it holds the elements of a fixed linear run ``[start, start + length)`` of
    the grid (for the paper's validation case: the top row and the bottom
    row).  With double buffering each element is stored twice (read bank and
    write bank).
    """

    name: str
    start: int
    length: int
    word_bits: int
    double_buffered: bool = True
    serves_offsets: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        check_non_negative("start", self.start)
        check_positive("length", self.length)
        check_positive("word_bits", self.word_bits)

    @property
    def end(self) -> int:
        """One past the last linear grid index held by the buffer."""
        return self.start + self.length

    @property
    def banks(self) -> int:
        """Number of physical copies (2 when double buffered)."""
        return 2 if self.double_buffered else 1

    @property
    def total_bits(self) -> int:
        """Total storage of the static buffer in bits (all banks)."""
        return self.length * self.word_bits * self.banks

    def covers(self, linear_index: int) -> bool:
        """True if the buffer holds grid element ``linear_index``."""
        return self.start <= linear_index < self.end


@dataclass(frozen=True)
class RangePlan:
    """Planner decision for one stream range."""

    range_start: int
    range_length: int
    case_id: int
    kept_offsets: Tuple[int, ...]
    offloaded_offsets: Tuple[int, ...]
    stream_reach: int
    static_elements: int

    @property
    def total_elements(self) -> int:
        """Per-range cost in elements (stream reach + static elements)."""
        return self.stream_reach + self.static_elements


@dataclass(frozen=True)
class BufferPlan:
    """Complete buffer configuration for one stencil problem."""

    grid: GridSpec
    stencil: StencilShape
    boundary: BoundarySpec
    stream: StreamBufferSpec
    statics: Tuple[StaticBufferSpec, ...]
    range_plans: Tuple[RangePlan, ...]

    # ------------------------------------------------------------------ #
    @property
    def n_static_buffers(self) -> int:
        """Number of static buffers (the structural configuration layer)."""
        return len(self.statics)

    @property
    def static_elements(self) -> int:
        """Total static-buffer elements (single bank, i.e. before doubling)."""
        return sum(s.length for s in self.statics)

    @property
    def static_bits(self) -> int:
        """Total static-buffer bits, including double buffering."""
        return sum(s.total_bits for s in self.statics)

    @property
    def stream_bits(self) -> int:
        """Total stream-buffer bits."""
        return self.stream.total_bits

    @property
    def total_bits(self) -> int:
        """Total on-chip buffer storage in bits."""
        return self.static_bits + self.stream_bits

    @property
    def total_cost_elements(self) -> int:
        """The planner's objective: window reach + static elements (single bank)."""
        return self.stream.reach + self.static_elements

    def static_for(self, linear_index: int) -> Optional[StaticBufferSpec]:
        """Return the static buffer covering ``linear_index``, if any."""
        for s in self.statics:
            if s.covers(linear_index):
                return s
        return None

    def lookup_offsets(self) -> Tuple[int, ...]:
        """All distinct kept (window-served) offsets across ranges."""
        seen = set()
        for rp in self.range_plans:
            seen.update(rp.kept_offsets)
        return tuple(sorted(seen))

    def describe(self) -> str:
        """Multi-line human-readable summary of the plan."""
        lines = [
            f"Buffer plan for {self.grid.describe()}",
            f"  stencil     : {self.stencil}",
            f"  boundaries  : {self.boundary.describe()}",
            f"  stream buf  : reach {self.stream.reach}, depth {self.stream.depth} "
            f"elements ({self.stream.total_bits} bits), window "
            f"[{self.stream.window_lo}, {self.stream.window_hi}]",
            f"  static bufs : {self.n_static_buffers}",
        ]
        for s in self.statics:
            lines.append(
                f"    - {s.name}: grid[{s.start}:{s.end}] ({s.length} elements, "
                f"{s.total_bits} bits{', double-buffered' if s.double_buffered else ''})"
            )
        lines.append(f"  total       : {self.total_bits} bits on chip")
        return "\n".join(lines)
