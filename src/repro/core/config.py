"""Smache configuration: the public, user-facing entry point of the core API.

A :class:`SmacheConfig` bundles a stencil problem (grid, stencil, boundary
conditions) with the architecture knobs (stream-buffer mode, word width,
planner constraints) and exposes the two-layer customisation described in
Section III of the paper:

* the **structural layer** — the number of static buffers and the
  register/BRAM mapping mode — fixes the generated hardware structure; and
* the **parameter layer** — grid extents, stencil offsets, buffer base
  addresses and sizes — specialises that structure to a problem without
  changing it.

Typical use::

    config = SmacheConfig.paper_example()          # 11x11, 4-point, circular N/S
    plan = config.plan()                           # buffer configuration
    cost = config.cost_estimate()                  # Table-I style estimate
    system = build_smache_system(config)           # repro.arch: cycle-accurate HW
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional

from repro.core.analysis import StencilAnalysis, analyse_static_buffers
from repro.core.boundary import BoundarySpec
from repro.core.buffers import BufferPlan
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.core.grid import GridSpec
from repro.core.partition import (
    HybridPartition,
    StreamBufferMode,
    partition_for_plan,
)
from repro.core.stencil import StencilShape


@dataclass(frozen=True)
class SmacheConfig:
    """Complete description of a Smache instance for one stencil problem."""

    grid: GridSpec
    stencil: StencilShape
    boundary: BoundarySpec
    mode: StreamBufferMode = StreamBufferMode.HYBRID
    word_bits: Optional[int] = None
    max_stream_reach: Optional[int] = None
    max_total_bits: Optional[int] = None
    register_elements: Optional[int] = None
    kernel_ops_per_point: int = 4
    name: str = "smache"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_example(cls, rows: int = 11, cols: int = 11, **overrides) -> "SmacheConfig":
        """The paper's validation case: RxC grid, 4-point stencil, circular
        horizontal boundaries, open vertical boundaries."""
        config = cls(
            grid=GridSpec(shape=(rows, cols), word_bytes=4),
            stencil=StencilShape.four_point_2d(),
            boundary=BoundarySpec.paper_2d(),
            name=f"paper-{rows}x{cols}",
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def periodic_2d(cls, rows: int, cols: int, stencil: Optional[StencilShape] = None,
                    **overrides) -> "SmacheConfig":
        """Fully periodic 2D grid (both boundary pairs circular)."""
        config = cls(
            grid=GridSpec(shape=(rows, cols), word_bytes=4),
            stencil=stencil or StencilShape.five_point_2d(),
            boundary=BoundarySpec.all_circular(2),
            name=f"periodic-{rows}x{cols}",
        )
        return replace(config, **overrides) if overrides else config

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def effective_word_bits(self) -> int:
        """Element width used for buffer sizing."""
        return self.word_bits if self.word_bits is not None else self.grid.word_bits

    def analysis(self) -> StencilAnalysis:
        """Static analysis of the stencil problem (structural layer)."""
        return analyse_static_buffers(
            self.grid,
            self.stencil,
            self.boundary,
            max_stream_reach=self.max_stream_reach,
            max_total_bits=self.max_total_bits,
        )

    def plan(self) -> BufferPlan:
        """Buffer configuration for this problem."""
        return self.analysis().plan

    def partition(self, plan: Optional[BufferPlan] = None) -> HybridPartition:
        """Register/BRAM partition of the stream buffer."""
        if plan is None:
            plan = self.plan()
        return partition_for_plan(
            plan, self.mode, register_elements=self.register_elements
        )

    def cost_estimate(self, plan: Optional[BufferPlan] = None) -> MemoryCostEstimate:
        """Table-I style on-chip memory estimate."""
        if plan is None:
            plan = self.plan()
        return estimate_memory_cost(
            plan,
            self.mode,
            partition=self.partition(plan),
        )

    # ------------------------------------------------------------------ #
    # two-layer customisation
    # ------------------------------------------------------------------ #
    def structural_signature(self) -> Mapping[str, object]:
        """The structural layer: what would have to be re-generated in HDL."""
        plan = self.plan()
        return {
            "n_static_buffers": plan.n_static_buffers,
            "mode": self.mode.value,
            "n_taps": len([o for o in plan.lookup_offsets() if o != 0]),
        }

    def parameters(self) -> Mapping[str, object]:
        """The parameter layer: runtime-configurable values."""
        plan = self.plan()
        return {
            "grid_shape": self.grid.shape,
            "word_bits": self.effective_word_bits,
            "window_lo": plan.stream.window_lo,
            "window_hi": plan.stream.window_hi,
            "window_depth": plan.stream.depth,
            "static_buffers": tuple(
                {"name": s.name, "start": s.start, "length": s.length} for s in plan.statics
            ),
        }

    def is_structurally_compatible(self, other: "SmacheConfig") -> bool:
        """True if ``other`` can be hosted on hardware generated for ``self``.

        A Smache instance generated with N static buffers and a given stream
        mode can execute any problem needing at most N static buffers in the
        same mode (the extra buffers are simply parameterised to length 0).
        """
        mine = self.structural_signature()
        theirs = other.structural_signature()
        return (
            theirs["n_static_buffers"] <= mine["n_static_buffers"]
            and theirs["mode"] == mine["mode"]
        )

    def describe(self) -> str:
        """Multi-line summary used by examples."""
        plan = self.plan()
        partition = self.partition(plan)
        cost = self.cost_estimate(plan)
        lines = [
            f"SmacheConfig '{self.name}'",
            plan.describe(),
            f"  stream mapping : {partition.describe()}",
            f"  memory cost    : {cost.r_total_bits} register bits, "
            f"{cost.b_total_bits} BRAM bits",
        ]
        return "\n".join(lines)
