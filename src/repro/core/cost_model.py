"""Memory-resource cost model (Table I "Estimate" rows).

The Smache architecture consumes two kinds of on-chip memory: registers
(distributed memory) and block-RAM bits.  The cost model predicts both from a
:class:`~repro.core.buffers.BufferPlan` and a register/BRAM partition of the
stream buffer, following the structural accounting of the prototype HDL:

* **static buffers** are placed in BRAM (they are indexed, word-wide and
  double buffered), so each contributes ``2 · size · word_bits`` BRAM bits;
* the **stream buffer** contributes ``register_elements · word_bits`` register
  bits and ``bram_elements · word_bits`` BRAM bits, where the split comes from
  :mod:`repro.core.partition`.

The "Actual" columns of Table I come from synthesis; our analogue of synthesis
is :mod:`repro.fpga.synthesis`, which walks the same structure but adds the
implementation overheads a vendor tool introduces (FIFO pointer/control
registers, BRAM word-width rounding).  The paper's claim being reproduced is
that the *estimate closely tracks the actual*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.core.buffers import BufferPlan
from repro.core.partition import (
    HybridPartition,
    StreamBufferMode,
    partition_for_plan,
)


@dataclass(frozen=True)
class MemoryCostEstimate:
    """Predicted on-chip memory utilisation, split the same way as Table I."""

    #: Register bits used by static buffers (``Rsc``).
    r_static_bits: int
    #: BRAM bits used by static buffers (``Bsc``).
    b_static_bits: int
    #: Register bits used by the stream buffer (``Rsm``).
    r_stream_bits: int
    #: BRAM bits used by the stream buffer (``Bsm``).
    b_stream_bits: int

    @property
    def r_total_bits(self) -> int:
        """Total register bits (``Rtotal``)."""
        return self.r_static_bits + self.r_stream_bits

    @property
    def b_total_bits(self) -> int:
        """Total BRAM bits (``Btotal``)."""
        return self.b_static_bits + self.b_stream_bits

    @property
    def total_bits(self) -> int:
        """Total on-chip memory bits of either kind."""
        return self.r_total_bits + self.b_total_bits

    def as_table_row(self) -> Mapping[str, int]:
        """The six columns of Table I, in the paper's order."""
        return {
            "Rsc": self.r_static_bits,
            "Bsc": self.b_static_bits,
            "Rsm": self.r_stream_bits,
            "Bsm": self.b_stream_bits,
            "Rtotal": self.r_total_bits,
            "Btotal": self.b_total_bits,
        }


def estimate_memory_cost(
    plan: BufferPlan,
    mode: StreamBufferMode = StreamBufferMode.HYBRID,
    *,
    partition: Optional[HybridPartition] = None,
    statics_in_bram: bool = True,
) -> MemoryCostEstimate:
    """Estimate register and BRAM bits for a buffer plan.

    Parameters
    ----------
    plan:
        The buffer configuration produced by :func:`repro.core.planner.plan_buffers`.
    mode:
        Stream-buffer mapping (register-only vs hybrid); ignored when an
        explicit ``partition`` is supplied.
    partition:
        An explicit register/BRAM partition (e.g. one point of a DSE sweep).
    statics_in_bram:
        The prototype places static buffers in BRAM; set ``False`` to model a
        register-based static buffer (useful for very small boundary sets).
    """
    if partition is None:
        partition = partition_for_plan(plan, mode)

    static_bits = plan.static_bits
    r_static = 0 if statics_in_bram else static_bits
    b_static = static_bits if statics_in_bram else 0

    return MemoryCostEstimate(
        r_static_bits=r_static,
        b_static_bits=b_static,
        r_stream_bits=partition.register_bits,
        b_stream_bits=partition.bram_bits,
    )


def compare_estimates(
    estimate: MemoryCostEstimate,
    actual: MemoryCostEstimate,
) -> Mapping[str, float]:
    """Relative error of an estimate against a (synthesised) actual, per column.

    Columns where the actual is zero and the estimate is zero report an error
    of 0.0; columns where the actual is zero but the estimate is not report
    ``inf`` so that regressions are visible.
    """
    est_row = estimate.as_table_row()
    act_row = actual.as_table_row()
    errors = {}
    for key in est_row:
        a = act_row[key]
        e = est_row[key]
        if a == 0:
            errors[key] = 0.0 if e == 0 else float("inf")
        else:
            errors[key] = abs(e - a) / a
    return errors
