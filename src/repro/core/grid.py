"""Grid and iteration-pattern model.

The paper's formal model (Section II) starts from a vector ``m`` of size ``N``
representing the contents of the off-chip DRAM, plus input/output iteration
patterns ``p_i`` / ``p_o`` over ``0 .. N-1``.  In practice the data is an
N-dimensional grid stored in row-major order and the iteration pattern is the
contiguous (streaming) order, but both are kept general here:

* :class:`GridSpec` describes the logical grid (shape, word size) and provides
  the linearisation used to map grid coordinates onto stream positions.
* :class:`IterationPattern` describes the order in which grid elements are
  visited by the stream.  Contiguous and strided patterns are provided as
  constructors; arbitrary permutations are accepted for the general case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive, check_shape

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class GridSpec:
    """An N-dimensional grid of words stored row-major in DRAM.

    Parameters
    ----------
    shape:
        Extent of each dimension, outermost first.  A 2D grid of ``R`` rows
        and ``C`` columns is ``(R, C)`` and is linearised row by row, which
        matches the streaming order used throughout the paper.
    word_bytes:
        Size of one grid element in bytes (the paper uses 4-byte words).
    word_bits:
        Size of one grid element in bits.  Defaults to ``8 * word_bytes``.
    """

    shape: Tuple[int, ...]
    word_bytes: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        check_shape("shape", self.shape)
        check_positive("word_bytes", self.word_bytes)

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        """Number of grid dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements (the paper's ``N``)."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def word_bits(self) -> int:
        """Element width in bits."""
        return self.word_bytes * 8

    @property
    def total_bytes(self) -> int:
        """Total footprint of one copy of the grid in DRAM."""
        return self.size * self.word_bytes

    @property
    def strides(self) -> Tuple[int, ...]:
        """Row-major strides in *elements* (not bytes)."""
        strides = [1] * self.ndim
        for d in range(self.ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        return tuple(strides)

    # ------------------------------------------------------------------ #
    # linearisation
    # ------------------------------------------------------------------ #
    def linear_index(self, coord: Sequence[int]) -> int:
        """Map a grid coordinate onto its linear (stream) index.

        Raises ``IndexError`` if the coordinate is outside the grid; boundary
        resolution is the job of :class:`repro.core.boundary.BoundarySpec`.
        """
        if len(coord) != self.ndim:
            raise ValueError(f"coordinate {coord!r} has wrong arity for grid {self.shape}")
        idx = 0
        for c, extent, stride in zip(coord, self.shape, self.strides):
            if not (0 <= c < extent):
                raise IndexError(f"coordinate {tuple(coord)!r} outside grid {self.shape}")
            idx += c * stride
        return idx

    def coord(self, linear: int) -> Coord:
        """Inverse of :meth:`linear_index`."""
        if not (0 <= linear < self.size):
            raise IndexError(f"linear index {linear} outside grid of size {self.size}")
        out = []
        rem = linear
        for stride in self.strides:
            out.append(rem // stride)
            rem %= stride
        return tuple(out)

    def contains(self, coord: Sequence[int]) -> bool:
        """True if ``coord`` lies inside the grid."""
        return len(coord) == self.ndim and all(
            0 <= c < extent for c, extent in zip(coord, self.shape)
        )

    def linear_offset(self, offset: Sequence[int]) -> int:
        """Linearise a *relative* stencil offset (valid for interior points)."""
        if len(offset) != self.ndim:
            raise ValueError(f"offset {offset!r} has wrong arity for grid {self.shape}")
        return sum(o * stride for o, stride in zip(offset, self.strides))

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def coords(self) -> Iterator[Coord]:
        """Iterate over all coordinates in row-major (stream) order."""
        for linear in range(self.size):
            yield self.coord(linear)

    def empty_array(self, dtype=np.float64) -> np.ndarray:
        """Allocate a zeroed NumPy array with this grid's shape."""
        return np.zeros(self.shape, dtype=dtype)

    def describe(self) -> str:
        """Human-readable one-line description."""
        dims = "x".join(str(s) for s in self.shape)
        return f"{dims} grid, {self.word_bytes}-byte words ({self.total_bytes} bytes)"


@dataclass(frozen=True)
class IterationPattern:
    """An ordered visit pattern over the linear indices of a grid.

    The paper defines the input/output streams as ``s[i] = m[p(i)]`` for an
    iteration pattern ``p``.  The common case is the contiguous pattern
    (identity permutation); strided and explicit patterns support the more
    general definition in Section II.
    """

    grid: GridSpec
    kind: str = "contiguous"
    stride: int = 1
    explicit: Tuple[int, ...] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.kind not in ("contiguous", "strided", "explicit"):
            raise ValueError(f"unknown iteration pattern kind {self.kind!r}")
        if self.kind == "strided":
            check_positive("stride", self.stride)
        if self.kind == "explicit":
            if self.explicit is None:
                raise ValueError("explicit iteration pattern requires 'explicit' indices")
            object.__setattr__(self, "explicit", tuple(int(i) for i in self.explicit))
            for i in self.explicit:
                if not (0 <= i < self.grid.size):
                    raise ValueError(f"explicit index {i} outside grid of size {self.grid.size}")

    # ------------------------------------------------------------------ #
    @classmethod
    def contiguous(cls, grid: GridSpec) -> "IterationPattern":
        """The streaming order: 0, 1, 2, ... N-1."""
        return cls(grid=grid, kind="contiguous")

    @classmethod
    def strided(cls, grid: GridSpec, stride: int) -> "IterationPattern":
        """Visit every ``stride``-th element (wrapping phase by phase).

        The pattern still visits every element exactly once: it visits
        0, s, 2s, ..., then 1, 1+s, ..., covering all residue classes.
        """
        return cls(grid=grid, kind="strided", stride=stride)

    @classmethod
    def from_indices(cls, grid: GridSpec, indices: Sequence[int]) -> "IterationPattern":
        """An arbitrary (possibly partial) ordered subset of ``0..N-1``."""
        return cls(grid=grid, kind="explicit", explicit=tuple(indices))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self.kind == "explicit":
            assert self.explicit is not None
            return len(self.explicit)
        return self.grid.size

    def indices(self) -> Iterator[int]:
        """Yield the visited linear indices in order."""
        n = self.grid.size
        if self.kind == "contiguous":
            yield from range(n)
        elif self.kind == "strided":
            for phase in range(min(self.stride, n)):
                yield from range(phase, n, self.stride)
        else:
            assert self.explicit is not None
            yield from self.explicit

    def is_contiguous(self) -> bool:
        """True if the pattern is the identity (pure streaming) order."""
        if self.kind == "contiguous":
            return True
        if self.kind == "strided":
            return self.stride == 1
        assert self.explicit is not None
        return tuple(self.explicit) == tuple(range(self.grid.size))
