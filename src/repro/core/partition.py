"""Hybrid register / BRAM partitioning of the stream buffer.

The stream (window) buffer can be realised entirely in registers (the paper's
*Case-R*) or as a hybrid (the paper's *Case-H*): only the window positions
that feed the stencil taps are registers — they must all be readable in the
same cycle — while the stretches of window between taps are plain FIFOs that
only ever need a single sequential read per cycle and can therefore live in
block RAM without inferring extra ports.

The structural accounting used here reproduces the stream-buffer register
counts of Table I:

* register-only: every window slot is a register → ``depth`` registers;
* hybrid: ``2·n_taps + 3`` registers (one register per tap, one transfer
  register where each tap hands off to the neighbouring BRAM FIFO segment,
  plus the input, centre and output pipeline registers), with the remaining
  ``depth − (2·n_taps + 3)`` slots in BRAM FIFO segments.

For the paper's 4-point stencil (4 taps) the hybrid register section is 11
elements regardless of grid size, which is exactly the 352-bit figure in
Table I.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.buffers import BufferPlan, StreamBufferSpec
from repro.utils.validation import check_non_negative


class StreamBufferMode(enum.Enum):
    """How the stream buffer is mapped onto FPGA memory resources."""

    #: Entire window in registers (the paper's Case-R).
    REGISTER_ONLY = "r"
    #: Taps in registers, bulk in BRAM FIFOs (the paper's Case-H).
    HYBRID = "h"
    #: Caller-specified number of register slots (used by DSE sweeps).
    CUSTOM = "custom"


@dataclass(frozen=True)
class HybridPartition:
    """Concrete split of the stream buffer between registers and BRAM."""

    mode: StreamBufferMode
    depth: int
    register_elements: int
    bram_elements: int
    word_bits: int
    n_taps: int
    bram_segments: int

    def __post_init__(self) -> None:
        check_non_negative("register_elements", self.register_elements)
        check_non_negative("bram_elements", self.bram_elements)
        if self.register_elements + self.bram_elements != self.depth:
            raise ValueError(
                "register_elements + bram_elements must equal the window depth "
                f"({self.register_elements} + {self.bram_elements} != {self.depth})"
            )

    @property
    def register_bits(self) -> int:
        """Stream-buffer register bits (the paper's ``Rsm``)."""
        return self.register_elements * self.word_bits

    @property
    def bram_bits(self) -> int:
        """Stream-buffer BRAM bits (the paper's ``Bsm``)."""
        return self.bram_elements * self.word_bits

    @property
    def max_concurrent_bram_reads(self) -> int:
        """Each BRAM FIFO segment needs at most one read per cycle."""
        return 1 if self.bram_segments > 0 else 0

    def describe(self) -> str:
        """One-line summary of the partition."""
        return (
            f"{self.mode.value}: {self.register_elements} register + "
            f"{self.bram_elements} BRAM elements over {self.bram_segments} FIFO segment(s)"
        )


def hybrid_register_slots(n_taps: int) -> int:
    """Register slots used by the hybrid partition for ``n_taps`` stencil taps."""
    check_non_negative("n_taps", n_taps)
    return 2 * n_taps + 3


def partition_stream_buffer(
    stream: StreamBufferSpec,
    n_taps: int,
    mode: StreamBufferMode = StreamBufferMode.HYBRID,
    *,
    register_elements: Optional[int] = None,
) -> HybridPartition:
    """Partition a stream buffer between registers and BRAM.

    Parameters
    ----------
    stream:
        The stream-buffer specification (from a :class:`BufferPlan`).
    n_taps:
        Number of window positions that must be readable concurrently, i.e.
        the number of stencil offsets served by the window (excluding the
        centre, which always has its own pipeline register).
    mode:
        ``REGISTER_ONLY``, ``HYBRID`` or ``CUSTOM``.
    register_elements:
        Required for ``CUSTOM``; ignored otherwise.
    """
    depth = stream.depth
    if mode is StreamBufferMode.REGISTER_ONLY:
        regs = depth
    elif mode is StreamBufferMode.HYBRID:
        regs = min(depth, hybrid_register_slots(n_taps))
    elif mode is StreamBufferMode.CUSTOM:
        if register_elements is None:
            raise ValueError("CUSTOM partition requires register_elements")
        if not (0 <= register_elements <= depth):
            raise ValueError(
                f"register_elements must be in [0, {depth}], got {register_elements}"
            )
        regs = register_elements
    else:  # pragma: no cover - exhaustive over enum
        raise AssertionError(f"unhandled mode {mode}")

    bram = depth - regs
    if bram == 0:
        segments = 0
    else:
        # Between n_taps tap registers there are at most n_taps + 1 stretches of
        # window; in the canonical row-buffer layout the taps split the window
        # into one FIFO segment per full grid row held, which is n_taps - 1 for
        # a symmetric cross stencil.  We bound it by the available BRAM slots.
        segments = max(1, min(n_taps - 1 if n_taps > 1 else 1, bram))
    return HybridPartition(
        mode=mode,
        depth=depth,
        register_elements=regs,
        bram_elements=bram,
        word_bits=stream.word_bits,
        n_taps=n_taps,
        bram_segments=segments,
    )


def partition_for_plan(
    plan: BufferPlan,
    mode: StreamBufferMode = StreamBufferMode.HYBRID,
    *,
    register_elements: Optional[int] = None,
) -> HybridPartition:
    """Partition the stream buffer of a :class:`BufferPlan`.

    The number of taps is the number of distinct window-served offsets of the
    plan, excluding the centre element (offset 0) whose pipeline register is
    part of the fixed overhead.
    """
    kept = set(plan.lookup_offsets())
    kept.discard(0)
    return partition_stream_buffer(
        plan.stream,
        n_taps=len(kept),
        mode=mode,
        register_elements=register_elements,
    )


def sweep_partitions(
    stream: StreamBufferSpec,
    n_taps: int,
    steps: int = 8,
) -> Tuple[HybridPartition, ...]:
    """Generate a sweep of CUSTOM partitions between all-BRAM-bulk and all-register.

    Used by the DSE module to trade registers against BRAM bits; the sweep
    always includes the canonical HYBRID and REGISTER_ONLY points.
    """
    depth = stream.depth
    lo = min(depth, hybrid_register_slots(n_taps))
    points = sorted(
        {lo, depth}
        | {lo + round((depth - lo) * i / max(1, steps - 1)) for i in range(steps)}
    )
    return tuple(
        partition_stream_buffer(
            stream,
            n_taps,
            StreamBufferMode.CUSTOM,
            register_elements=p,
        )
        for p in points
    )
