"""Buffer-configuration planning (the paper's Algorithm 1, generalised).

The planner answers the question: *given a stencil problem, which accesses are
served by the moving stream (window) buffer and which by static buffers, so
that total on-chip memory is minimised?*

Section II of the paper formalises the per-range trade-off: keeping a tuple
element in the stream buffer costs window *reach*, while moving it to a static
buffer costs one element per position of the range.  The global objective is

    ``total = max over ranges of (stream reach) + sum of static buffer sizes``

because a single physical stream buffer (the one with the largest reach)
serves all ranges.

Two planners are provided:

* :func:`plan_buffers` — the production planner.  It observes that the choice
  per range is really the choice of a single *global window* ``[lo, hi]`` of
  stream offsets: any access whose offset falls inside the window is free
  (it is in the stream buffer anyway), any access outside is offloaded to a
  static buffer.  Static buffers are then *merged* across ranges (the
  top-row/bottom-row buffers of the paper's example each serve three ranges:
  two corners and an edge).  The planner enumerates candidate windows drawn
  from the distinct offsets of the problem, which is exact for the global
  objective and cheap (the number of distinct offsets is tiny).

* :func:`paper_algorithm1` — a literal transcription of the per-range
  pseudo-code from the paper, kept for comparison and used in the test-suite
  to check that the production planner never does worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.boundary import BoundarySpec
from repro.core.buffers import (
    PIPELINE_SLACK,
    BufferPlan,
    RangePlan,
    StaticBufferSpec,
    StreamBufferSpec,
)
from repro.core.grid import GridSpec, IterationPattern
from repro.core.ranges import StreamRange, partition_into_ranges
from repro.core.stencil import StencilShape


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _merge_runs(runs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping or adjacent ``[start, end)`` runs."""
    if not runs:
        return []
    ordered = sorted(runs)
    merged = [list(ordered[0])]
    for start, end in ordered[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def _static_runs_for_window(
    ranges: Sequence[StreamRange],
    window_lo: int,
    window_hi: int,
) -> Tuple[List[Tuple[int, int]], Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]]]:
    """For a candidate window, compute the static element runs and per-range splits.

    Returns ``(merged_runs, per_range)`` where ``per_range`` maps the range
    start position to ``(kept_offsets, offloaded_offsets)``.
    """
    runs: List[Tuple[int, int]] = []
    per_range: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
    for r in ranges:
        kept = tuple(o for o in r.stream_offsets if window_lo <= o <= window_hi)
        offloaded = tuple(o for o in r.stream_offsets if not (window_lo <= o <= window_hi))
        per_range[r.start] = (kept, offloaded)
        for o in offloaded:
            runs.append((r.start + o, r.start + o + r.length))
    return _merge_runs(runs), per_range


def _candidate_windows(ranges: Sequence[StreamRange]) -> List[Tuple[int, int]]:
    """Candidate ``(lo, hi)`` windows drawn from the problem's distinct offsets."""
    offsets = set()
    for r in ranges:
        offsets.update(r.stream_offsets)
    los = sorted({o for o in offsets if o < 0} | {0})
    his = sorted({o for o in offsets if o > 0} | {0})
    return [(lo, hi) for lo in los for hi in his]


def _describe_run(grid: GridSpec, start: int, end: int, index: int) -> str:
    """Name a static buffer after the grid region it covers."""
    row_len = grid.shape[-1]
    if start % row_len == 0 and (end - start) % row_len == 0:
        first_row = start // row_len
        last_row = (end - start) // row_len + first_row - 1
        if first_row == last_row:
            return f"row{first_row}"
        return f"rows{first_row}-{last_row}"
    return f"static{index}"


# --------------------------------------------------------------------------- #
# the production planner
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PlannerResult:
    """Intermediate planner outcome for one candidate window (used by DSE)."""

    window_lo: int
    window_hi: int
    stream_reach: int
    static_elements: int
    total_elements: int
    n_static_buffers: int
    feasible: bool


def evaluate_window(
    ranges: Sequence[StreamRange],
    window_lo: int,
    window_hi: int,
) -> PlannerResult:
    """Cost of one candidate window (without building the full plan)."""
    merged, _ = _static_runs_for_window(ranges, window_lo, window_hi)
    static_elements = sum(end - start for start, end in merged)
    reach = window_hi - window_lo
    return PlannerResult(
        window_lo=window_lo,
        window_hi=window_hi,
        stream_reach=reach,
        static_elements=static_elements,
        total_elements=reach + static_elements,
        n_static_buffers=len(merged),
        feasible=True,
    )


def optimal_split_for_range(
    r: StreamRange,
    max_stream_reach: Optional[int] = None,
) -> Tuple[Tuple[int, ...], Tuple[int, ...], int, int]:
    """Per-range optimal split (Section II, per-range view).

    Considers every contiguous sub-window of the sorted offsets that contains
    offset 0 and returns ``(kept, offloaded, stream_reach, static_elements)``
    minimising ``stream_reach + static_elements`` subject to the optional
    reach constraint.
    """
    offsets = sorted(set(r.stream_offsets) | {0})
    best = None
    for i, lo in enumerate(offsets):
        if lo > 0:
            break
        for hi in offsets[i:]:
            if hi < 0:
                continue
            reach = hi - lo
            if max_stream_reach is not None and reach > max_stream_reach:
                continue
            kept = tuple(o for o in r.stream_offsets if lo <= o <= hi)
            offloaded = tuple(o for o in r.stream_offsets if not (lo <= o <= hi))
            static = len(offloaded) * r.length
            total = reach + static
            cand = (total, reach, kept, offloaded, static)
            if best is None or cand[:2] < best[:2]:
                best = cand
    if best is None:
        # Unreachable with the {0} candidate always present, but keep a
        # defensive fallback: offload everything.
        offloaded = tuple(r.stream_offsets)
        return (), offloaded, 0, len(offloaded) * r.length
    _, reach, kept, offloaded, static = best
    return kept, offloaded, reach, static


def plan_buffers(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    pattern: Optional[IterationPattern] = None,
    *,
    word_bits: Optional[int] = None,
    max_stream_reach: Optional[int] = None,
    max_total_bits: Optional[int] = None,
    double_buffer_statics: bool = True,
    slack: int = PIPELINE_SLACK,
) -> BufferPlan:
    """Compute the globally optimal buffer configuration for a stencil problem.

    Parameters
    ----------
    grid, stencil, boundary, pattern:
        The stencil problem.  ``pattern`` defaults to contiguous streaming.
    word_bits:
        Element width; defaults to the grid's word size.
    max_stream_reach:
        Upper bound on the stream-buffer reach in elements (models an on-chip
        memory constraint); candidates above the bound are discarded.
    max_total_bits:
        Upper bound on total buffer bits.  If no candidate satisfies it the
        smallest-footprint candidate is returned (callers can check
        :attr:`BufferPlan.total_bits`).
    double_buffer_statics:
        Whether static buffers are double buffered (the paper's design).
    slack:
        Extra window slots beyond the reach (pipeline registers).
    """
    if word_bits is None:
        word_bits = grid.word_bits
    ranges = partition_into_ranges(grid, stencil, boundary, pattern)
    if not ranges:
        raise ValueError("the stencil problem produced no stream ranges")

    static_bank_factor = 2 if double_buffer_statics else 1
    candidates = _candidate_windows(ranges)

    scored: List[Tuple[Tuple[int, int, int], Tuple[int, int], PlannerResult]] = []
    for lo, hi in candidates:
        if max_stream_reach is not None and (hi - lo) > max_stream_reach:
            continue
        result = evaluate_window(ranges, lo, hi)
        total_bits = (result.stream_reach + slack) * word_bits + (
            result.static_elements * word_bits * static_bank_factor
        )
        feasible = max_total_bits is None or total_bits <= max_total_bits
        # Rank: feasibility first, then total element cost, then fewer static
        # buffers, then smaller window.
        rank = (0 if feasible else 1, result.total_elements, result.n_static_buffers)
        scored.append((rank, (lo, hi), result))

    if not scored:
        raise ValueError(
            "no candidate window satisfies max_stream_reach="
            f"{max_stream_reach}; relax the constraint"
        )
    scored.sort(key=lambda item: (item[0], item[1][1] - item[1][0]))
    _, (lo, hi), best = scored[0]

    merged_runs, per_range = _static_runs_for_window(ranges, lo, hi)

    # Map each merged run to the offsets it serves (for reporting).
    serves: Dict[Tuple[int, int], set] = {run: set() for run in merged_runs}
    for r in ranges:
        _, offloaded = per_range[r.start]
        for o in offloaded:
            target_start = r.start + o
            for run in merged_runs:
                if run[0] <= target_start < run[1]:
                    serves[run].add(o)
                    break

    statics = tuple(
        StaticBufferSpec(
            name=_describe_run(grid, start, end, i),
            start=start,
            length=end - start,
            word_bits=word_bits,
            double_buffered=double_buffer_statics,
            serves_offsets=tuple(sorted(serves[(start, end)])),
        )
        for i, (start, end) in enumerate(merged_runs)
    )

    range_plans = tuple(
        RangePlan(
            range_start=r.start,
            range_length=r.length,
            case_id=r.case_id,
            kept_offsets=per_range[r.start][0],
            offloaded_offsets=per_range[r.start][1],
            stream_reach=(max(per_range[r.start][0]) - min(per_range[r.start][0]))
            if per_range[r.start][0]
            else 0,
            static_elements=len(per_range[r.start][1]) * r.length,
        )
        for r in ranges
    )

    stream = StreamBufferSpec(
        reach=hi - lo,
        window_lo=lo,
        window_hi=hi,
        word_bits=word_bits,
        slack=slack,
    )
    return BufferPlan(
        grid=grid,
        stencil=stencil,
        boundary=boundary,
        stream=stream,
        statics=statics,
        range_plans=range_plans,
    )


# --------------------------------------------------------------------------- #
# literal Algorithm 1 (per-range, no static-buffer merging)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Algorithm1Result:
    """Outcome of the paper's per-range algorithm."""

    per_range_stream: Tuple[int, ...]
    per_range_static: Tuple[int, ...]
    total_elements: int


def paper_algorithm1(ranges: Sequence[StreamRange]) -> Algorithm1Result:
    """Literal transcription of Algorithm 1 from the paper.

    For each range the offsets are ordered by increasing distance from the
    centre; keeping the ``i+1`` nearest offsets in the stream buffer costs
    their reach, and each remaining offset costs one static element per range
    position.  (The paper's pseudo-code prints the static cost as ``i * R_j``;
    from the surrounding text the intended quantity is the number of
    *offloaded* elements times the range size, which is what is implemented
    here.)  The global cost is ``max(stream) + sum(static)`` — note that,
    unlike :func:`plan_buffers`, static buffers are **not** merged across
    ranges, so this is an upper bound on the production planner's cost.
    """
    per_stream: List[int] = []
    per_static: List[int] = []
    for r in ranges:
        offsets = sorted(set(r.stream_offsets) | {0}, key=lambda o: (abs(o), o))
        n = len(offsets)
        best_total = None
        best = (0, 0)
        for i in range(n):
            kept = offsets[: i + 1]
            stream_i = max(kept) - min(kept)
            offloaded = n - 1 - i
            static_i = offloaded * r.length
            total_i = stream_i + static_i
            if best_total is None or total_i < best_total:
                best_total = total_i
                best = (stream_i, static_i)
        per_stream.append(best[0])
        per_static.append(best[1])
    total = (max(per_stream) if per_stream else 0) + sum(per_static)
    return Algorithm1Result(
        per_range_stream=tuple(per_stream),
        per_range_static=tuple(per_static),
        total_elements=total,
    )
