"""Partitioning the stream into ranges of identical stencil cases.

Section II of the paper divides the stream into ``k`` non-overlapping ranges,
each with a fixed tuple shape; the buffer-configuration algorithm then works
per range.  For the paper's 11x11 validation grid (4-point stencil, circular
top/bottom boundaries, open left/right boundaries) there are nine distinct
*cases* — 4 corners, 4 edges, 1 interior — and, because cases interleave along
the stream, considerably more *ranges* (each row of the grid contributes a
left-edge range, an interior range and a right-edge range).

Two implementations are provided:

* an analytic *banded* partitioner for contiguous iteration patterns, which
  scales to the paper's 1024x1024 grid without enumerating a million tuples;
* a generic enumerating partitioner used for arbitrary iteration patterns and
  as a cross-check in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.access import StreamTuple, tuple_for
from repro.core.boundary import BoundarySpec
from repro.core.grid import GridSpec, IterationPattern
from repro.core.stencil import StencilShape


@dataclass(frozen=True)
class StreamRange:
    """A maximal run of consecutive stream positions sharing one tuple shape."""

    start: int
    length: int
    case_id: int
    representative: StreamTuple

    @property
    def end(self) -> int:
        """One past the last stream position of the range."""
        return self.start + self.length

    @property
    def stream_offsets(self) -> Tuple[int, ...]:
        """Stream offsets of the existing accesses (shared by the whole range)."""
        return self.representative.stream_offsets

    @property
    def reach(self) -> int:
        """Reach of the range's tuple."""
        return self.representative.reach

    @property
    def n_points(self) -> int:
        """Number of existing accesses per tuple in this range."""
        return self.representative.n_existing


@dataclass(frozen=True)
class CaseInfo:
    """Aggregate information about one stencil case (a set of ranges)."""

    case_id: int
    shape_key: Tuple
    n_ranges: int
    n_positions: int
    reach: int
    representative: StreamTuple


def _dimension_bands(extent: int, lo_radius: int, hi_radius: int) -> List[Tuple[int, int]]:
    """Split one dimension into bands of indices with identical boundary behaviour.

    Indices closer to an edge than the stencil radius behave individually
    (different subsets of offsets cross the edge); the remaining middle
    indices form a single interior band.
    """
    if extent <= lo_radius + hi_radius:
        # Degenerate: every index may interact with a boundary differently.
        return [(i, 1) for i in range(extent)]
    bands: List[Tuple[int, int]] = [(i, 1) for i in range(lo_radius)]
    bands.append((lo_radius, extent - lo_radius - hi_radius))
    bands.extend((extent - hi_radius + i, 1) for i in range(hi_radius))
    return bands


def _banded_partition(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
) -> List[StreamRange]:
    """Analytic partitioner for the contiguous (row-major) iteration pattern."""
    radii_lo = []
    radii_hi = []
    for d in range(grid.ndim):
        lo, hi = stencil.extent(d)
        radii_lo.append(max(0, -lo))
        radii_hi.append(max(0, hi))

    inner = grid.ndim - 1
    inner_bands = _dimension_bands(grid.shape[inner], radii_lo[inner], radii_hi[inner])

    outer_bands_per_dim = [
        _dimension_bands(grid.shape[d], radii_lo[d], radii_hi[d]) for d in range(inner)
    ]

    # Enumerate outer coordinates row by row so that ranges come out already in
    # stream order; the band decomposition is only applied to the innermost
    # dimension, which is the one that is contiguous in the stream.
    ranges: List[StreamRange] = []
    case_ids: Dict[Tuple, int] = {}

    def outer_coords(dim: int, prefix: Tuple[int, ...]):
        if dim == inner:
            yield prefix
            return
        for start, length in outer_bands_per_dim[dim]:
            for idx in range(start, start + length):
                yield from outer_coords(dim + 1, prefix + (idx,))

    for prefix in outer_coords(0, ()):
        for start, length in inner_bands:
            centre = prefix + (start,)
            centre_linear = grid.linear_index(centre)
            rep = tuple_for(grid, stencil, boundary, centre_linear, centre_linear)
            key = rep.shape_key
            case_id = case_ids.setdefault(key, len(case_ids))
            ranges.append(
                StreamRange(
                    start=centre_linear,
                    length=length,
                    case_id=case_id,
                    representative=rep,
                )
            )
    return ranges


def _enumerating_partition(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    pattern: IterationPattern,
    max_positions: int = 2_000_000,
) -> List[StreamRange]:
    """Generic partitioner: walk every position and merge equal-shaped runs."""
    if len(pattern) > max_positions:
        raise ValueError(
            f"iteration pattern has {len(pattern)} positions, above the enumeration "
            f"limit of {max_positions}; use a contiguous pattern for the analytic path"
        )
    ranges: List[StreamRange] = []
    case_ids: Dict[Tuple, int] = {}
    current_key = None
    current_start = 0
    current_rep: Optional[StreamTuple] = None
    count = 0

    for position, centre_linear in enumerate(pattern.indices()):
        t = tuple_for(grid, stencil, boundary, position, centre_linear)
        key = t.shape_key
        if key != current_key:
            if current_rep is not None:
                case_id = case_ids.setdefault(current_key, len(case_ids))
                ranges.append(
                    StreamRange(
                        start=current_start,
                        length=count,
                        case_id=case_id,
                        representative=current_rep,
                    )
                )
            current_key = key
            current_start = position
            current_rep = t
            count = 0
        count += 1
    if current_rep is not None:
        case_id = case_ids.setdefault(current_key, len(case_ids))
        ranges.append(
            StreamRange(
                start=current_start, length=count, case_id=case_id, representative=current_rep
            )
        )
    return ranges


def partition_into_ranges(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    pattern: Optional[IterationPattern] = None,
) -> List[StreamRange]:
    """Divide the stream into non-overlapping ranges of constant tuple shape.

    For contiguous iteration patterns the analytic banded partitioner is used
    (it never enumerates more positions than ``number of rows x bands``); for
    other patterns the positions are enumerated directly.
    """
    if pattern is None or pattern.is_contiguous():
        return _banded_partition(grid, stencil, boundary)
    return _enumerating_partition(grid, stencil, boundary, pattern)


def classify_cases(ranges: Sequence[StreamRange]) -> Dict[int, CaseInfo]:
    """Aggregate ranges by case id (tuple shape)."""
    cases: Dict[int, CaseInfo] = {}
    for r in ranges:
        existing = cases.get(r.case_id)
        if existing is None:
            cases[r.case_id] = CaseInfo(
                case_id=r.case_id,
                shape_key=r.representative.shape_key,
                n_ranges=1,
                n_positions=r.length,
                reach=r.reach,
                representative=r.representative,
            )
        else:
            cases[r.case_id] = CaseInfo(
                case_id=existing.case_id,
                shape_key=existing.shape_key,
                n_ranges=existing.n_ranges + 1,
                n_positions=existing.n_positions + r.length,
                reach=existing.reach,
                representative=existing.representative,
            )
    return cases


def n_cases(
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
) -> int:
    """Number of distinct stencil cases (the paper's nine for the 11x11 example)."""
    return len(classify_cases(partition_into_ranges(grid, stencil, boundary)))
