"""Arbitrary stencil shapes.

A stencil is a set of relative offsets around a centre element.  The paper's
headline example is a 2D 4-point stencil (north, south, east, west), but the
whole point of Smache is to support *arbitrary* shapes, including asymmetric
ones and ones with very large reaches; :class:`StencilShape` therefore accepts
any finite set of integer offset vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.utils.validation import check_positive, check_unique

Offset = Tuple[int, ...]


@dataclass(frozen=True)
class StencilShape:
    """A finite set of relative offsets defining a stencil.

    Parameters
    ----------
    offsets:
        Offset vectors relative to the centre element.  The centre ``(0,..,0)``
        may or may not be included — the 4-point averaging filter of the paper
        does not read the centre.
    name:
        Optional label used in reports.
    """

    offsets: Tuple[Offset, ...]
    name: str = "stencil"

    def __post_init__(self) -> None:
        offsets = tuple(tuple(int(c) for c in off) for off in self.offsets)
        if not offsets:
            raise ValueError("a stencil needs at least one offset")
        arity = len(offsets[0])
        for off in offsets:
            if len(off) != arity:
                raise ValueError(f"all offsets must have the same arity, got {offsets!r}")
        check_unique("stencil offsets", offsets)
        object.__setattr__(self, "offsets", offsets)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        """Dimensionality of the stencil's offsets."""
        return len(self.offsets[0])

    @property
    def n_points(self) -> int:
        """Number of points in the stencil."""
        return len(self.offsets)

    @property
    def includes_centre(self) -> bool:
        """True if the all-zero offset is part of the stencil."""
        return tuple([0] * self.ndim) in self.offsets

    def extent(self, dim: int) -> Tuple[int, int]:
        """(min, max) offset along dimension ``dim``."""
        vals = [off[dim] for off in self.offsets]
        return (min(vals), max(vals))

    def radius(self, dim: int) -> int:
        """Largest absolute offset along dimension ``dim``."""
        lo, hi = self.extent(dim)
        return max(abs(lo), abs(hi))

    def linear_offsets(self, strides: Sequence[int]) -> Tuple[int, ...]:
        """Linearise the offsets for a row-major grid with the given strides.

        This is the offset pattern seen by an element in the *interior* of the
        grid; boundary elements get different (resolved) patterns, which is
        exactly what the static-buffer machinery deals with.
        """
        if len(strides) != self.ndim:
            raise ValueError("strides arity does not match stencil dimensionality")
        return tuple(sum(o * s for o, s in zip(off, strides)) for off in self.offsets)

    def interior_reach(self, strides: Sequence[int]) -> int:
        """The reach (max − min linear offset) for an interior element."""
        lin = self.linear_offsets(strides)
        return max(lin) - min(lin)

    def with_centre(self) -> "StencilShape":
        """Return a copy with the centre offset added (if missing)."""
        centre = tuple([0] * self.ndim)
        if centre in self.offsets:
            return self
        return StencilShape(offsets=self.offsets + (centre,), name=self.name)

    # ------------------------------------------------------------------ #
    # predefined shapes
    # ------------------------------------------------------------------ #
    @classmethod
    def four_point_2d(cls) -> "StencilShape":
        """The paper's 4-point stencil: N, S, E, W neighbours (no centre)."""
        return cls(offsets=((-1, 0), (1, 0), (0, -1), (0, 1)), name="4-point")

    @classmethod
    def five_point_2d(cls) -> "StencilShape":
        """Classic 5-point Laplacian stencil (4-point plus centre)."""
        return cls(offsets=((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)), name="5-point")

    @classmethod
    def von_neumann(cls, ndim: int, radius: int = 1, include_centre: bool = True) -> "StencilShape":
        """Von Neumann (diamond) neighbourhood of the given radius."""
        check_positive("radius", radius)
        offsets = []

        def rec(prefix, remaining_dims, budget):
            if remaining_dims == 0:
                offsets.append(tuple(prefix))
                return
            for v in range(-budget, budget + 1):
                rec(prefix + [v], remaining_dims - 1, budget - abs(v))

        rec([], ndim, radius)
        pts = [o for o in offsets if include_centre or any(c != 0 for c in o)]
        return cls(offsets=tuple(pts), name=f"von-neumann-r{radius}-{ndim}d")

    @classmethod
    def moore(cls, ndim: int, radius: int = 1, include_centre: bool = True) -> "StencilShape":
        """Moore (box) neighbourhood of the given radius."""
        check_positive("radius", radius)
        offsets = [()]
        for _ in range(ndim):
            offsets = [o + (v,) for o in offsets for v in range(-radius, radius + 1)]
        pts = [o for o in offsets if include_centre or any(c != 0 for c in o)]
        return cls(offsets=tuple(pts), name=f"moore-r{radius}-{ndim}d")

    @classmethod
    def star_2d(cls, radius: int) -> "StencilShape":
        """Axis-aligned star of the given radius (used in higher-order FD)."""
        check_positive("radius", radius)
        offsets = [(0, 0)]
        for r in range(1, radius + 1):
            offsets += [(-r, 0), (r, 0), (0, -r), (0, r)]
        return cls(offsets=tuple(offsets), name=f"star-r{radius}")

    @classmethod
    def asymmetric_2d(cls) -> "StencilShape":
        """A deliberately asymmetric shape used in tests and examples."""
        return cls(offsets=((0, 0), (-1, 0), (0, 2), (3, -1)), name="asymmetric")

    @classmethod
    def from_offsets(cls, offsets: Iterable[Sequence[int]], name: str = "custom") -> "StencilShape":
        """Build a stencil from an arbitrary iterable of offset vectors."""
        return cls(offsets=tuple(tuple(o) for o in offsets), name=name)

    def __str__(self) -> str:
        return f"{self.name}({self.n_points} points, {self.ndim}D)"
