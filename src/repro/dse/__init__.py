"""Design-space exploration over Smache buffer configurations.

The paper motivates its memory cost model with design-space exploration
(DSE): because the hybrid stream buffer lets the designer trade BRAM bits
against registers, a tool (or a human) can pick the mapping that fits the
resources left over by the computation kernel and the shell.  This package
provides that exploration loop: sweep candidate register/BRAM partitions
(and, optionally, problem sizes), price each candidate with the cost model
and the synthesis estimator, check it against a device, and pick the best
one under a caller-supplied objective.
"""

from repro.dse.objectives import (
    minimise_bram_bits,
    minimise_registers,
    minimise_total_memory_bits,
    weighted_balance,
)
from repro.dse.explorer import (
    DesignPoint,
    PerformancePoint,
    PerformanceSweep,
    explore_grid_sizes,
    explore_partitions,
    explore_performance,
    pareto_front,
    performance_pareto_front,
    select_best,
)

__all__ = [
    "DesignPoint",
    "PerformancePoint",
    "PerformanceSweep",
    "explore_partitions",
    "explore_grid_sizes",
    "explore_performance",
    "pareto_front",
    "performance_pareto_front",
    "select_best",
    "minimise_bram_bits",
    "minimise_registers",
    "minimise_total_memory_bits",
    "weighted_balance",
]
