"""Exploration of the register/BRAM mapping space for the stream buffer.

The explored axis is the paper's hybridisation knob: how many of the stream
buffer's window slots are registers (from the minimal Case-H point, where only
the stencil taps are registers, to the Case-R extreme, where the whole window
is).  Each candidate is priced with the cost model and the synthesis
estimator, and checked against a device's remaining resources.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.buffers import BufferPlan
from repro.core.config import SmacheConfig
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.core.partition import (
    HybridPartition,
    StreamBufferMode,
    hybrid_register_slots,
    partition_stream_buffer,
)
from repro.fpga.device import FPGADevice
from repro.fpga.resources import ResourceUsage
from repro.fpga.synthesis import SynthesisReport, synthesize_smache


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration with everything needed to rank it."""

    config: SmacheConfig
    plan: BufferPlan
    partition: HybridPartition
    cost: MemoryCostEstimate
    synthesis: SynthesisReport
    fits: bool

    @property
    def label(self) -> str:
        """Short label used in reports (register slots / total slots)."""
        return (
            f"{self.partition.register_elements}/{self.partition.depth} register slots "
            f"({self.partition.mode.value})"
        )


def _make_point(
    config: SmacheConfig,
    plan: BufferPlan,
    partition: HybridPartition,
    device: Optional[FPGADevice],
    reserved: ResourceUsage,
) -> DesignPoint:
    cost = estimate_memory_cost(plan, partition=partition)
    synthesis = synthesize_smache(config, plan=plan, partition=partition)
    fits = True
    if device is not None:
        fits = device.fits(synthesis.usage + reserved)
    return DesignPoint(
        config=config,
        plan=plan,
        partition=partition,
        cost=cost,
        synthesis=synthesis,
        fits=fits,
    )


def explore_partitions(
    config: SmacheConfig,
    device: Optional[FPGADevice] = None,
    steps: int = 8,
    reserved: Optional[ResourceUsage] = None,
) -> List[DesignPoint]:
    """Sweep the register/BRAM split of the stream buffer.

    Parameters
    ----------
    config:
        The stencil problem.  Its ``mode`` is ignored; the sweep spans from
        the hybrid minimum to register-only.
    device:
        Optional target device used for feasibility checks.
    steps:
        Number of intermediate points between the two extremes.
    reserved:
        Resources already consumed by the kernel / shell, subtracted from the
        device before the feasibility check.
    """
    reserved = reserved or ResourceUsage()
    plan = config.plan()
    n_taps = len([o for o in plan.lookup_offsets() if o != 0])
    depth = plan.stream.depth
    lo = min(depth, hybrid_register_slots(n_taps))
    candidates = sorted(
        {lo, depth} | {lo + round((depth - lo) * i / max(1, steps - 1)) for i in range(steps)}
    )
    points = []
    for regs in candidates:
        if regs == lo:
            mode = StreamBufferMode.HYBRID
        elif regs == depth:
            mode = StreamBufferMode.REGISTER_ONLY
        else:
            mode = StreamBufferMode.CUSTOM
        partition = partition_stream_buffer(
            plan.stream, n_taps, mode, register_elements=regs if mode is StreamBufferMode.CUSTOM else None
        )
        cfg = replace(config, mode=mode, register_elements=partition.register_elements)
        points.append(_make_point(cfg, plan, partition, device, reserved))
    return points


def explore_grid_sizes(
    config: SmacheConfig,
    sizes: Sequence[Tuple[int, ...]],
    device: Optional[FPGADevice] = None,
    mode: StreamBufferMode = StreamBufferMode.HYBRID,
    reserved: Optional[ResourceUsage] = None,
) -> List[DesignPoint]:
    """Price the same stencil problem across different grid sizes."""
    reserved = reserved or ResourceUsage()
    points = []
    for shape in sizes:
        cfg = replace(
            config,
            grid=type(config.grid)(shape=tuple(shape), word_bytes=config.grid.word_bytes),
            mode=mode,
            name=f"{config.name}-{'x'.join(str(s) for s in shape)}",
        )
        plan = cfg.plan()
        partition = cfg.partition(plan)
        points.append(_make_point(cfg, plan, partition, device, reserved))
    return points


def select_best(
    points: Sequence[DesignPoint],
    objective: Callable[[DesignPoint], float],
    require_fit: bool = True,
) -> Optional[DesignPoint]:
    """Pick the feasible point minimising ``objective`` (None if none fits)."""
    candidates = [p for p in points if p.fits] if require_fit else list(points)
    if not candidates:
        return None
    return min(candidates, key=objective)


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The register-bits / BRAM-bits Pareto front of a sweep.

    A point is kept if no other point is at least as good on both axes and
    strictly better on one.
    """
    front = []
    for p in points:
        dominated = False
        for q in points:
            if q is p:
                continue
            better_or_equal = (
                q.cost.r_total_bits <= p.cost.r_total_bits
                and q.cost.b_total_bits <= p.cost.b_total_bits
            )
            strictly_better = (
                q.cost.r_total_bits < p.cost.r_total_bits
                or q.cost.b_total_bits < p.cost.b_total_bits
            )
            if better_or_equal and strictly_better:
                dominated = True
                break
        if not dominated:
            front.append(p)
    return front
