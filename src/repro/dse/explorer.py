"""Exploration of the Smache design space.

Two axes are explored:

* the paper's hybridisation knob — how many of the stream buffer's window
  slots are registers (from the minimal Case-H point, where only the stencil
  taps are registers, to the Case-R extreme, where the whole window is), each
  candidate priced with the cost model and the synthesis estimator and checked
  against a device's remaining resources;
* whole problems — :func:`explore_performance` prices a set of candidate
  problems with the pipeline's ``analytic`` backend (closed-form cycles and
  traffic), keeps the cycles/memory Pareto front, and re-runs only the front
  through the cycle-accurate ``simulate`` backend.  Broad sweeps therefore
  cost microseconds per point instead of seconds, without trusting the fast
  path blindly.

All plans are obtained through :func:`repro.pipeline.compile`, so repeated
sweeps over the same problems hit the shared plan cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.buffers import BufferPlan
from repro.core.config import SmacheConfig
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.core.partition import (
    HybridPartition,
    StreamBufferMode,
    hybrid_register_slots,
    partition_stream_buffer,
)
from repro.fpga.device import FPGADevice
from repro.fpga.resources import ResourceUsage
from repro.fpga.synthesis import SynthesisReport, synthesize_smache
from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import EvaluationRequest, EvaluationResult
from repro.pipeline.compile import CompiledDesign, compile as compile_problem
from repro.pipeline.problem import StencilProblem
from repro.utils.pareto import pareto_front as generic_pareto_front


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration with everything needed to rank it."""

    config: SmacheConfig
    plan: BufferPlan
    partition: HybridPartition
    cost: MemoryCostEstimate
    synthesis: SynthesisReport
    fits: bool

    @property
    def label(self) -> str:
        """Short label used in reports (register slots / total slots)."""
        return (
            f"{self.partition.register_elements}/{self.partition.depth} register slots "
            f"({self.partition.mode.value})"
        )


def _make_point(
    config: SmacheConfig,
    plan: BufferPlan,
    partition: HybridPartition,
    device: Optional[FPGADevice],
    reserved: ResourceUsage,
) -> DesignPoint:
    cost = estimate_memory_cost(plan, partition=partition)
    synthesis = synthesize_smache(config, plan=plan, partition=partition)
    fits = True
    if device is not None:
        fits = device.fits(synthesis.usage + reserved)
    return DesignPoint(
        config=config,
        plan=plan,
        partition=partition,
        cost=cost,
        synthesis=synthesis,
        fits=fits,
    )


def explore_partitions(
    config: SmacheConfig,
    device: Optional[FPGADevice] = None,
    steps: int = 8,
    reserved: Optional[ResourceUsage] = None,
) -> List[DesignPoint]:
    """Sweep the register/BRAM split of the stream buffer.

    Parameters
    ----------
    config:
        The stencil problem.  Its ``mode`` is ignored; the sweep spans from
        the hybrid minimum to register-only.
    device:
        Optional target device used for feasibility checks.
    steps:
        Number of intermediate points between the two extremes.
    reserved:
        Resources already consumed by the kernel / shell, subtracted from the
        device before the feasibility check.
    """
    reserved = reserved or ResourceUsage()
    plan = compile_problem(StencilProblem.from_config(config)).plan
    n_taps = len([o for o in plan.lookup_offsets() if o != 0])
    depth = plan.stream.depth
    lo = min(depth, hybrid_register_slots(n_taps))
    candidates = sorted(
        {lo, depth} | {lo + round((depth - lo) * i / max(1, steps - 1)) for i in range(steps)}
    )
    points = []
    for regs in candidates:
        if regs == lo:
            mode = StreamBufferMode.HYBRID
        elif regs == depth:
            mode = StreamBufferMode.REGISTER_ONLY
        else:
            mode = StreamBufferMode.CUSTOM
        partition = partition_stream_buffer(
            plan.stream, n_taps, mode, register_elements=regs if mode is StreamBufferMode.CUSTOM else None
        )
        cfg = replace(config, mode=mode, register_elements=partition.register_elements)
        points.append(_make_point(cfg, plan, partition, device, reserved))
    return points


def explore_grid_sizes(
    config: SmacheConfig,
    sizes: Sequence[Tuple[int, ...]],
    device: Optional[FPGADevice] = None,
    mode: StreamBufferMode = StreamBufferMode.HYBRID,
    reserved: Optional[ResourceUsage] = None,
) -> List[DesignPoint]:
    """Price the same stencil problem across different grid sizes."""
    reserved = reserved or ResourceUsage()
    points = []
    for shape in sizes:
        cfg = replace(
            config,
            grid=type(config.grid)(shape=tuple(shape), word_bytes=config.grid.word_bytes),
            mode=mode,
            name=f"{config.name}-{'x'.join(str(s) for s in shape)}",
        )
        design = compile_problem(StencilProblem.from_config(cfg))
        points.append(_make_point(cfg, design.plan, design.partition, device, reserved))
    return points


def select_best(
    points: Sequence[DesignPoint],
    objective: Callable[[DesignPoint], float],
    require_fit: bool = True,
) -> Optional[DesignPoint]:
    """Pick the feasible point minimising ``objective`` (None if none fits).

    Exact objective ties are broken by the point's label, so the selection is
    deterministic regardless of the order candidates were generated in.
    """
    candidates = [p for p in points if p.fits] if require_fit else list(points)
    if not candidates:
        return None
    return min(candidates, key=lambda p: (objective(p), p.label))


# --------------------------------------------------------------------------- #
# performance sweeps through the pipeline backends
# --------------------------------------------------------------------------- #
@dataclass
class PerformancePoint:
    """One problem of a performance sweep, priced fast and optionally verified."""

    design: CompiledDesign
    predicted: EvaluationResult
    simulated: Optional[EvaluationResult] = None

    @property
    def label(self) -> str:
        """The problem's name."""
        return self.design.problem.name

    @property
    def predicted_cycles(self) -> int:
        """Cycle count from the sweep backend (analytic for fast sweeps)."""
        return self.predicted.cycles

    @property
    def cycles(self) -> int:
        """Best available cycle count: simulated when verified, else predicted."""
        return self.simulated.cycles if self.simulated is not None else self.predicted.cycles

    @property
    def total_bits(self) -> int:
        """Estimated on-chip memory of the design."""
        return self.design.total_memory_bits


#: Objective over performance points; smaller is better.
PerformanceObjective = Callable[[PerformancePoint], Tuple]


def _default_performance_objective(point: PerformancePoint) -> Tuple:
    """Fewest cycles, then least on-chip memory."""
    return (point.cycles, point.total_bits)


def performance_pareto_front(points: Sequence[PerformancePoint]) -> List[PerformancePoint]:
    """The cycles / on-chip-memory Pareto front of a performance sweep."""
    return generic_pareto_front(points, key=lambda p: (p.predicted_cycles, p.total_bits))


@dataclass
class PerformanceSweep:
    """Outcome of :func:`explore_performance`."""

    points: List[PerformancePoint] = field(default_factory=list)
    front: List[PerformancePoint] = field(default_factory=list)
    selected: Optional[PerformancePoint] = None
    backend: str = "analytic"
    simulated_count: int = 0

    def format(self) -> str:
        """Text table of the sweep (used by examples and benchmarks)."""
        lines = [
            f"{'problem':<28}{'cycles':>10}{'sim cycles':>12}{'memory bits':>14}"
            f"{'front':>7}{'chosen':>8}"
        ]
        front = set(id(p) for p in self.front)
        for p in self.points:
            sim = p.simulated.cycles if p.simulated is not None else "-"
            lines.append(
                f"{p.label:<28}{p.predicted_cycles:>10}{sim:>12}{p.total_bits:>14}"
                f"{'*' if id(p) in front else '':>7}"
                f"{'<==' if p is self.selected else '':>8}"
            )
        return "\n".join(lines)


def explore_performance(
    problems: Sequence[StencilProblem],
    iterations: int = 1,
    objective: Optional[PerformanceObjective] = None,
    timing: Optional[DRAMTiming] = None,
    backend: str = "analytic",
    simulate_front: bool = True,
    jobs: Optional[int] = None,
    workbench=None,
) -> PerformanceSweep:
    """Sweep whole problems: fast pricing, Pareto front, selective verification.

    Every problem is compiled (memoized) and priced with ``backend`` — the
    closed-form ``analytic`` model by default, so the full space costs
    microseconds per point.  The cycles/memory Pareto front is then re-run
    through the cycle-accurate ``simulate`` backend (unless ``simulate_front``
    is off or the sweep already simulated everything), and the ``objective``
    picks the winner from the front using the verified numbers (objective
    ties broken by label, so the choice is deterministic).

    Both stages run through the session's batch layer — pass an existing
    :class:`repro.api.Workbench` to share its cache and runner policy, or
    give ``jobs`` and a throwaway session is created (this is also what
    :meth:`Workbench.explore` does).  With ``jobs > 1`` pricing *and* front
    re-simulation shard over a process pool (:mod:`repro.sweep.runners`), so
    the same sweep scales from one core to N unchanged.
    """
    if not problems:
        raise ValueError("explore_performance needs at least one problem")
    from repro.api import Workbench

    workbench = Workbench.ensure(workbench, jobs=jobs if jobs is not None else 1)
    # An explicit jobs overrides the session; None inherits workbench.jobs.
    jobs = jobs if jobs is not None else workbench.jobs
    objective = objective or _default_performance_objective
    request = EvaluationRequest(iterations=iterations, dram_timing=timing)
    predictions = workbench.evaluate_batch(
        problems, backend=backend, request=request, jobs=jobs
    )
    points = []
    for predicted in predictions:
        if predicted.cycles is None:
            raise ValueError(
                f"backend {backend!r} produces no cycle count; a performance "
                "sweep needs a timing backend such as 'analytic' or 'simulate'"
            )
        points.append(PerformancePoint(design=predicted.design, predicted=predicted))
    front = performance_pareto_front(points)
    simulated_count = 0
    if backend == "simulate":
        for p in points:
            p.simulated = p.predicted
        simulated_count = len(points)
    elif simulate_front and front:
        verified = workbench.evaluate_batch(
            [p.design for p in front], backend="simulate", request=request,
            jobs=min(jobs, len(front)),
        )
        for p, sim in zip(front, verified):
            p.simulated = sim
            simulated_count += 1
    selected = (
        min(front, key=lambda p: (objective(p), p.label)) if front else None
    )
    return PerformanceSweep(
        points=points,
        front=front,
        selected=selected,
        backend=backend,
        simulated_count=simulated_count,
    )


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The register-bits / BRAM-bits Pareto front of a sweep.

    A point is kept if no other point is at least as good on both axes and
    strictly better on one.
    """
    return generic_pareto_front(
        points, key=lambda p: (p.cost.r_total_bits, p.cost.b_total_bits)
    )
