"""Objective functions for design-space exploration.

Each objective maps a :class:`repro.dse.explorer.DesignPoint` to a scalar
score where *smaller is better*; :func:`repro.dse.explorer.select_best` simply
minimises the score over the feasible points.
"""

from __future__ import annotations

from typing import Callable

Objective = Callable[["DesignPoint"], float]  # noqa: F821 - documented forward ref


def minimise_bram_bits(point) -> float:
    """Prefer the configuration using the fewest BRAM bits."""
    return float(point.cost.b_total_bits)


def minimise_registers(point) -> float:
    """Prefer the configuration using the fewest register bits."""
    return float(point.cost.r_total_bits)


def minimise_total_memory_bits(point) -> float:
    """Prefer the configuration using the least on-chip memory overall."""
    return float(point.cost.total_bits)


def weighted_balance(register_weight: float = 1.0, bram_weight: float = 1.0) -> Objective:
    """Weighted combination of register and BRAM usage.

    The weights express how scarce each resource is on the target device for
    the surrounding design (e.g. a kernel that is register-hungry should pass
    a larger ``register_weight``).
    """
    if register_weight < 0 or bram_weight < 0:
        raise ValueError("weights must be non-negative")

    def objective(point) -> float:
        return register_weight * point.cost.r_total_bits + bram_weight * point.cost.b_total_bits

    return objective


def maximise_fmax(point) -> float:
    """Prefer the configuration with the highest estimated clock frequency."""
    return -float(point.synthesis.fmax_mhz)
