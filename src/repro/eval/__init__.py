"""Experiment harness: regenerates every table and figure of the paper.

Experiments (see DESIGN.md for the full index):

* ``figure2``  — Smache vs baseline on the 11x11, 4-point-stencil validation
  case, 100 work-instances (cycle count, Fmax, DRAM traffic, execution time,
  MOPS, plus the normalised ratios plotted in the paper's bar chart);
* ``table1``   — estimated vs "actual" on-chip memory for 11x11 / 1024x1024 in
  register-only and hybrid modes;
* ``resources``— the in-text ALM / register / BRAM comparison of the two
  designs (E3) and the 1M-element hybrid-vs-register trade-off (E4);
* ``ablations``— double-buffering/write-through cost, DRAM random-access
  penalty sensitivity, and planner-vs-stream-only buffer sizes.

Run ``python -m repro.eval all`` to regenerate everything; each experiment
prints the paper's value next to the measured one.
"""

from repro.eval.figure2 import Figure2Result, run_figure2
from repro.eval.table1 import Table1Result, run_table1
from repro.eval.resources_exp import ResourceComparison, run_hybrid_tradeoff, run_resources
from repro.eval.harness import run_all

__all__ = [
    "Figure2Result",
    "run_figure2",
    "Table1Result",
    "run_table1",
    "ResourceComparison",
    "run_resources",
    "run_hybrid_tradeoff",
    "run_all",
]
