"""Command-line entry point: ``python -m repro.eval [experiment ...]``.

Without arguments (or with ``all``) every experiment is regenerated; otherwise
pass one or more experiment names (``figure2``, ``table1``, ``resources``,
``hybrid``, ``ablation-writethrough``, ``ablation-dram``, ``ablation-planner``).
Use ``--output FILE`` to also write the report to a file.
"""

from __future__ import annotations

import argparse
import sys

from repro.eval.harness import EXPERIMENTS, run_all


def main(argv=None) -> int:
    """CLI driver; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate the paper's tables and figures from the reproduction.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help=f"experiments to run: all (default) or any of {sorted(EXPERIMENTS)}",
    )
    parser.add_argument("--output", "-o", help="also write the report to this file")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes for sweep-shaped experiments (default: 1, serial)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be positive")

    names = None
    if args.experiments and args.experiments != ["all"]:
        unknown = [n for n in args.experiments if n not in EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiment(s): {unknown}; choose from {sorted(EXPERIMENTS)}")
        names = args.experiments

    report = run_all(names, jobs=args.jobs)
    text = report.format()
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
