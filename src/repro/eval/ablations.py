"""Ablation experiments A1-A3.

These go beyond the paper's reported results and probe the design choices the
paper calls out:

* **A1 — write-through / double buffering**: what does it cost to *not* keep
  the static buffers warm across work-instances (re-prefetching them from
  DRAM every instance instead)?
* **A2 — DRAM random-access penalty**: how do the two designs respond as
  breaking a burst gets more expensive (the motivation for contiguous
  streaming)?
* **A3 — planner benefit**: how much on-chip memory does the stream+static
  split save compared with a stream-only window sized for the full circular
  reach, across grid sizes?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.memory.dram import DRAMTiming
from repro.pipeline import EvaluationRequest, StencilProblem
from repro.sweep.spec import SweepPoint
from repro.utils.tables import format_table


def _workbench(workbench, jobs: int):
    """The session to run through: the caller's, or a throwaway at ``jobs``."""
    from repro.api import Workbench

    return Workbench.ensure(workbench, jobs=jobs)


# --------------------------------------------------------------------------- #
# A1 — write-through / double buffering
# --------------------------------------------------------------------------- #
@dataclass
class WriteThroughAblation:
    """Cost of disabling the transparent double buffering + write-through."""

    with_write_through: Dict[str, float]
    without_write_through: Dict[str, float]

    @property
    def cycle_overhead(self) -> float:
        """Relative cycle increase when write-through is disabled."""
        return (
            self.without_write_through["cycles"] / self.with_write_through["cycles"] - 1.0
        )

    @property
    def traffic_overhead(self) -> float:
        """Relative DRAM-traffic increase when write-through is disabled."""
        return (
            self.without_write_through["dram_bytes"] / self.with_write_through["dram_bytes"]
            - 1.0
        )

    def format(self) -> str:
        """Text table of the ablation."""
        headers = ["variant", "cycles", "DRAM bytes"]
        body = [
            [
                "write-through (paper)",
                self.with_write_through["cycles"],
                self.with_write_through["dram_bytes"],
            ],
            [
                "re-prefetch every instance",
                self.without_write_through["cycles"],
                self.without_write_through["dram_bytes"],
            ],
        ]
        extra = (
            f"cycle overhead   : {self.cycle_overhead:+.1%}\n"
            f"traffic overhead : {self.traffic_overhead:+.1%}"
        )
        return format_table(headers, body, title="A1 — write-through ablation") + "\n" + extra


def run_write_through_ablation(
    rows: int = 11, cols: int = 11, iterations: int = 20, jobs: int = 1, workbench=None
) -> WriteThroughAblation:
    """Run the Smache system with and without write-through (one 2-point sweep)."""
    workbench = _workbench(workbench, jobs)
    problem = StencilProblem.paper_example(rows, cols)
    points = [
        SweepPoint(
            problem=problem,
            backend="simulate",
            request=EvaluationRequest(iterations=iterations, write_through=write_through),
            label=label,
        )
        for label, write_through in (("with", True), ("without", False))
    ]
    records = {r.label: r for r in workbench.runner().run(points)}
    results = {
        label: {"cycles": float(rec.cycles), "dram_bytes": float(rec.dram_bytes)}
        for label, rec in records.items()
    }
    return WriteThroughAblation(
        with_write_through=results["with"], without_write_through=results["without"]
    )


# --------------------------------------------------------------------------- #
# A2 — DRAM random-access penalty sensitivity
# --------------------------------------------------------------------------- #
@dataclass
class DramPenaltyAblation:
    """Cycles of both designs as the non-contiguous access penalty grows."""

    penalties: List[int] = field(default_factory=list)
    baseline_cycles: List[int] = field(default_factory=list)
    smache_cycles: List[int] = field(default_factory=list)

    def slowdown(self, design: str) -> float:
        """Cycles at the largest penalty divided by cycles at the smallest."""
        series = self.baseline_cycles if design == "baseline" else self.smache_cycles
        if not series or series[0] == 0:
            return 0.0
        return series[-1] / series[0]

    def format(self) -> str:
        """Text table of the sweep."""
        headers = ["penalty (cycles)", "baseline cycles", "smache cycles"]
        body = [
            [p, b, s]
            for p, b, s in zip(self.penalties, self.baseline_cycles, self.smache_cycles)
        ]
        extra = (
            f"baseline slowdown: {self.slowdown('baseline'):.2f}x, "
            f"smache slowdown: {self.slowdown('smache'):.2f}x"
        )
        return format_table(headers, body, title="A2 — DRAM penalty sensitivity") + "\n" + extra


def run_dram_penalty_ablation(
    penalties: Sequence[int] = (0, 2, 4, 8),
    rows: int = 11,
    cols: int = 11,
    iterations: int = 10,
    jobs: int = 1,
    workbench=None,
) -> DramPenaltyAblation:
    """Sweep the extra cost of non-burst DRAM accesses for both designs.

    The penalties × systems grid runs as one sweep through the session's
    runner policy, so ``jobs=N`` (or the workbench's jobs) shards the
    simulations over a process pool.
    """
    workbench = _workbench(workbench, jobs)
    problem = StencilProblem.paper_example(rows, cols)
    points = [
        SweepPoint(
            problem=problem,
            backend="simulate",
            request=EvaluationRequest(
                system=system,
                iterations=iterations,
                dram_timing=DRAMTiming(random_access_cycles=1 + penalty),
            ),
            label=f"{system}-p{penalty}",
        )
        for penalty in penalties
        for system in ("baseline", "smache")
    ]
    records = {r.label: r for r in workbench.runner().run(points)}
    result = DramPenaltyAblation()
    for penalty in penalties:
        result.penalties.append(penalty)
        result.baseline_cycles.append(records[f"baseline-p{penalty}"].cycles)
        result.smache_cycles.append(records[f"smache-p{penalty}"].cycles)
    return result


# --------------------------------------------------------------------------- #
# A3 — planner benefit across grid sizes
# --------------------------------------------------------------------------- #
@dataclass
class PlannerAblation:
    """On-chip buffer elements: stream-only vs Algorithm 1 vs global planner."""

    grid_sizes: List[Tuple[int, int]] = field(default_factory=list)
    stream_only_elements: List[int] = field(default_factory=list)
    algorithm1_elements: List[int] = field(default_factory=list)
    planner_elements: List[int] = field(default_factory=list)

    def saving(self, index: int) -> float:
        """Planner saving relative to the stream-only window for one grid size."""
        stream_only = self.stream_only_elements[index]
        if stream_only == 0:
            return 0.0
        return 1.0 - self.planner_elements[index] / stream_only

    def format(self) -> str:
        """Text table of the comparison."""
        headers = ["grid", "stream-only", "algorithm 1", "global planner", "saving"]
        body = []
        for i, shape in enumerate(self.grid_sizes):
            body.append(
                [
                    f"{shape[0]}x{shape[1]}",
                    self.stream_only_elements[i],
                    self.algorithm1_elements[i],
                    self.planner_elements[i],
                    f"{self.saving(i):.1%}",
                ]
            )
        return format_table(headers, body, title="A3 — buffer elements by planning strategy")


def run_planner_ablation(
    grid_sizes: Sequence[Tuple[int, int]] = ((11, 11), (64, 64), (256, 256), (1024, 1024)),
    jobs: int = 1,
    workbench=None,
) -> PlannerAblation:
    """Compare buffer sizes for three planning strategies across grid sizes.

    Each grid size is one ``cost``-backend point: the backend's extras carry
    the planner comparison (chosen plan vs the paper's Algorithm 1 vs a
    stream-only window spanning the full offset range), so with ``jobs=N``
    the per-grid compilations shard over a process pool.
    """
    workbench = _workbench(workbench, jobs)
    problems = [StencilProblem.paper_example(shape[0], shape[1]) for shape in grid_sizes]
    evaluations = workbench.evaluate_batch(problems, backend="cost")
    result = PlannerAblation()
    for shape, evaluation in zip(grid_sizes, evaluations):
        result.grid_sizes.append(tuple(shape))
        result.stream_only_elements.append(int(evaluation.extra["stream_only_elements"]))
        result.algorithm1_elements.append(int(evaluation.extra["algorithm1_elements"]))
        result.planner_elements.append(int(evaluation.extra["plan_elements"]))
    return result
