"""Ablation experiments A1-A3.

These go beyond the paper's reported results and probe the design choices the
paper calls out:

* **A1 — write-through / double buffering**: what does it cost to *not* keep
  the static buffers warm across work-instances (re-prefetching them from
  DRAM every instance instead)?
* **A2 — DRAM random-access penalty**: how do the two designs respond as
  breaking a burst gets more expensive (the motivation for contiguous
  streaming)?
* **A3 — planner benefit**: how much on-chip memory does the stream+static
  split save compared with a stream-only window sized for the full circular
  reach, across grid sizes?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.planner import paper_algorithm1
from repro.memory.dram import DRAMTiming
from repro.pipeline import EvaluationRequest, StencilProblem, compile, evaluate
from repro.utils.tables import format_table


# --------------------------------------------------------------------------- #
# A1 — write-through / double buffering
# --------------------------------------------------------------------------- #
@dataclass
class WriteThroughAblation:
    """Cost of disabling the transparent double buffering + write-through."""

    with_write_through: Dict[str, float]
    without_write_through: Dict[str, float]

    @property
    def cycle_overhead(self) -> float:
        """Relative cycle increase when write-through is disabled."""
        return (
            self.without_write_through["cycles"] / self.with_write_through["cycles"] - 1.0
        )

    @property
    def traffic_overhead(self) -> float:
        """Relative DRAM-traffic increase when write-through is disabled."""
        return (
            self.without_write_through["dram_bytes"] / self.with_write_through["dram_bytes"]
            - 1.0
        )

    def format(self) -> str:
        """Text table of the ablation."""
        headers = ["variant", "cycles", "DRAM bytes"]
        body = [
            [
                "write-through (paper)",
                self.with_write_through["cycles"],
                self.with_write_through["dram_bytes"],
            ],
            [
                "re-prefetch every instance",
                self.without_write_through["cycles"],
                self.without_write_through["dram_bytes"],
            ],
        ]
        extra = (
            f"cycle overhead   : {self.cycle_overhead:+.1%}\n"
            f"traffic overhead : {self.traffic_overhead:+.1%}"
        )
        return format_table(headers, body, title="A1 — write-through ablation") + "\n" + extra


def run_write_through_ablation(
    rows: int = 11, cols: int = 11, iterations: int = 20
) -> WriteThroughAblation:
    """Run the Smache system with and without write-through."""
    design = compile(StencilProblem.paper_example(rows, cols))
    results = {}
    for key, write_through in (("with", True), ("without", False)):
        sim = evaluate(
            design,
            backend="simulate",
            iterations=iterations,
            write_through=write_through,
        )
        results[key] = {"cycles": float(sim.cycles), "dram_bytes": float(sim.dram_bytes)}
    return WriteThroughAblation(
        with_write_through=results["with"], without_write_through=results["without"]
    )


# --------------------------------------------------------------------------- #
# A2 — DRAM random-access penalty sensitivity
# --------------------------------------------------------------------------- #
@dataclass
class DramPenaltyAblation:
    """Cycles of both designs as the non-contiguous access penalty grows."""

    penalties: List[int] = field(default_factory=list)
    baseline_cycles: List[int] = field(default_factory=list)
    smache_cycles: List[int] = field(default_factory=list)

    def slowdown(self, design: str) -> float:
        """Cycles at the largest penalty divided by cycles at the smallest."""
        series = self.baseline_cycles if design == "baseline" else self.smache_cycles
        if not series or series[0] == 0:
            return 0.0
        return series[-1] / series[0]

    def format(self) -> str:
        """Text table of the sweep."""
        headers = ["penalty (cycles)", "baseline cycles", "smache cycles"]
        body = [
            [p, b, s]
            for p, b, s in zip(self.penalties, self.baseline_cycles, self.smache_cycles)
        ]
        extra = (
            f"baseline slowdown: {self.slowdown('baseline'):.2f}x, "
            f"smache slowdown: {self.slowdown('smache'):.2f}x"
        )
        return format_table(headers, body, title="A2 — DRAM penalty sensitivity") + "\n" + extra


def run_dram_penalty_ablation(
    penalties: Sequence[int] = (0, 2, 4, 8),
    rows: int = 11,
    cols: int = 11,
    iterations: int = 10,
) -> DramPenaltyAblation:
    """Sweep the extra cost of non-burst DRAM accesses for both designs."""
    design = compile(StencilProblem.paper_example(rows, cols))
    result = DramPenaltyAblation()
    for penalty in penalties:
        request = EvaluationRequest(
            iterations=iterations,
            dram_timing=DRAMTiming(random_access_cycles=1 + penalty),
        )
        result.penalties.append(penalty)
        result.baseline_cycles.append(
            evaluate(design, backend="simulate", request=request, system="baseline").cycles
        )
        result.smache_cycles.append(
            evaluate(design, backend="simulate", request=request).cycles
        )
    return result


# --------------------------------------------------------------------------- #
# A3 — planner benefit across grid sizes
# --------------------------------------------------------------------------- #
@dataclass
class PlannerAblation:
    """On-chip buffer elements: stream-only vs Algorithm 1 vs global planner."""

    grid_sizes: List[Tuple[int, int]] = field(default_factory=list)
    stream_only_elements: List[int] = field(default_factory=list)
    algorithm1_elements: List[int] = field(default_factory=list)
    planner_elements: List[int] = field(default_factory=list)

    def saving(self, index: int) -> float:
        """Planner saving relative to the stream-only window for one grid size."""
        stream_only = self.stream_only_elements[index]
        if stream_only == 0:
            return 0.0
        return 1.0 - self.planner_elements[index] / stream_only

    def format(self) -> str:
        """Text table of the comparison."""
        headers = ["grid", "stream-only", "algorithm 1", "global planner", "saving"]
        body = []
        for i, shape in enumerate(self.grid_sizes):
            body.append(
                [
                    f"{shape[0]}x{shape[1]}",
                    self.stream_only_elements[i],
                    self.algorithm1_elements[i],
                    self.planner_elements[i],
                    f"{self.saving(i):.1%}",
                ]
            )
        return format_table(headers, body, title="A3 — buffer elements by planning strategy")


def run_planner_ablation(
    grid_sizes: Sequence[Tuple[int, int]] = ((11, 11), (64, 64), (256, 256), (1024, 1024)),
) -> PlannerAblation:
    """Compare buffer sizes for three planning strategies across grid sizes."""
    result = PlannerAblation()
    for shape in grid_sizes:
        design = compile(StencilProblem.paper_example(shape[0], shape[1]))
        # Stream-only: a single window wide enough to serve every offset of
        # every range without static buffers (the full circular span).
        offsets = [o for r in design.ranges for o in r.stream_offsets]
        stream_only = max(offsets) - min(offsets)
        result.grid_sizes.append(tuple(shape))
        result.stream_only_elements.append(stream_only)
        result.algorithm1_elements.append(paper_algorithm1(design.ranges).total_elements)
        result.planner_elements.append(design.plan.total_cost_elements)
    return result
