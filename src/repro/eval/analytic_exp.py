"""Experiment E5 — analytic model vs cycle-accurate simulation.

The pipeline's ``analytic`` backend predicts cycle counts, DRAM traffic and
operation counts in closed form (no clock stepping).  This experiment keeps
the fast path honest: it cross-validates the two backends on a set of
representative configurations via
:func:`repro.pipeline.analytic.validate_prediction` — the same ReFrame-style
reference-band check the test-suite asserts — and reports, per metric, the
simulated value, the predicted value, the relative error (which must stay
inside :data:`repro.pipeline.analytic.ANALYTIC_TOLERANCE`) and the
wall-clock speed-up of prediction over simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.boundary import BoundarySpec
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.pipeline import (
    ANALYTIC_TOLERANCE,
    EvaluationRequest,
    StencilProblem,
    ValidationReport,
)
from repro.pipeline.analytic import VALIDATED_METRICS, build_validation_report
from repro.sweep.spec import SweepPoint
from repro.utils.tables import format_table


@dataclass
class AnalyticCheckRow:
    """One configuration/system pair: a labelled validation report."""

    label: str
    report: ValidationReport

    @property
    def cycle_error(self) -> float:
        """Signed relative cycle error of the prediction."""
        return self.report.errors["cycles"]

    @property
    def counts_exact(self) -> bool:
        """True when DRAM word counts and operations match exactly."""
        return all(
            self.report.bands[m].contains(self.report.predicted[m])
            for m in ("dram_words_read", "dram_words_written", "operations")
        )


@dataclass
class AnalyticCheckResult:
    """All rows of the analytic-vs-simulation comparison."""

    rows: List[AnalyticCheckRow] = field(default_factory=list)
    tolerance: float = ANALYTIC_TOLERANCE

    @property
    def worst_cycle_error(self) -> float:
        """Largest absolute relative cycle error across the rows."""
        return max((abs(r.cycle_error) for r in self.rows), default=0.0)

    @property
    def all_within_tolerance(self) -> bool:
        """True when every row passes its full validation report."""
        return all(r.report.ok for r in self.rows)

    def format(self) -> str:
        """Text table of the cross-validation."""
        headers = [
            "config", "system", "iters", "sim cycles", "analytic", "error",
            "counts", "speedup",
        ]
        body = [
            [
                r.label,
                r.report.system,
                r.report.iterations,
                int(r.report.bands["cycles"].value),
                int(r.report.predicted["cycles"]),
                f"{r.cycle_error:+.2%}",
                "exact" if r.counts_exact else "MISMATCH",
                f"{r.report.speedup:.0f}x",
            ]
            for r in self.rows
        ]
        summary = (
            f"worst cycle error: {self.worst_cycle_error:.2%} "
            f"(tolerance {self.tolerance:.0%}); "
            f"all within tolerance: {self.all_within_tolerance}"
        )
        return (
            format_table(headers, body, title="E5 — analytic model vs simulation")
            + "\n"
            + summary
        )


def _check_cases() -> List[Tuple[str, StencilProblem, int]]:
    """The validated configurations: the paper's case plus an asymmetric one."""
    asymmetric = StencilProblem(
        grid=GridSpec(shape=(20, 24), word_bytes=4),
        stencil=StencilShape.asymmetric_2d(),
        boundary=BoundarySpec.paper_2d(),
        name="asym-20x24",
    )
    return [
        ("paper-11x11", StencilProblem.paper_example(), 30),
        ("asym-20x24", asymmetric, 5),
    ]


def run_analytic_check(
    jobs: int = 1,
    tolerance: float = ANALYTIC_TOLERANCE,
    workbench=None,
) -> AnalyticCheckResult:
    """Cross-validate the analytic backend against the simulator.

    Every (configuration × system × backend) combination is one point of a
    single sweep through the session's runner policy (pass a
    :class:`repro.api.Workbench`, or ``jobs`` builds a throwaway one), so
    with ``jobs=N`` the expensive simulations shard over a process pool; the
    validation reports are then assembled from the paired records exactly as
    :func:`repro.pipeline.analytic.validate_prediction` builds them in-process.
    """
    from repro.api import Workbench

    workbench = Workbench.ensure(workbench, jobs=jobs)
    points = []
    for label, problem, iterations in _check_cases():
        for system in ("smache", "baseline"):
            for backend in ("simulate", "analytic"):
                points.append(
                    SweepPoint(
                        problem=problem,
                        backend=backend,
                        request=EvaluationRequest(system=system, iterations=iterations),
                        label=f"{label}/{system}/{backend}",
                    )
                )
    records = {r.label: r for r in workbench.runner().run(points)}
    result = AnalyticCheckResult(tolerance=tolerance)
    for label, _problem, iterations in _check_cases():
        for system in ("smache", "baseline"):
            simulated = records[f"{label}/{system}/simulate"]
            predicted = records[f"{label}/{system}/analytic"]
            # eval_seconds is backend time alone (compilation excluded), the
            # same quantity validate_prediction times in-process.
            report = build_validation_report(
                system=system,
                simulated={m: getattr(simulated, m) for m in VALIDATED_METRICS},
                predicted={m: getattr(predicted, m) for m in VALIDATED_METRICS},
                iterations=iterations,
                tolerance=tolerance,
                simulate_seconds=simulated.meta.get("eval_seconds", 0.0),
                predict_seconds=predicted.meta.get("eval_seconds", 0.0),
            )
            result.rows.append(AnalyticCheckRow(label=label, report=report))
    return result
