"""Experiment E1 — Figure 2: Smache vs baseline on the validation case.

The paper's setup: an 11x11 grid, the 4-point averaging filter, circular
horizontal boundaries and open vertical boundaries, with the kernel run 100
times.  Cycle counts and DRAM traffic come from simulation; the clock
frequency comes from synthesis; execution time and MOPS are derived from the
two.  This module reproduces all five columns for both designs, plus the
normalised (against baseline) values that the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.system import SimulationResult
from repro.eval.paper_constants import PAPER_FIGURE2, PAPER_FIGURE2_SETUP, relative_error
from repro.fpga.synthesis import synthesize_baseline
from repro.pipeline import EvaluationRequest, StencilProblem
from repro.sweep.spec import SweepPoint
from repro.utils.tables import format_table

#: The columns of Figure 2, in the paper's order.
FIGURE2_METRICS = ("cycle_count", "freq_mhz", "dram_traffic_kib", "exec_time_us", "mops")


@dataclass
class Figure2Row:
    """One design's row of Figure 2."""

    design: str
    cycle_count: int
    freq_mhz: float
    dram_traffic_kib: float
    exec_time_us: float
    mops: float

    def as_dict(self) -> Dict[str, float]:
        """The five metrics as a plain dict."""
        return {
            "cycle_count": self.cycle_count,
            "freq_mhz": self.freq_mhz,
            "dram_traffic_kib": self.dram_traffic_kib,
            "exec_time_us": self.exec_time_us,
            "mops": self.mops,
        }


@dataclass
class Figure2Result:
    """Both rows of Figure 2 plus the normalised ratios and paper comparison."""

    baseline: Figure2Row
    smache: Figure2Row
    iterations: int
    grid_shape: tuple
    baseline_sim: Optional[SimulationResult] = None
    smache_sim: Optional[SimulationResult] = None
    paper: Dict[str, Dict[str, float]] = field(default_factory=lambda: PAPER_FIGURE2)

    # ------------------------------------------------------------------ #
    def normalised(self) -> Dict[str, Dict[str, float]]:
        """Each design's metrics divided by the baseline's (the paper's bars)."""
        base = self.baseline.as_dict()
        out = {}
        for name, row in (("baseline", self.baseline), ("smache", self.smache)):
            out[name] = {
                metric: (row.as_dict()[metric] / base[metric]) if base[metric] else 0.0
                for metric in FIGURE2_METRICS
            }
        return out

    @property
    def speedup(self) -> float:
        """Smache speed-up in simulated execution time (the paper reports ~3x)."""
        return self.baseline.exec_time_us / self.smache.exec_time_us

    @property
    def cycle_ratio(self) -> float:
        """Smache cycles as a fraction of baseline cycles (paper: ~20-25%)."""
        return self.smache.cycle_count / self.baseline.cycle_count

    @property
    def traffic_ratio(self) -> float:
        """Smache DRAM traffic as a fraction of baseline (paper: ~40%)."""
        return self.smache.dram_traffic_kib / self.baseline.dram_traffic_kib

    def paper_errors(self) -> Dict[str, Dict[str, float]]:
        """Relative error of every measured metric against the paper's value."""
        errors: Dict[str, Dict[str, float]] = {}
        for name, row in (("baseline", self.baseline), ("smache", self.smache)):
            errors[name] = {
                metric: relative_error(row.as_dict()[metric], self.paper[name][metric])
                for metric in FIGURE2_METRICS
            }
        return errors

    # ------------------------------------------------------------------ #
    def format(self) -> str:
        """The figure's data as text tables (measured, normalised, vs paper)."""
        headers = ["design", "cycles", "Fmax (MHz)", "DRAM (KiB)", "time (us)", "MOPS"]
        rows = [
            [
                name,
                row.cycle_count,
                round(row.freq_mhz, 1),
                round(row.dram_traffic_kib, 1),
                round(row.exec_time_us, 1),
                round(row.mops, 1),
            ]
            for name, row in (("baseline", self.baseline), ("smache", self.smache))
        ]
        measured = format_table(headers, rows, title="Figure 2 — measured")

        norm = self.normalised()
        nrows = [
            [name] + [round(norm[name][m], 3) for m in FIGURE2_METRICS]
            for name in ("baseline", "smache")
        ]
        normalised = format_table(headers, nrows, title="Figure 2 — normalised to baseline")

        prow = []
        for name in ("baseline", "smache"):
            p = self.paper[name]
            prow.append(
                [
                    name,
                    p["cycle_count"],
                    p["freq_mhz"],
                    p["dram_traffic_kib"],
                    p["exec_time_us"],
                    p["mops"],
                ]
            )
        paper = format_table(headers, prow, title="Figure 2 — paper")
        summary = (
            f"speed-up (exec time): {self.speedup:.2f}x (paper ~2.9x)\n"
            f"cycle ratio         : {self.cycle_ratio:.2%} (paper ~21.9%)\n"
            f"traffic ratio       : {self.traffic_ratio:.2%} (paper ~40.4%)"
        )
        return "\n\n".join([measured, normalised, paper, summary])


def run_figure2(
    rows: int = PAPER_FIGURE2_SETUP["rows"],
    cols: int = PAPER_FIGURE2_SETUP["cols"],
    iterations: int = PAPER_FIGURE2_SETUP["iterations"],
    keep_sim_results: bool = False,
    jobs: int = 1,
    workbench=None,
) -> Figure2Result:
    """Run the Figure 2 experiment and return both rows.

    ``rows``/``cols``/``iterations`` default to the paper's setup; smaller
    values are used by the fast test-suite configuration.  Both designs run
    as one two-point sweep through the session's runner policy (pass a
    :class:`repro.api.Workbench`, or ``jobs`` builds a throwaway one), so
    with ``jobs=2`` the baseline and Smache simulations execute concurrently.
    ``keep_sim_results`` needs the live simulation objects and therefore
    forces the serial runner.
    """
    from repro.api import Workbench

    workbench = Workbench.ensure(workbench, jobs=jobs)
    problem = StencilProblem.paper_example(rows, cols)
    design = workbench.compile(problem)
    points = [
        SweepPoint(
            problem=problem,
            backend="simulate",
            request=EvaluationRequest(system=system, iterations=iterations),
            label=system,
        )
        for system in ("baseline", "smache")
    ]
    runner = workbench.runner(1 if keep_sim_results else None)
    records = {
        r.label: r for r in runner.run(points, keep_results=True)
    }
    baseline_res, smache_res = records["baseline"].result, records["smache"].result

    baseline_syn = synthesize_baseline(design.config, kernel=problem.effective_kernel)
    smache_syn = design.synthesis

    def make_row(name: str, res, fmax: float) -> Figure2Row:
        return Figure2Row(
            design=name,
            cycle_count=res.cycles,
            freq_mhz=fmax,
            dram_traffic_kib=res.dram_traffic_kib,
            exec_time_us=res.execution_time_us(fmax),
            mops=res.mops(fmax),
        )

    result = Figure2Result(
        baseline=make_row("baseline", baseline_res, baseline_syn.fmax_mhz),
        smache=make_row("smache", smache_res, smache_syn.fmax_mhz),
        iterations=iterations,
        grid_shape=(rows, cols),
        baseline_sim=baseline_res.artifacts.get("simulation") if keep_sim_results else None,
        smache_sim=smache_res.artifacts.get("simulation") if keep_sim_results else None,
    )
    return result
