"""Run-everything harness.

``run_all()`` regenerates every experiment (Figure 2, Table I, the resource
comparisons and the three ablations) and returns one text report; the
``python -m repro.eval`` command line wraps it.  The benchmarks under
``benchmarks/`` call the same entry points, so the numbers in
EXPERIMENTS.md, the benchmark output and this harness always agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.eval.ablations import (
    run_dram_penalty_ablation,
    run_planner_ablation,
    run_write_through_ablation,
)
from repro.eval.analytic_exp import run_analytic_check
from repro.eval.figure2 import run_figure2
from repro.eval.resources_exp import run_hybrid_tradeoff, run_resources
from repro.eval.table1 import run_table1


@dataclass
class ExperimentRecord:
    """One experiment's formatted output."""

    name: str
    title: str
    text: str


@dataclass
class EvaluationReport:
    """Everything the harness produced, with a single formatted view."""

    records: List[ExperimentRecord] = field(default_factory=list)

    def format(self) -> str:
        """Concatenate every experiment's output with separators."""
        blocks = []
        for record in self.records:
            header = f"{'=' * 72}\n{record.title}\n{'=' * 72}"
            blocks.append(f"{header}\n{record.text}")
        return "\n\n".join(blocks)

    def get(self, name: str) -> Optional[ExperimentRecord]:
        """Look up one experiment's record by name."""
        for record in self.records:
            if record.name == name:
                return record
        return None


#: Registry of experiments: name -> runner returning a formatted string.
#: Every runner accepts the session :class:`repro.api.Workbench`;
#: experiments that are sweeps (Figure 2, E5, the ablations) shard their
#: points over the session's runner policy, the rest ignore it.
EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "figure2": lambda wb: run_figure2(workbench=wb).format(),
    "table1": lambda wb: run_table1().format(),
    "resources": lambda wb: run_resources().format(),
    "hybrid": lambda wb: run_hybrid_tradeoff().format(),
    "analytic": lambda wb: run_analytic_check(workbench=wb).format(),
    "ablation-writethrough": lambda wb: run_write_through_ablation(workbench=wb).format(),
    "ablation-dram": lambda wb: run_dram_penalty_ablation(workbench=wb).format(),
    "ablation-planner": lambda wb: run_planner_ablation(workbench=wb).format(),
}

TITLES: Dict[str, str] = {
    "figure2": "E1 / Figure 2 — Smache vs baseline (11x11, 4-point stencil, 100 runs)",
    "table1": "E2 / Table I — estimated vs actual on-chip memory",
    "resources": "E3 — whole-design resource utilisation (baseline vs Smache)",
    "hybrid": "E4 — 1M-element register/BRAM trade-off (Case-R vs Case-H)",
    "analytic": "E5 — analytic performance model vs cycle-accurate simulation",
    "ablation-writethrough": "A1 — write-through / double-buffering ablation",
    "ablation-dram": "A2 — DRAM random-access penalty sensitivity",
    "ablation-planner": "A3 — planner benefit across grid sizes",
}


def run_experiment(name: str, jobs: int = 1, workbench=None) -> ExperimentRecord:
    """Run a single experiment by name.

    Experiments run through a :class:`repro.api.Workbench` session; pass an
    existing one to share its plan cache and runner policy across
    experiments (what :func:`run_all` does), or ``jobs`` builds a throwaway
    session whose sweeps shard over a process pool.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    from repro.api import Workbench

    text = EXPERIMENTS[name](Workbench.ensure(workbench, jobs=jobs))
    return ExperimentRecord(name=name, title=TITLES[name], text=text)


def run_all(
    names: Optional[List[str]] = None, jobs: int = 1, workbench=None
) -> EvaluationReport:
    """Run the requested experiments (all of them by default).

    One :class:`repro.api.Workbench` session is shared by every experiment,
    so repeated compilations of the paper's validation case hit one plan
    cache and every sweep uses one runner policy.
    """
    from repro.api import Workbench

    workbench = Workbench.ensure(workbench, jobs=jobs)
    report = EvaluationReport()
    for name in names or list(EXPERIMENTS):
        report.records.append(run_experiment(name, workbench=workbench))
    return report
