"""The numbers reported in the paper, used for paper-vs-measured comparisons.

All values are transcribed from the paper's Figure 2, Table I and the prose of
Section IV.  Keeping them in one module makes the comparison code and the
EXPERIMENTS.md generation trivially auditable.
"""

from __future__ import annotations

#: Figure 2 — absolute values behind the normalised bar chart.
PAPER_FIGURE2 = {
    "baseline": {
        "cycle_count": 64001,
        "freq_mhz": 372.9,
        "dram_traffic_kib": 236.3,
        "exec_time_us": 171.6,
        "mops": 282.01,
    },
    "smache": {
        "cycle_count": 14039,
        "freq_mhz": 235.3,
        "dram_traffic_kib": 95.5,
        "exec_time_us": 59.7,
        "mops": 811.21,
    },
}

#: Figure 2 experiment parameters.
PAPER_FIGURE2_SETUP = {
    "rows": 11,
    "cols": 11,
    "iterations": 100,
    "stencil": "4-point",
    "word_bytes": 4,
}

#: Table I — estimated and actual on-chip memory utilisation (bits).
#: Key: (grid, mode) where mode "r" = register-only, "h" = hybrid.
PAPER_TABLE1 = {
    ("11x11", "r"): {
        "estimate": {"Rsc": 0, "Bsc": 1408, "Rsm": 800, "Bsm": 0, "Rtotal": 800, "Btotal": 1408},
        "actual": {"Rsc": 0, "Bsc": 1536, "Rsm": 928, "Bsm": 0, "Rtotal": 998, "Btotal": 1536},
    },
    ("11x11", "h"): {
        "estimate": {"Rsc": 0, "Bsc": 1408, "Rsm": 352, "Bsm": 448, "Rtotal": 352, "Btotal": 1856},
        "actual": {"Rsc": 0, "Bsc": 1536, "Rsm": 355, "Bsm": 512, "Rtotal": 425, "Btotal": 2048},
    },
    ("1024x1024", "r"): {
        "estimate": {
            "Rsc": 0,
            "Bsc": 131072,
            "Rsm": 65632,
            "Bsm": 0,
            "Rtotal": 65632,
            "Btotal": 131072,
        },
        "actual": {
            "Rsc": 0,
            "Bsc": 131200,
            "Rsm": 65670,
            "Bsm": 0,
            "Rtotal": 66857,
            "Btotal": 131200,
        },
    },
    ("1024x1024", "h"): {
        "estimate": {
            "Rsc": 0,
            "Bsc": 131072,
            "Rsm": 352,
            "Bsm": 65280,
            "Rtotal": 352,
            "Btotal": 196352,
        },
        "actual": {
            "Rsc": 0,
            "Bsc": 131200,
            "Rsm": 362,
            "Bsm": 65536,
            "Rtotal": 1549,
            "Btotal": 196736,
        },
    },
}

#: Section IV prose — whole-design resource utilisation of the two prototypes
#: (the Smache figures correspond to the 11x11 register-only variant: its
#: 1.5K BRAM bits are the double-buffered static buffers alone).
PAPER_RESOURCES = {
    "baseline": {"alms": 79, "registers": 262, "bram_bits": 0},
    "smache": {"alms": 520, "registers": 1088, "bram_bits": 1536},
}

#: Section IV prose — the 1M-element (1024x1024) register/BRAM trade-off.
PAPER_HYBRID_TRADEOFF = {
    "register_only": {"registers": 66_000, "bram_bits": 131_000},
    "hybrid": {"registers": 1_500, "bram_bits": 196_000},
}


def relative_error(measured: float, paper: float) -> float:
    """Relative error of a measured value against the paper's value."""
    if paper == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - paper) / abs(paper)
