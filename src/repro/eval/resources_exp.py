"""Experiments E3 and E4 — whole-design resources and the hybrid trade-off.

E3 reproduces the prose comparison of Section IV: the baseline synthesises to
a handful of ALMs and registers with no BRAM, while Smache spends a few
hundred ALMs, around a thousand registers and 1.5K BRAM bits — the resource
price of eliminating the redundant DRAM accesses.

E4 reproduces the 1M-element (1024x1024) register/BRAM trade-off: Case-R
(register-only stream buffer) consumes tens of thousands of registers and
~131K BRAM bits, while Case-H (hybrid) brings the registers down to the
low thousands by moving the window bulk into ~196K BRAM bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.eval.paper_constants import PAPER_HYBRID_TRADEOFF, PAPER_RESOURCES, relative_error
from repro.fpga.synthesis import SynthesisReport, synthesize_baseline
from repro.pipeline import StencilProblem, compile
from repro.utils.tables import format_table


@dataclass
class ResourceComparison:
    """E3: baseline vs Smache whole-design resources."""

    baseline: SynthesisReport
    smache: SynthesisReport
    paper: Dict[str, Dict[str, float]] = field(default_factory=lambda: PAPER_RESOURCES)

    def rows(self) -> Dict[str, Dict[str, float]]:
        """Measured values in the same shape as the paper constants."""
        return {
            "baseline": {
                "alms": self.baseline.alms,
                "registers": self.baseline.registers,
                "bram_bits": self.baseline.bram_bits,
            },
            "smache": {
                "alms": self.smache.alms,
                "registers": self.smache.registers,
                "bram_bits": self.smache.bram_bits,
            },
        }

    def errors(self) -> Dict[str, Dict[str, float]]:
        """Relative errors against the paper's prose numbers."""
        measured = self.rows()
        return {
            design: {
                key: relative_error(measured[design][key], self.paper[design][key])
                for key in ("alms", "registers", "bram_bits")
            }
            for design in ("baseline", "smache")
        }

    def format(self) -> str:
        """Text table of measured vs paper resources."""
        headers = ["design", "ALMs", "registers", "BRAM bits", "source"]
        measured = self.rows()
        body = []
        for design in ("baseline", "smache"):
            m = measured[design]
            p = self.paper[design]
            body.append([design, m["alms"], m["registers"], m["bram_bits"], "measured"])
            body.append([design, p["alms"], p["registers"], p["bram_bits"], "paper"])
        return format_table(headers, body, title="E3 — whole-design resource utilisation")


def run_resources(rows: int = 11, cols: int = 11) -> ResourceComparison:
    """Synthesize both designs for the validation case (E3).

    The paper's in-text Smache numbers correspond to the register-only
    (Case-R) variant — its 1.5K BRAM bits are exactly the double-buffered
    static buffers — so that is the variant synthesised here.
    """
    baseline_cfg = SmacheConfig.paper_example(rows, cols)
    smache_cfg = SmacheConfig.paper_example(rows, cols, mode=StreamBufferMode.REGISTER_ONLY)
    return ResourceComparison(
        baseline=synthesize_baseline(baseline_cfg),
        smache=compile(StencilProblem.from_config(smache_cfg)).synthesis,
    )


@dataclass
class HybridTradeoffResult:
    """E4: the 1024x1024 register-only vs hybrid resource trade-off."""

    register_only: Dict[str, float]
    hybrid: Dict[str, float]
    paper: Dict[str, Dict[str, float]] = field(default_factory=lambda: PAPER_HYBRID_TRADEOFF)

    def format(self) -> str:
        """Text table of the trade-off, measured vs paper."""
        headers = ["variant", "stream registers (bits)", "BRAM bits", "source"]
        body = [
            ["Case-R", self.register_only["registers"], self.register_only["bram_bits"], "measured"],
            [
                "Case-R",
                self.paper["register_only"]["registers"],
                self.paper["register_only"]["bram_bits"],
                "paper (approx.)",
            ],
            ["Case-H", self.hybrid["registers"], self.hybrid["bram_bits"], "measured"],
            [
                "Case-H",
                self.paper["hybrid"]["registers"],
                self.paper["hybrid"]["bram_bits"],
                "paper (approx.)",
            ],
        ]
        return format_table(headers, body, title="E4 — 1M-element register/BRAM trade-off")


def run_hybrid_tradeoff(rows: int = 1024, cols: int = 1024) -> HybridTradeoffResult:
    """Price the 1M-element grid in Case-R and Case-H (E4)."""
    results = {}
    for key, mode in (
        ("register_only", StreamBufferMode.REGISTER_ONLY),
        ("hybrid", StreamBufferMode.HYBRID),
    ):
        config = SmacheConfig.paper_example(rows, cols, mode=mode)
        cost = compile(StencilProblem.from_config(config)).cost
        results[key] = {
            "registers": cost.r_total_bits,
            "bram_bits": cost.b_total_bits,
        }
    return HybridTradeoffResult(register_only=results["register_only"], hybrid=results["hybrid"])
