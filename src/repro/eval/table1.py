"""Experiment E2 — Table I: estimated vs actual on-chip memory utilisation.

Four configurations: {11x11, 1024x1024} x {register-only, hybrid}.  The
"Estimate" rows come from the memory cost model
(:mod:`repro.core.cost_model`); the "Actual" rows come from the analytical
synthesis model (:mod:`repro.fpga.synthesis`), our stand-in for the paper's
Quartus run.  The reproduced claim is that the estimate closely tracks the
actual for every column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.config import SmacheConfig
from repro.core.partition import StreamBufferMode
from repro.eval.paper_constants import PAPER_TABLE1, relative_error
from repro.pipeline import StencilProblem, compile
from repro.utils.tables import format_table

#: Table I columns, in the paper's order.
TABLE1_COLUMNS = ("Rsc", "Bsc", "Rsm", "Bsm", "Rtotal", "Btotal")

#: The four problem rows of Table I.
TABLE1_PROBLEMS: Tuple[Tuple[str, Tuple[int, int], StreamBufferMode], ...] = (
    ("11x11", (11, 11), StreamBufferMode.REGISTER_ONLY),
    ("11x11", (11, 11), StreamBufferMode.HYBRID),
    ("1024x1024", (1024, 1024), StreamBufferMode.REGISTER_ONLY),
    ("1024x1024", (1024, 1024), StreamBufferMode.HYBRID),
)


@dataclass
class Table1Row:
    """One problem row: estimate and actual, measured here and in the paper."""

    problem: str
    mode: str
    estimate: Dict[str, int]
    actual: Dict[str, int]
    paper_estimate: Dict[str, int]
    paper_actual: Dict[str, int]

    def estimate_vs_actual_error(self) -> float:
        """Largest relative gap between our estimate and our actual (non-zero cols)."""
        worst = 0.0
        for col in TABLE1_COLUMNS:
            actual = self.actual[col]
            if actual == 0:
                continue
            worst = max(worst, abs(self.estimate[col] - actual) / actual)
        return worst

    def estimate_vs_paper_error(self) -> float:
        """Largest relative gap between our estimate and the paper's estimate."""
        worst = 0.0
        for col in TABLE1_COLUMNS:
            paper = self.paper_estimate[col]
            if paper == 0:
                continue
            worst = max(worst, relative_error(self.estimate[col], paper))
        return worst


@dataclass
class Table1Result:
    """All four rows of Table I."""

    rows: List[Table1Row] = field(default_factory=list)

    def format(self) -> str:
        """Render the table with measured and paper values side by side."""
        headers = ["problem", "kind"] + list(TABLE1_COLUMNS)
        body = []
        for row in self.rows:
            label = f"{row.problem}{row.mode}"
            body.append([label, "estimate"] + [row.estimate[c] for c in TABLE1_COLUMNS])
            body.append([label, "actual"] + [row.actual[c] for c in TABLE1_COLUMNS])
            body.append(
                [label, "paper-est"] + [row.paper_estimate[c] for c in TABLE1_COLUMNS]
            )
            body.append([label, "paper-act"] + [row.paper_actual[c] for c in TABLE1_COLUMNS])
        return format_table(headers, body, title="Table I — on-chip memory (bits)")


def run_table1() -> Table1Result:
    """Regenerate Table I for the four paper configurations."""
    result = Table1Result()
    for problem, shape, mode in TABLE1_PROBLEMS:
        config = SmacheConfig.paper_example(shape[0], shape[1], mode=mode)
        design = compile(StencilProblem.from_config(config))
        estimate = design.cost
        synthesis = design.synthesis
        mode_key = "r" if mode is StreamBufferMode.REGISTER_ONLY else "h"
        paper = PAPER_TABLE1[(problem, mode_key)]
        result.rows.append(
            Table1Row(
                problem=problem,
                mode=mode_key,
                estimate=dict(estimate.as_table_row()),
                actual=dict(synthesis.memory.as_table_row()),
                paper_estimate=dict(paper["estimate"]),
                paper_actual=dict(paper["actual"]),
            )
        )
    return result
