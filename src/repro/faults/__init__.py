"""Fault model for campaign execution and the evaluation service.

Four pieces, layered from policy to mechanism:

* :mod:`repro.faults.policy` — :class:`RetryPolicy`: attempt budgets,
  exponential backoff with deterministic seeded jitter, and the
  retryable-vs-fatal exception classification every executor shares;
* :mod:`repro.faults.context` — the per-process record of *which* point
  (key, label, attempt) is currently evaluating, the seam the injection
  harness keys its schedules on;
* :mod:`repro.faults.inject` — the deterministic fault-injection harness:
  declarative :class:`FaultSpec` schedules wrapped around any registered
  backend (:class:`FaultyBackend`), making crash/hang/fail scenarios exactly
  reproducible in tests and ``python -m repro.sweep chaos``;
* :mod:`repro.faults.breaker` — a generic :class:`CircuitBreaker`, used by
  the serve layer to shed load while the engine is failing.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.context import clear_point_context, current_point, set_point_context
from repro.faults.inject import (
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    InjectedFault,
    SimulatedCrash,
    inject_faults,
)
from repro.faults.policy import FatalError, RetryableError, RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FatalError",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "InjectedFault",
    "RetryPolicy",
    "RetryableError",
    "SimulatedCrash",
    "clear_point_context",
    "current_point",
    "inject_faults",
    "set_point_context",
]
