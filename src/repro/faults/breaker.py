"""A minimal circuit breaker: shed load while the downstream is failing.

Classic three-state machine, tuned for the serve layer but dependency-free:

* **closed** — requests flow; consecutive failures are counted and
  ``threshold`` of them in a row trip the breaker open (a single success
  resets the streak);
* **open** — requests are refused outright for ``cooldown_ms``; callers get
  a ``retry_after_ms`` hint instead of queueing work the engine will fail;
* **half-open** — after the cooldown one probe request is admitted: success
  closes the breaker, failure re-opens it for another cooldown.

The clock is injectable (``time.monotonic`` by default) so tests drive the
state machine without sleeping.  Not thread-safe by itself: the serve layer
calls it from a single event loop; other callers must add their own lock.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

#: The three breaker states, as reported by :attr:`CircuitBreaker.state`.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Trip after ``threshold`` consecutive failures; recover via one probe."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown_ms: float = 1000.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if cooldown_ms <= 0:
            raise ValueError("cooldown_ms must be positive")
        self.threshold = threshold
        self.cooldown_ms = cooldown_ms
        self._clock = clock
        self._state = CLOSED
        self._failures = 0  # consecutive, while closed
        self._opened_at = 0.0
        self._probing = False  # a half-open probe is in flight
        self._trips = 0  # lifetime closed→open transitions

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    @property
    def trips(self) -> int:
        return self._trips

    def _maybe_half_open(self) -> None:
        if self._state == OPEN:
            elapsed_ms = (self._clock() - self._opened_at) * 1000.0
            if elapsed_ms >= self.cooldown_ms:
                self._state = HALF_OPEN
                self._probing = False

    # ------------------------------------------------------------------ #
    def allow(self) -> bool:
        """Whether to admit the next request (may consume the probe slot)."""
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def retry_after_ms(self) -> int:
        """Cooldown remaining — the hint to hand back with a refusal."""
        self._maybe_half_open()
        if self._state == CLOSED:
            return 0
        if self._state == HALF_OPEN:
            return max(1, int(self.cooldown_ms))  # probe pending; come back later
        elapsed_ms = (self._clock() - self._opened_at) * 1000.0
        return max(1, int(self.cooldown_ms - elapsed_ms))

    def record_success(self) -> None:
        self._maybe_half_open()
        self._failures = 0
        self._probing = False
        self._state = CLOSED

    def record_failure(self) -> None:
        self._maybe_half_open()
        if self._state == HALF_OPEN:
            self._trip()  # the probe failed: straight back to open
            return
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._probing = False
        self._trips += 1

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, object]:
        """State for ``/stats``-style reporting."""
        state = self.state  # advances open → half-open first
        return {
            "state": state,
            "failures": self._failures,
            "trips": self._trips,
            "threshold": self.threshold,
            "cooldown_ms": self.cooldown_ms,
            "retry_after_ms": self.retry_after_ms() if state != CLOSED else 0,
        }
