"""Which sweep point is evaluating in *this* process, right now.

Runners stamp the current point's identity (key, label, attempt number)
into a module global before handing the point to its backend and clear it
after.  The fault-injection harness (:mod:`repro.faults.inject`) reads it to
decide whether a declarative fault schedule applies to the evaluation in
flight — by point key, by label glob, or by attempt number — without the
backend protocol having to carry any of that.

The globals are per-process by construction: a forked pool worker inherits
the parent's (cleared) state and stamps its own points, so injection
schedules behave identically in serial and pooled campaigns.

Deliberately dependency-free: imported by both the runners and the
injection harness, below everything else in the stack.
"""

from __future__ import annotations

from typing import Optional, Tuple

_KEY: Optional[str] = None
_LABEL: Optional[str] = None
_ATTEMPT: int = 1


def set_point_context(key: str, label: str, attempt: int = 1) -> None:
    """Record the point this process is about to evaluate."""
    global _KEY, _LABEL, _ATTEMPT
    _KEY, _LABEL, _ATTEMPT = key, label, attempt


def clear_point_context() -> None:
    """Forget the current point (evaluation finished or raised)."""
    global _KEY, _LABEL, _ATTEMPT
    _KEY, _LABEL, _ATTEMPT = None, None, 1


def current_point() -> Tuple[Optional[str], Optional[str], int]:
    """``(key, label, attempt)`` of the evaluation in flight (Nones outside one)."""
    return _KEY, _LABEL, _ATTEMPT
