"""Deterministic fault injection: make any backend fail, hang or crash on cue.

The harness wraps registered evaluation backends
(:class:`~repro.pipeline.backends.Backend`) in a :class:`FaultyBackend` that
consults a declarative :class:`FaultPlan` before every evaluation.  Faults
are matched against the *current point context*
(:mod:`repro.faults.context`): by exact point key, by ``fnmatch`` glob over
the display label, by attempt number (``attempts_below=2`` fires on the
first attempt only — the point succeeds on retry), or by a **seeded
probability** whose coin is a content hash of ``(seed, key, attempt)`` — so
a "30% flaky" campaign fails the *same* points on the *same* attempts every
run.  Three actions:

* ``fail``  — raise :class:`InjectedFault` (retryable);
* ``hang``  — sleep ``seconds`` before evaluating normally (exercises the
  pool runner's per-point deadline watchdog);
* ``crash`` — kill the evaluating process with ``os._exit`` when it is a
  pool worker (a real ``BrokenProcessPool`` in the parent); in the main
  process it degrades to raising :class:`SimulatedCrash` (retryable), so
  serial campaigns exercise the same schedule without dying.

Because wrapping replaces the ``analytic`` registry slot with a non-
:class:`AnalyticBackend` type, the runners' vectorized fast lane disables
itself automatically (its guard requires the exact class) — and the lane's
bitwise-equality contract means canonical campaign output is unchanged.

Install with the :func:`inject_faults` context manager (restores the
registry on exit) for tests, or ``python -m repro.sweep chaos`` on the
command line.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.faults.context import current_point
from repro.faults.policy import RetryableError
from repro.pipeline.backends import (
    _BACKENDS,
    Backend,
    EvaluationRequest,
    EvaluationResult,
    available_backends,
    get_backend,
    register_backend,
)
from repro.pipeline.compile import CompiledDesign

#: The three things an injected fault can do to an evaluation.
FAULT_ACTIONS = ("fail", "hang", "crash")

#: Exit status of a worker killed by an injected crash (Fortran's "open
#: failed" — distinctive in CI logs, not a signal number).
CRASH_EXIT_CODE = 23


class InjectedFault(RetryableError):
    """An evaluation failed because the fault plan said so (retryable)."""


class SimulatedCrash(RetryableError):
    """A ``crash`` fault in the main process (serial parity for pool kills)."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to do, to which points, on which attempts.

    Match fields combine with AND; unset fields match everything.  A spec
    with neither ``key`` nor ``label`` nor ``probability`` applies to every
    evaluation (useful with ``attempts_below`` for "every point fails
    once").
    """

    action: str  #: one of :data:`FAULT_ACTIONS`
    key: Optional[str] = None  #: exact point key
    label: Optional[str] = None  #: fnmatch glob over display labels
    #: Fire only while ``attempt < attempts_below`` (None: every attempt —
    #: a poison fault that no retry survives).
    attempts_below: Optional[int] = None
    #: Seeded per-(key, attempt) coin; None fires unconditionally.
    probability: Optional[float] = None
    seconds: float = 1.0  #: hang duration (``hang`` only)
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    def matches(self, key: str, label: str, attempt: int, coin: float) -> bool:
        """Whether this fault fires for the given evaluation.

        ``coin`` is the caller's deterministic uniform draw for
        ``(key, attempt)`` — supplied by :class:`FaultPlan` so every spec of
        one plan shares a single, seeded coin per evaluation.
        """
        if self.key is not None and key != self.key:
            return False
        if self.label is not None and not fnmatch.fnmatchcase(label or "", self.label):
            return False
        if self.attempts_below is not None and attempt >= self.attempts_below:
            return False
        if self.probability is not None and coin >= self.probability:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule: first matching spec wins.

    Frozen and picklable — forked pool workers inherit the installed plan
    (module registry included), so injection behaves identically across the
    process boundary.  ``main_pid`` is stamped at construction: it is how a
    ``crash`` fault distinguishes a real pool worker (kill the process)
    from the orchestrating process (raise :class:`SimulatedCrash`).
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    main_pid: int = field(default_factory=os.getpid)

    def coin(self, key: str, attempt: int) -> float:
        """The deterministic uniform draw for one (key, attempt) pair."""
        digest = hashlib.sha1(
            f"{self.seed}|{key}|{attempt}".encode("utf-8")
        ).hexdigest()
        return random.Random(int(digest, 16)).random()

    def action_for(
        self, key: Optional[str], label: Optional[str], attempt: int
    ) -> Optional[FaultSpec]:
        """The first fault that fires for this evaluation (None outside one)."""
        if key is None and label is None:
            return None  # no point context: direct backend use, never faulted
        coin = self.coin(key or label or "", attempt)
        for spec in self.faults:
            if spec.matches(key or "", label or "", attempt, coin):
                return spec
        return None

    @classmethod
    def from_dicts(
        cls, faults: Iterable[Dict[str, object]], seed: int = 0
    ) -> "FaultPlan":
        """Build a plan from plain dicts (JSON/CLI friendly)."""
        return cls(faults=tuple(FaultSpec(**spec) for spec in faults), seed=seed)


class FaultyBackend(Backend):  # repro: allow[backend-protocol] name mirrors the wrapped backend, set in __init__
    """A registered backend wrapped with a fault schedule.

    Evaluations whose point context matches the plan are failed, delayed or
    crashed *before* the inner backend runs (``hang`` delays, then runs).
    Batch evaluation degrades to the per-point loop so every point gets its
    own fault decision — and so no vectorized path can skip the schedule.
    """

    def __init__(self, inner: Backend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = inner.name

    def _maybe_fault(self) -> None:
        key, label, attempt = current_point()
        spec = self.plan.action_for(key, label, attempt)
        if spec is None:
            return
        if spec.action == "hang":
            time.sleep(spec.seconds)
            return
        if spec.action == "crash":
            if os.getpid() != self.plan.main_pid:
                os._exit(CRASH_EXIT_CODE)  # a genuine worker death, no cleanup
            raise SimulatedCrash(
                f"{spec.message} (simulated in-process crash, point {label!r}, "
                f"attempt {attempt})"
            )
        raise InjectedFault(f"{spec.message} (point {label!r}, attempt {attempt})")

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        self._maybe_fault()
        return self.inner.evaluate(design, request)

    def evaluate_many(
        self,
        items: Sequence[Tuple[CompiledDesign, EvaluationRequest]],
        with_artifacts: bool = True,
    ) -> List[EvaluationResult]:
        # Per-point loop on purpose: one fault decision per evaluation.
        return Backend.evaluate_many(self, items, with_artifacts=with_artifacts)


# --------------------------------------------------------------------------- #
# installation
# --------------------------------------------------------------------------- #
def install_fault_plan(
    plan: FaultPlan, backends: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Wrap registered backends with ``plan``; returns the saved factories.

    Wraps every registered backend by default (faults key on point context,
    so unmatched backends pass straight through).  The returned mapping
    feeds :func:`restore_backends`; prefer the :func:`inject_faults`
    context manager, which pairs the two.
    """
    names: List[str] = list(backends) if backends is not None else available_backends()
    saved = {name: _BACKENDS[name] for name in names}
    for name in names:
        inner = get_backend(name)
        register_backend(
            # repro: allow[picklability] fork-inherited registry override — installed per-process, never pickled
            name, lambda inner=inner, plan=plan: FaultyBackend(inner, plan)
        )
    return saved


def restore_backends(saved: Dict[str, object]) -> None:
    """Re-register the factories saved by :func:`install_fault_plan`."""
    for name, factory in saved.items():
        register_backend(name, factory)


@contextmanager
def inject_faults(
    plan: FaultPlan, backends: Optional[Sequence[str]] = None
) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block.

    Pool workers forked inside the block inherit the wrapped registry, so a
    pooled campaign under injection needs nothing extra.  The registry is
    restored on exit even when the block raises.
    """
    saved = install_fault_plan(plan, backends=backends)
    try:
        yield plan
    finally:
        restore_backends(saved)
