"""Retry policy: attempt budgets, classified exceptions, deterministic backoff.

A :class:`RetryPolicy` answers the three questions every fault-tolerant
executor asks:

* *should this failure be retried?* — :meth:`RetryPolicy.classify` splits
  exceptions into retryable (transient by nature: timeouts, lost
  connections, broken pools, anything tagged :class:`RetryableError`) and
  fatal (deterministic bugs and explicit :class:`FatalError`\\ s — retrying a
  ``ValueError`` re-raises the same ``ValueError``);
* *how long to wait before the next attempt?* — :meth:`RetryPolicy.delay_s`
  is exponential backoff with **seeded jitter**: the jitter RNG is derived
  from ``(seed, point key, attempt)`` via a content hash, so two runs of the
  same campaign produce the same delays — replayable fault timelines, no
  thundering herd;
* *when to give up on a straggler?* — :attr:`RetryPolicy.deadline_s`, the
  per-point wall-clock budget the pool runner's watchdog enforces.

The policy is a frozen, picklable dataclass: pool runners ship it to workers
so failure classification happens where the exception type still exists
(exceptions themselves do not always survive the process boundary).
"""

from __future__ import annotations

import hashlib
import random
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Optional, Tuple, Type


class RetryableError(RuntimeError):
    """Marker base: failures that are transient by construction.

    Backends (and the fault-injection harness) raise subclasses of this to
    say "try again" regardless of the policy's type lists.
    """


class FatalError(RuntimeError):
    """Marker base: failures no amount of retrying will fix."""


#: Transient by nature: the default retryable set.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    RetryableError,
    TimeoutError,
    ConnectionError,
    BrokenExecutor,
)

#: Deterministic by nature: the same inputs will raise the same error again.
DEFAULT_FATAL: Tuple[Type[BaseException], ...] = (
    FatalError,
    ValueError,
    TypeError,
    AssertionError,
    NotImplementedError,
    KeyboardInterrupt,
    SystemExit,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How an executor retries, backs off, and gives up.

    Parameters
    ----------
    max_attempts:
        Total attempts per point (first try included).  A point still
        failing after this many is recorded as *failed*, not re-raised.
    base_delay_s / backoff / max_delay_s:
        Exponential backoff shape: attempt *n* (1-based) waits
        ``min(max_delay_s, base_delay_s * backoff**(n-1))`` before attempt
        *n+1*, jittered.
    jitter:
        Relative jitter amplitude: the delay is scaled by a factor drawn
        uniformly from ``[1-jitter, 1+jitter]`` — deterministically, from a
        RNG seeded by ``(seed, key, attempt)``.
    seed:
        Jitter seed; change it to decorrelate two campaigns' retry storms.
    deadline_s:
        Per-point wall-clock budget.  ``None`` disables the watchdog; when
        set, the pool runner abandons and re-issues points whose chunk
        exceeds its cumulative deadline.
    retryable_types / fatal_types:
        The classification lists.  Fatal wins on overlap; exceptions in
        neither list follow ``retry_unknown``.
    retry_unknown:
        Whether an unclassified exception type is worth retrying (default
        True: unknown failures are assumed transient; deterministic bugs
        should surface as the fatal types above).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    deadline_s: Optional[float] = None
    retryable_types: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE
    fatal_types: Tuple[Type[BaseException], ...] = DEFAULT_FATAL
    retry_unknown: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    # ------------------------------------------------------------------ #
    def classify(self, exc: BaseException) -> bool:
        """True when ``exc`` is worth retrying under this policy.

        Fatal types win over retryable ones (an explicit :class:`FatalError`
        subclassing a retryable base stays fatal); anything in neither list
        follows :attr:`retry_unknown`.
        """
        if isinstance(exc, self.fatal_types):
            return False
        if isinstance(exc, self.retryable_types):
            return True
        return self.retry_unknown

    def delay_s(self, key: str, attempt: int) -> float:
        """Backoff before retrying ``key`` after its ``attempt``-th failure.

        Deterministic: the same (seed, key, attempt) always produces the
        same delay, so fault-injected campaigns replay with identical
        timelines — and distinct keys decorrelate, so a burst of failures
        does not retry in lockstep.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = min(self.max_delay_s, self.base_delay_s * self.backoff ** (attempt - 1))
        if self.jitter and delay > 0:
            digest = hashlib.sha1(
                f"{self.seed}|{key}|{attempt}".encode("utf-8")
            ).hexdigest()
            rng = random.Random(int(digest, 16))
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def describe(self) -> str:
        """One-line summary for reports and logs."""
        deadline = f", deadline {self.deadline_s:g}s" if self.deadline_s else ""
        return (
            f"retry x{self.max_attempts}, backoff {self.base_delay_s:g}s"
            f"*{self.backoff:g} (cap {self.max_delay_s:g}s, "
            f"jitter {self.jitter:.0%}){deadline}"
        )
