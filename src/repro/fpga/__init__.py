"""FPGA device, resource and synthesis models.

The paper reports two kinds of numbers that come from vendor tooling rather
than from simulation: clock frequency after synthesis (Fig. 2) and resource
utilisation (Table I "Actual" rows and the in-text ALM/register/BRAM
comparison).  This package provides the analytical stand-ins:

* :mod:`repro.fpga.device` — a Stratix-V-like device description;
* :mod:`repro.fpga.resources` — ALM / register / BRAM-bit accounting;
* :mod:`repro.fpga.synthesis` — a structural resource walker and a
  critical-path Fmax estimator, calibrated against the paper's reported
  numbers (see EXPERIMENTS.md for the calibration points and errors).
"""

from repro.fpga.device import FPGADevice, stratix_v
from repro.fpga.resources import ResourceUsage
from repro.fpga.synthesis import (
    SynthesisReport,
    TimingModel,
    synthesize_baseline,
    synthesize_smache,
)

__all__ = [
    "FPGADevice",
    "stratix_v",
    "ResourceUsage",
    "SynthesisReport",
    "TimingModel",
    "synthesize_baseline",
    "synthesize_smache",
]
