"""FPGA device descriptions.

The paper synthesises for a Stratix-V device; :func:`stratix_v` provides a
device of that class.  Device capacities are used by the DSE module to decide
whether a buffer configuration fits, and by reports to express utilisation as
a percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.fpga.resources import ResourceUsage
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class FPGADevice:
    """Capacity description of one FPGA device."""

    name: str
    alms: int
    registers: int
    m20k_blocks: int
    m20k_bits_per_block: int = 20480
    dsp_blocks: int = 256
    base_fmax_mhz: float = 450.0

    def __post_init__(self) -> None:
        check_positive("alms", self.alms)
        check_positive("registers", self.registers)
        check_positive("m20k_blocks", self.m20k_blocks)
        check_positive("m20k_bits_per_block", self.m20k_bits_per_block)

    # ------------------------------------------------------------------ #
    @property
    def bram_bits(self) -> int:
        """Total block-RAM capacity in bits."""
        return self.m20k_blocks * self.m20k_bits_per_block

    def capacity(self) -> ResourceUsage:
        """The device's capacity expressed as a :class:`ResourceUsage`."""
        return ResourceUsage(
            alms=self.alms,
            registers=self.registers,
            bram_bits=self.bram_bits,
            dsps=self.dsp_blocks,
        )

    def fits(self, usage: ResourceUsage) -> bool:
        """True if ``usage`` fits within the device."""
        return not usage.exceeds(self.capacity())

    def utilisation(self, usage: ResourceUsage) -> Dict[str, float]:
        """Fractional utilisation per resource class."""
        return {
            "alms": usage.alms / self.alms,
            "registers": usage.registers / self.registers,
            "bram_bits": usage.bram_bits / self.bram_bits,
            "dsps": usage.dsps / self.dsp_blocks if self.dsp_blocks else 0.0,
        }


def stratix_v(name: str = "Stratix-V-5SGXA7") -> FPGADevice:
    """A Stratix-V class device (the family used in the paper's synthesis)."""
    return FPGADevice(
        name=name,
        alms=234_720,
        registers=938_880,
        m20k_blocks=2_560,
        dsp_blocks=256,
        base_fmax_mhz=450.0,
    )


def small_device(name: str = "small-edge-device") -> FPGADevice:
    """A deliberately small device used in DSE examples to force trade-offs."""
    return FPGADevice(
        name=name,
        alms=20_000,
        registers=80_000,
        m20k_blocks=100,
        dsp_blocks=32,
        base_fmax_mhz=350.0,
    )
