"""FPGA resource accounting: ALMs, registers, BRAM bits, DSP blocks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ResourceUsage:
    """A bundle of FPGA resources, closed under addition and scaling."""

    alms: float = 0.0
    registers: float = 0.0
    bram_bits: float = 0.0
    dsps: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("alms", self.alms)
        check_non_negative("registers", self.registers)
        check_non_negative("bram_bits", self.bram_bits)
        check_non_negative("dsps", self.dsps)

    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            alms=self.alms + other.alms,
            registers=self.registers + other.registers,
            bram_bits=self.bram_bits + other.bram_bits,
            dsps=self.dsps + other.dsps,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        """Multiply every resource by ``factor``."""
        check_non_negative("factor", factor)
        return ResourceUsage(
            alms=self.alms * factor,
            registers=self.registers * factor,
            bram_bits=self.bram_bits * factor,
            dsps=self.dsps * factor,
        )

    def rounded(self) -> "ResourceUsage":
        """Round every resource up to an integer count."""
        import math

        return ResourceUsage(
            alms=math.ceil(self.alms),
            registers=math.ceil(self.registers),
            bram_bits=math.ceil(self.bram_bits),
            dsps=math.ceil(self.dsps),
        )

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (used by reports and tests)."""
        return {
            "alms": self.alms,
            "registers": self.registers,
            "bram_bits": self.bram_bits,
            "dsps": self.dsps,
        }

    def exceeds(self, other: "ResourceUsage") -> bool:
        """True if any resource of ``self`` is larger than ``other``'s."""
        return (
            self.alms > other.alms
            or self.registers > other.registers
            or self.bram_bits > other.bram_bits
            or self.dsps > other.dsps
        )

    @classmethod
    def total(cls, parts: Iterable["ResourceUsage"]) -> "ResourceUsage":
        """Sum an iterable of usages."""
        acc = cls()
        for p in parts:
            acc = acc + p
        return acc

    @classmethod
    def from_dict(cls, data: Mapping[str, float]) -> "ResourceUsage":
        """Inverse of :meth:`as_dict` (ignores unknown keys)."""
        return cls(
            alms=float(data.get("alms", 0.0)),
            registers=float(data.get("registers", 0.0)),
            bram_bits=float(data.get("bram_bits", 0.0)),
            dsps=float(data.get("dsps", 0.0)),
        )
