"""Analytical synthesis model: "actual" resources and Fmax.

The paper's Table I compares its memory cost model (our
:mod:`repro.core.cost_model`) against *actual* numbers from a full Quartus
synthesis for a Stratix-V device, and Figure 2 uses the synthesised clock
frequencies of the two designs.  Without vendor tooling we stand in for
synthesis with a structural model:

* every architectural block (window buffer, static buffers, controller FSMs,
  counters, kernel pipeline, stream interfaces) contributes registers, logic
  ALMs and BRAM bits according to simple structural formulas (pointer widths,
  adder widths, mux fan-ins);
* BRAM-resident structures incur the overheads a vendor tool introduces
  (FIFO depth rounded to a power of two, one guard word per static-buffer
  bank);
* ALM count combines register packing (4 registers per ALM when packing is
  good, as on Stratix-V) with the logic ALMs;
* Fmax comes from a critical-path model ``t = t_reg + levels * t_level``
  where the number of logic levels is derived from the design structure
  (address adders for the baseline; tap mux + source select + boundary-case
  select for Smache).

The delay and packing constants are calibrated once against the paper's
reported numbers (baseline 79 ALMs / 262 registers / 372.9 MHz, Smache
520 ALMs / 1088 registers / 1.5K BRAM bits / 235.3 MHz) and then reused,
unchanged, for every other configuration; EXPERIMENTS.md records the
resulting estimate-vs-paper errors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.buffers import BufferPlan
from repro.core.config import SmacheConfig
from repro.core.cost_model import MemoryCostEstimate
from repro.core.partition import HybridPartition, partition_for_plan
from repro.core.ranges import classify_cases, partition_into_ranges
from repro.fpga.resources import ResourceUsage
from repro.reference.kernels import AveragingKernel, StencilKernel


# --------------------------------------------------------------------------- #
# timing
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TimingModel:
    """Critical-path delay model."""

    #: register clock-to-out plus setup plus local routing (ns)
    t_reg_ns: float = 0.65
    #: one LUT level plus its routing (ns)
    t_level_ns: float = 0.40
    #: hard ceiling: no design runs faster than this (I/O, PLL limits)
    fmax_ceiling_mhz: float = 450.0

    def path_ns(self, levels: int) -> float:
        """Critical-path delay for a path of ``levels`` logic levels."""
        return self.t_reg_ns + max(0, levels) * self.t_level_ns

    def fmax_mhz(self, levels: int) -> float:
        """Achievable clock frequency for a path of ``levels`` logic levels."""
        return min(self.fmax_ceiling_mhz, 1000.0 / self.path_ns(levels))


# --------------------------------------------------------------------------- #
# report
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SynthesisReport:
    """Outcome of the analytical synthesis of one design."""

    design: str
    usage: ResourceUsage
    fmax_mhz: float
    critical_path_ns: float
    critical_path_levels: int
    memory: MemoryCostEstimate
    breakdown: Dict[str, ResourceUsage] = field(default_factory=dict)

    @property
    def registers(self) -> int:
        """Total register count (bits)."""
        return int(round(self.usage.registers))

    @property
    def alms(self) -> int:
        """Total ALM count."""
        return int(round(self.usage.alms))

    @property
    def bram_bits(self) -> int:
        """Total BRAM bits."""
        return int(round(self.usage.bram_bits))

    def describe(self) -> str:
        """Multi-line, human-readable report."""
        lines = [
            f"Synthesis report: {self.design}",
            f"  Fmax            : {self.fmax_mhz:.1f} MHz "
            f"({self.critical_path_ns:.2f} ns, {self.critical_path_levels} levels)",
            f"  ALMs            : {self.alms}",
            f"  Registers       : {self.registers}",
            f"  BRAM bits       : {self.bram_bits}",
        ]
        for name, usage in self.breakdown.items():
            lines.append(
                f"    - {name:<20} regs={usage.registers:<8.0f} "
                f"logic_alms={usage.alms:<6.0f} bram={usage.bram_bits:.0f}"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# structural helpers
# --------------------------------------------------------------------------- #
#: registers packed per ALM when packing succeeds (Stratix-V style ALM).
REGISTERS_PER_ALM = 4
#: ALMs per bit of a 2:1 mux (two bits per ALM).
MUX_BITS_PER_ALM = 2
#: ALMs per bit of an adder (carry chains pack two bits per ALM).
ADDER_BITS_PER_ALM = 2


def _clog2(n: int) -> int:
    """Ceiling log2 with a floor of 1 bit."""
    return max(1, int(math.ceil(math.log2(max(2, n)))))


def _next_pow2(n: int) -> int:
    """Smallest power of two >= n."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def _alms_from(registers: float, logic_alms: float) -> float:
    """Combine register packing with logic ALMs."""
    return math.ceil(registers / REGISTERS_PER_ALM) + logic_alms


# --------------------------------------------------------------------------- #
# Smache synthesis
# --------------------------------------------------------------------------- #
def synthesize_smache(
    config: SmacheConfig,
    plan: Optional[BufferPlan] = None,
    partition: Optional[HybridPartition] = None,
    kernel: Optional[StencilKernel] = None,
    timing: Optional[TimingModel] = None,
) -> SynthesisReport:
    """Structural synthesis of the Smache design for one configuration."""
    timing = timing or TimingModel()
    kernel = kernel or AveragingKernel()
    if plan is None:
        plan = config.plan()
    if partition is None:
        partition = partition_for_plan(
            plan, config.mode, register_elements=config.register_elements
        )

    word_bits = plan.stream.word_bits
    n = config.grid.size
    index_bits = _clog2(n)
    depth = plan.stream.depth
    n_taps = max(1, len([o for o in plan.lookup_offsets() if o != 0]))
    cases = classify_cases(partition_into_ranges(config.grid, config.stencil, config.boundary))
    n_cases = max(1, len(cases))

    breakdown: Dict[str, ResourceUsage] = {}

    # -- stream (window) buffer -------------------------------------------- #
    # Register section holds data; BRAM section is a FIFO whose depth the
    # vendor tool rounds up to a power of two; the FIFO needs read/write
    # pointers and a fill counter regardless of where the data lives.
    stream_ctrl_regs = 2 * _clog2(depth) + _clog2(depth) + 4  # pointers, fill count, valids
    stream_data_regs = partition.register_bits
    stream_bram_bits = (
        _next_pow2(partition.bram_elements) * word_bits if partition.bram_elements else 0
    )
    breakdown["stream_buffer"] = ResourceUsage(
        registers=stream_data_regs + stream_ctrl_regs,
        alms=stream_ctrl_regs / MUX_BITS_PER_ALM / 4,  # small control logic
        bram_bits=stream_bram_bits,
    )

    # -- static buffers ----------------------------------------------------- #
    # Each bank gets one guard word; each buffer needs an address pointer and
    # a bank-select flop; data lives in BRAM.
    static_bram_bits = 0
    static_ctrl_regs = 0
    static_logic = 0.0
    for spec in plan.statics:
        banks = spec.banks
        static_bram_bits += (spec.length + 1) * spec.word_bits * banks
        static_ctrl_regs += _clog2(spec.length + 1) + 1
        static_logic += _clog2(spec.length + 1)  # address compare/increment
    breakdown["static_buffers"] = ResourceUsage(
        registers=static_ctrl_regs,
        alms=static_logic / ADDER_BITS_PER_ALM,
        bram_bits=static_bram_bits,
    )

    # -- controller (FSM-1/2/3, counters, boundary-case decode) ------------- #
    controller_regs = (
        3 * 3                      # three FSM state registers
        + 4 * index_bits           # received/emitted/row/column counters
        + 2 * index_bits           # work-instance bookkeeping
    )
    controller_logic = (
        n_cases * index_bits / ADDER_BITS_PER_ALM / 2   # boundary-case comparators
        + 4 * index_bits / ADDER_BITS_PER_ALM           # counter increments
        + 12                                            # FSM next-state logic
    )
    breakdown["controller"] = ResourceUsage(registers=controller_regs, alms=controller_logic)

    # -- tuple assembly muxes ------------------------------------------------ #
    # Every operand of the stencil tuple selects between the window taps, the
    # static buffers and a constant; the mux is word-wide.
    n_sources = n_taps + plan.n_static_buffers + 1
    mux_logic = kernel_inputs = max(1, config.stencil.n_points)
    mux_logic = kernel_inputs * word_bits * (n_sources - 1) / (MUX_BITS_PER_ALM * 4)
    breakdown["tuple_mux"] = ResourceUsage(alms=mux_logic)

    # -- kernel pipeline ----------------------------------------------------- #
    kernel_regs = kernel.latency * word_bits + index_bits * kernel.latency
    kernel_logic = (
        max(1, config.stencil.n_points - 1) * word_bits / ADDER_BITS_PER_ALM / 2
        + word_bits / ADDER_BITS_PER_ALM / 2  # normalisation / final stage
    )
    breakdown["kernel"] = ResourceUsage(registers=kernel_regs, alms=kernel_logic)

    # -- stream interfaces (skid buffers, write-back) ------------------------ #
    interface_regs = 2 * (word_bits + 2) + (word_bits + index_bits)
    breakdown["interfaces"] = ResourceUsage(
        registers=interface_regs, alms=interface_regs / MUX_BITS_PER_ALM / 4
    )

    total_regs = sum(b.registers for b in breakdown.values())
    total_logic = sum(b.alms for b in breakdown.values())
    total_bram = sum(b.bram_bits for b in breakdown.values())
    usage = ResourceUsage(
        alms=_alms_from(total_regs, total_logic),
        registers=total_regs,
        bram_bits=total_bram,
    ).rounded()

    # -- memory split (Table I "Actual" analogue) ---------------------------- #
    # Like the paper's Table I, only *data* storage is attributed to the
    # buffers here; the buffers' pointer/control registers are accounted in
    # the per-block breakdown and the whole-design register count instead.
    memory = MemoryCostEstimate(
        r_static_bits=0,
        b_static_bits=static_bram_bits,
        r_stream_bits=stream_data_regs + stream_ctrl_regs,
        b_stream_bits=stream_bram_bits,
    )

    # -- timing -------------------------------------------------------------- #
    levels = (
        _clog2(n_taps + 1)         # window tap mux
        + 1                        # window / static / constant source select
        + _clog2(n_cases)          # boundary-case select
        + 1                        # output register enable / stall gating
    )
    fmax = timing.fmax_mhz(levels)
    return SynthesisReport(
        design=f"smache-{config.name}-{config.mode.value}",
        usage=usage,
        fmax_mhz=fmax,
        critical_path_ns=timing.path_ns(levels),
        critical_path_levels=levels,
        memory=memory,
        breakdown=breakdown,
    )


# --------------------------------------------------------------------------- #
# baseline synthesis
# --------------------------------------------------------------------------- #
def synthesize_baseline(
    config: SmacheConfig,
    kernel: Optional[StencilKernel] = None,
    timing: Optional[TimingModel] = None,
) -> SynthesisReport:
    """Structural synthesis of the no-buffering baseline master."""
    timing = timing or TimingModel()
    kernel = kernel or AveragingKernel()
    word_bits = config.effective_word_bits
    n = config.grid.size
    index_bits = _clog2(2 * n)  # addresses cover both ping-pong copies

    breakdown: Dict[str, ResourceUsage] = {}

    # operand collection registers: one word per stencil operand
    operand_regs = config.stencil.n_points * word_bits
    breakdown["operand_regs"] = ResourceUsage(registers=operand_regs)

    # address generation: point counter, operand counter, read/write address adders
    addr_regs = 2 * index_bits + 2 * index_bits + 4
    addr_logic = 2 * index_bits / ADDER_BITS_PER_ALM
    breakdown["address_gen"] = ResourceUsage(registers=addr_regs, alms=addr_logic)

    # control FSM
    breakdown["control"] = ResourceUsage(registers=6, alms=4)

    # kernel datapath (combinational adder tree + result register)
    kernel_regs = word_bits + 8
    kernel_logic = max(1, config.stencil.n_points - 1) * word_bits / ADDER_BITS_PER_ALM / 2
    breakdown["kernel"] = ResourceUsage(registers=kernel_regs, alms=kernel_logic)

    total_regs = sum(b.registers for b in breakdown.values())
    total_logic = sum(b.alms for b in breakdown.values())
    usage = ResourceUsage(
        alms=_alms_from(total_regs, total_logic),
        registers=total_regs,
        bram_bits=0,
    ).rounded()

    memory = MemoryCostEstimate(
        r_static_bits=0, b_static_bits=0, r_stream_bits=0, b_stream_bits=0
    )

    # critical path: the external 32-bit (byte) address adder — the DRAM bus
    # address width, independent of the grid size — carried in 8-bit segments,
    # plus the request mux.
    external_addr_bits = 32
    levels = external_addr_bits // 8 + 1
    fmax = timing.fmax_mhz(levels)
    return SynthesisReport(
        design=f"baseline-{config.name}",
        usage=usage,
        fmax_mhz=fmax,
        critical_path_ns=timing.path_ns(levels),
        critical_path_levels=levels,
        memory=memory,
        breakdown=breakdown,
    )
