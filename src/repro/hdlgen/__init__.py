"""HDL generation: automatic creation of a Smache instance from a problem.

The paper's stated key future work is to "completely automate the creation of
the Smache architecture given a problem with a particular stencil shape and
boundary conditions".  This package implements that step for the reproduction:
from a :class:`repro.core.config.SmacheConfig` it emits a synthesisable-style
Verilog-2001 skeleton of the Smache front-end — a parameter header derived
from the buffer plan, the top-level module with the window buffer, static
buffers and the three controller FSMs, and a self-checking testbench stub —
so the structural layer of the two-level customisation can be regenerated
mechanically.

The generated code mirrors the cycle-accurate Python model structurally (same
buffer sizes, same tap positions, same FSMs); it is intended as a starting
point for hardware integration, not as verified RTL.
"""

from repro.hdlgen.generator import (
    GeneratedProject,
    generate_parameter_header,
    generate_project,
    generate_smache_module,
    generate_testbench,
)

__all__ = [
    "GeneratedProject",
    "generate_parameter_header",
    "generate_smache_module",
    "generate_testbench",
    "generate_project",
]
