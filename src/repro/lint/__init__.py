"""repro.lint — contract-enforcing static analysis for the repro tree.

The determinism, event-schema and concurrency contracts this codebase is
built on live in docstrings and reviewers' heads; this package turns them
into AST-level checks that run in CI.  ``python -m repro.lint check src
--strict`` is the gate: exit 0 means every canonical module is free of
wall clocks and unseeded RNG, every ``RunEvent`` round-trips through
persistence/replay/follow, record dicts stay within ``CANONICAL_FIELDS``,
nothing unpicklable reaches a process boundary, backends honour the
evaluate protocol, and lock-protected state is never touched bare.

Programmatic entry point::

    from repro.lint import run_lint
    report = run_lint(["src"])
    assert report.exit_code(strict=True) == 0, report.format_text()

Suppression is two-layered: inline ``# repro: allow[check-id] why`` pragmas
for sanctioned sites, and a committed JSON baseline for grandfathered debt
(this tree ships with an empty one — keep it that way).
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import LintReport, run_lint
from repro.lint.findings import ERROR, WARNING, Finding
from repro.lint.registry import (
    Checker,
    LintContext,
    checker_classes,
    default_checkers,
    register,
)

__all__ = [
    "Baseline",
    "Checker",
    "ERROR",
    "Finding",
    "LintContext",
    "LintReport",
    "WARNING",
    "checker_classes",
    "default_checkers",
    "register",
    "run_lint",
]
