"""``python -m repro.lint`` — the contract-lint CLI.

Subcommands::

    check [PATHS...] [--strict] [--baseline FILE] [--update-baseline]
          [--check ID]... [--json] [--quiet]
    checks

``check`` lints the given paths (default ``src``) and exits 0/1 under the
sweep-diff convention: errors always gate; ``--strict`` additionally gates
warnings and stale baseline entries, so a strict-clean tree needs no
baseline at all.  ``--update-baseline`` records the current findings as the
new baseline and exits 0 — the escape hatch for landing the linter on a
not-yet-clean tree.  ``checks`` lists the registered checkers.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import run_lint
from repro.lint.registry import checker_classes


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Contract-enforcing static analysis for the repro tree.",
    )
    sub = parser.add_subparsers(dest="command")

    check = sub.add_parser(
        "check", help="lint PATHS (default: src) and exit 0 clean / 1 findings"
    )
    check.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="also gate warnings and stale baseline entries",
    )
    check.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file of grandfathered findings (absent file = empty)",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="record current findings into --baseline and exit 0",
    )
    check.add_argument(
        "--check",
        dest="only",
        metavar="ID",
        action="append",
        help="run only this checker id (repeatable)",
    )
    check.add_argument(
        "--json", action="store_true", help="emit the machine-readable report"
    )
    check.add_argument(
        "--quiet", action="store_true", help="suppress the report, keep the exit code"
    )

    sub.add_parser("checks", help="list the registered checkers")
    return parser


def _run_check(ns: argparse.Namespace) -> int:
    available = checker_classes()
    checkers = None
    if ns.only:
        unknown = sorted(set(ns.only) - set(available))
        if unknown:
            print(
                f"unknown checker id(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(available))})",
                file=sys.stderr,
            )
            return 2
        checkers = [available[check_id]() for check_id in sorted(set(ns.only))]

    baseline = Baseline.load(ns.baseline) if ns.baseline else None
    try:
        report = run_lint(ns.paths, checkers=checkers, baseline=baseline)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if ns.update_baseline:
        if not ns.baseline:
            print("--update-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        recorded = report.findings + report.baseline_suppressed
        Baseline.write(ns.baseline, recorded)
        if not ns.quiet:
            print(f"recorded {len(recorded)} finding(s) into {ns.baseline}")
        return 0

    if not ns.quiet:
        print(report.format_json() if ns.json else report.format_text())
    return report.exit_code(strict=ns.strict)


def _run_checks() -> int:
    for check_id, cls in sorted(checker_classes().items()):
        print(f"{check_id}: {cls.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args: List[str] = list(argv) if argv is not None else sys.argv[1:]
    parser = _build_parser()
    ns = parser.parse_args(args)
    if ns.command == "checks":
        return _run_checks()
    if ns.command == "check":
        return _run_check(ns)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
