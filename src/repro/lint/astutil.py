"""Shared AST helpers: import alias resolution and shadow-aware scoping.

The contract checkers keep asking the same two questions about a name:

* *what module-level object does this expression refer to?* —
  ``np.random.default_rng`` must resolve to ``numpy.random.default_rng``
  through the file's import aliases, whatever the alias is;
* *is the root name actually the imported module here, or a local that
  shadows it?* — ``random.words_per_cycle`` where ``random`` is a function
  parameter must **not** be mistaken for the stdlib RNG.

:class:`ScopedVisitor` answers both: it tracks the file's import map and a
stack of lexical scopes with their locally bound names (parameters, every
assignment target, nested def/class names — the same over-approximation
Python's own symbol table uses for locals), and exposes :meth:`resolve` for
dotted expressions.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set


def import_map(tree: ast.AST) -> Dict[str, str]:
    """Alias → dotted origin for every import in the module.

    ``import numpy as np`` → ``{"np": "numpy"}``; ``import os.path`` binds
    the *top* name (``{"os": "os"}``); ``from threading import Lock as L``
    → ``{"L": "threading.Lock"}``.  Star imports are ignored — nothing can
    be resolved through them statically.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports have no stable dotted origin
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname if alias.asname is not None else alias.name
                aliases[bound] = f"{node.module}.{alias.name}"
    return aliases


def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``["np", "random", "default_rng"]`` for a pure attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def bound_names(scope: ast.AST) -> Set[str]:
    """Names bound anywhere inside ``scope`` (its own parameters included).

    Deliberately over-approximate — nested defs and comprehension targets
    count too — because the only consumer is shadow detection, where a
    false "bound" merely skips a report, never invents one.
    """
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = scope.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            names.add(arg.arg)
    body = getattr(scope, "body", [])
    nodes = body if isinstance(body, list) else [body]
    for top in nodes:
        for node in ast.walk(top):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name.split(".", 1)[0])
    return names


class ScopedVisitor(ast.NodeVisitor):
    """AST visitor with an import map and a shadow-aware scope stack.

    Subclasses call :meth:`resolve` on expressions; the base class keeps the
    scope stack current across function/lambda/class boundaries.  Override
    ``visit_*`` as usual — but call ``self.generic_visit(node)`` (or
    ``super().visit_FunctionDef(node)`` for scope nodes) to keep walking.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.imports = import_map(tree)
        self._scopes: List[Set[str]] = []

    # ------------------------------------------------------------------ #
    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append(bound_names(node))
        try:
            self.generic_visit(node)
        finally:
            self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # ------------------------------------------------------------------ #
    def is_shadowed(self, name: str) -> bool:
        """Whether ``name`` is bound by any enclosing function scope."""
        return any(name in scope for scope in self._scopes)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted origin of an expression, through the import aliases.

        ``None`` when the expression is not a pure name chain, its root is
        not imported, or a local binding shadows the root.
        """
        parts = dotted_parts(node)
        if parts is None:
            return None
        root = parts[0]
        origin = self.imports.get(root)
        if origin is None or self.is_shadowed(root):
            return None
        return ".".join([origin, *parts[1:]])
