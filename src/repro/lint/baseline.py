"""The committed baseline: grandfathered findings that do not gate CI.

A baseline lets the linter land with teeth even when the tree is not yet
clean: every finding recorded in the baseline file is reported as
*suppressed* instead of failing the run, while anything new fails
immediately.  Entries match structurally — check id, path and message, but
**not** line numbers, which drift with unrelated edits.  Entries that no
longer match anything are *stale*: the debt was paid, and ``--strict``
fails until the baseline is re-recorded, so the file can only shrink.

This repo's goal state is an **empty baseline** (see ISSUE 10): intentional
deviations belong in inline pragmas with justifications, not here.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Tuple

from repro.lint.findings import Finding

#: Version tag of the baseline file format.
BASELINE_FORMAT = 1


class Baseline:
    """A multiset of grandfathered findings, matched structurally."""

    def __init__(self, findings: List[Finding] = None) -> None:  # type: ignore[assignment]
        self._counts: Dict[Tuple[str, str, str], int] = {}
        self._examples: Dict[Tuple[str, str, str], Finding] = {}
        for finding in findings or []:
            key = finding.baseline_key()
            self._counts[key] = self._counts.get(key, 0) + 1
            self._examples.setdefault(key, finding)
        self._remaining = dict(self._counts)

    def __len__(self) -> int:
        return sum(self._counts.values())

    # ------------------------------------------------------------------ #
    def absorb(self, finding: Finding) -> bool:
        """Consume one matching entry; True when the finding was baselined.

        Matching is a multiset operation: two identical findings in the
        tree need two baseline entries, so fixing one of them surfaces the
        other instead of hiding it forever.
        """
        key = finding.baseline_key()
        left = self._remaining.get(key, 0)
        if left <= 0:
            return False
        self._remaining[key] = left - 1
        return True

    def stale_entries(self) -> List[Finding]:
        """Entries that matched nothing this run (debt already paid)."""
        stale: List[Finding] = []
        for key, left in sorted(self._remaining.items()):
            if left > 0:
                stale.extend([self._examples[key]] * left)
        return stale

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (an absent file is an empty baseline)."""
        if not os.path.exists(path):
            return cls([])
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(
                f"{path!r} is not a lint baseline (expected a JSON object "
                "with a 'findings' list)"
            )
        return cls([Finding.from_dict(entry) for entry in payload["findings"]])

    @staticmethod
    def write(path: str, findings: List[Finding]) -> None:
        """Record ``findings`` as the new baseline, sorted and versioned."""
        payload = {
            "format": BASELINE_FORMAT,
            "findings": [
                f.to_dict() for f in sorted(findings, key=Finding.sort_key)
            ],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
