"""The built-in contract checkers.

Importing this package registers all six with :mod:`repro.lint.registry`
(each module applies the ``@register`` decorator at import time); the
registry imports it lazily, so ``repro.lint`` stays cheap to import.
"""

from repro.lint.checkers.backend_protocol import BackendProtocolChecker
from repro.lint.checkers.canonical_fields import CanonicalFieldsChecker
from repro.lint.checkers.determinism import DeterminismChecker
from repro.lint.checkers.event_schema import EventSchemaChecker
from repro.lint.checkers.lock_discipline import LockDisciplineChecker
from repro.lint.checkers.picklability import PicklabilityChecker

__all__ = [
    "BackendProtocolChecker",
    "CanonicalFieldsChecker",
    "DeterminismChecker",
    "EventSchemaChecker",
    "LockDisciplineChecker",
    "PicklabilityChecker",
]
