"""Backend-protocol conformance: subclasses honour the evaluate surface.

The backend registry hands out instances through ``get_backend(name)`` and
every consumer — the sweep runners, the batch evaluator, the fault
injector, the serving layer — calls the same two methods:

* ``evaluate(design, request) -> EvaluationResult``
* ``evaluate_many(items, with_artifacts=True) -> list[EvaluationResult]``

The built-ins are registered through a loop variable, so registration calls
are statically opaque; conformance is therefore keyed on *inheritance*: any
class that (transitively, within the linted files) derives from a base
named ``Backend`` is held to the protocol.

Checked, per subclass:

* ``evaluate`` is implemented by the class or an intermediate ancestor in
  the linted set (the root ``Backend.evaluate`` raises
  ``NotImplementedError`` — inheriting only that is not an implementation);
* an ``evaluate`` override is callable as ``evaluate(design, request)``:
  at most two required positionals after ``self``, room for two (or
  ``*args``), and no default-less keyword-only parameters;
* an ``evaluate_many`` override is callable as
  ``evaluate_many(items, with_artifacts=...)``: accepts one positional
  after ``self`` and a ``with_artifacts`` keyword (or ``**kwargs``);
* a literal ``name`` class attribute distinct from the abstract default —
  a *warning* only, since some wrappers name themselves in ``__init__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.findings import WARNING, Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: The protocol's root class name; matching is structural, by name.
BASE_NAME = "Backend"


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_root_backend(node: ast.ClassDef) -> bool:
    return node.name == BASE_NAME and BASE_NAME not in _base_names(node)


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _literal_name_attr(node: ast.ClassDef) -> Optional[str]:
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "name"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "name"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value
    return None


class _Signature:
    """The callable shape of a method, from its ``arguments`` node."""

    def __init__(self, fn: ast.FunctionDef) -> None:
        args = fn.args
        positional = [*args.posonlyargs, *args.args]
        defaults = len(args.defaults)
        self.required_positional = len(positional) - defaults
        self.positional_capacity = len(positional)
        self.has_var_positional = args.vararg is not None
        self.has_var_keyword = args.kwarg is not None
        self.kwonly = {arg.arg for arg in args.kwonlyargs}
        self.kwonly_without_default = {
            arg.arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is None
        }
        self.keyword_names = {arg.arg for arg in positional} | self.kwonly

    def accepts_positionals(self, n: int) -> bool:
        """Callable with ``n`` positional arguments after ``self``?"""
        n += 1  # self
        if self.required_positional > n:
            return False
        return self.positional_capacity >= n or self.has_var_positional

    def accepts_keyword(self, name: str) -> bool:
        return name in self.keyword_names or self.has_var_keyword


@register
class BackendProtocolChecker(Checker):
    """Backend subclasses structurally implement the evaluate surface."""

    id = "backend-protocol"
    description = (
        "classes deriving from Backend must implement evaluate(design, "
        "request) and keep evaluate_many(items, with_artifacts=...) callable"
    )

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        # Gather every class in the linted set, remembering its file.
        classes: Dict[str, ast.ClassDef] = {}
        owners: Dict[str, SourceFile] = {}
        for src in ctx.files:
            if src.tree is None:
                continue
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef) and node.name not in classes:
                    classes[node.name] = node
                    owners[node.name] = src

        root = classes.get(BASE_NAME)
        if root is None or not _is_root_backend(root):
            return ()  # protocol root not part of this lint run

        def reaches_backend(name: str, seen: Set[str]) -> bool:
            if name in seen:
                return False
            seen.add(name)
            node = classes.get(name)
            if node is None:
                return False
            for base in _base_names(node):
                if base == BASE_NAME or reaches_backend(base, seen):
                    return True
            return False

        def inherits_evaluate(name: str, seen: Set[str]) -> bool:
            """An ``evaluate`` override somewhere below the root base?"""
            if name in seen or name == BASE_NAME:
                return False
            seen.add(name)
            node = classes.get(name)
            if node is None:
                return False
            if "evaluate" in _methods(node):
                return True
            return any(inherits_evaluate(base, seen) for base in _base_names(node))

        findings: List[Finding] = []
        subclasses = sorted(
            (
                name
                for name in classes
                if name != BASE_NAME and reaches_backend(name, set())
            ),
            key=lambda name: (owners[name].path, classes[name].lineno),
        )
        for name in subclasses:
            node = classes[name]
            src = owners[name]
            methods = _methods(node)

            if not inherits_evaluate(name, set()):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"Backend subclass {name} never implements evaluate() "
                        "— every registry consumer calls it; the inherited "
                        "base raises NotImplementedError",
                    )
                )
            if "evaluate" in methods:
                sig = _Signature(methods["evaluate"])
                if not sig.accepts_positionals(2) or (
                    sig.kwonly_without_default
                ):
                    findings.append(
                        self.finding(
                            src,
                            methods["evaluate"],
                            f"{name}.evaluate is not callable as "
                            "evaluate(design, request) — consumers pass "
                            "exactly two positional arguments",
                        )
                    )
            if "evaluate_many" in methods:
                sig = _Signature(methods["evaluate_many"])
                problems = []
                if not sig.accepts_positionals(1):
                    problems.append("one positional items argument")
                if not sig.accepts_keyword("with_artifacts"):
                    problems.append("a with_artifacts keyword")
                leftovers = sig.kwonly_without_default - {"with_artifacts"}
                if leftovers:
                    problems.append(
                        "no extra required keyword-only parameters "
                        f"({', '.join(sorted(leftovers))})"
                    )
                if problems:
                    findings.append(
                        self.finding(
                            src,
                            methods["evaluate_many"],
                            f"{name}.evaluate_many must accept "
                            + " and ".join(problems)
                            + " to stay callable as evaluate_many(items, "
                            "with_artifacts=...)",
                        )
                    )
            literal = _literal_name_attr(node)
            if literal is None or literal == "abstract":
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"Backend subclass {name} declares no literal name "
                        "class attribute — registry listings show the "
                        "abstract placeholder",
                        severity=WARNING,
                    )
                )
        return findings
