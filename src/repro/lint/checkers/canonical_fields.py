"""Canonical-field discipline: record dicts stay within ``CANONICAL_FIELDS``.

``PointRecord.canonical()`` is the byte-identical projection the
determinism contract serialises; ``to_json_dict()`` is the checkpoint
payload built on top of it.  Any key written into one of these dicts that
is not a canonical field changes canonical bytes (breaking serial/parallel
parity) or silently drops on the ``from_json_dict`` round-trip.  Meta-only
data must go under ``record.meta`` — never as a sibling key.

This pass resolves the ``CANONICAL_FIELDS`` tuple from wherever it is
defined among the linted files (cross-module), then flags, per file, every
literal-key write into a local variable that was assigned from a
``.canonical()`` or ``.to_json_dict()`` call:

* ``payload = record.canonical(); payload["note"] = ...`` — flagged;
* ``payload["meta"] = ...`` — allowed (the one sanctioned extension);
* ``payload = record.to_json_dict(); payload["kind"] = "record"`` — allowed
  (the JSONL envelope tag the checkpoint layer adds);
* ``payload.update({"note": ...})`` — flagged too.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: Projection methods whose results are tracked, with their extra allowances.
_SOURCES: Dict[str, Tuple[str, ...]] = {
    "canonical": ("meta",),
    "to_json_dict": ("meta", "kind"),
}


def find_canonical_fields(ctx: LintContext) -> Optional[Set[str]]:
    """The ``CANONICAL_FIELDS`` literal among the linted files, if any."""
    for src in ctx.files:
        if src.tree is None:
            continue
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "CANONICAL_FIELDS"
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                fields = {
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
                if fields:
                    return fields
    return None


class _Visitor(ast.NodeVisitor):
    """Track canonical-dict locals per function scope and check writes."""

    def __init__(
        self, checker: "CanonicalFieldsChecker", src: SourceFile, fields: Set[str]
    ) -> None:
        self.checker = checker
        self.src = src
        self.fields = fields
        self.found: List[Finding] = []
        self._frames: List[Dict[str, str]] = [{}]

    # ------------------------------------------------------------------ #
    def _visit_scope(self, node: ast.AST) -> None:
        self._frames.append({})
        try:
            self.generic_visit(node)
        finally:
            self._frames.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_Lambda = _visit_scope

    def _kind_of(self, name: str) -> Optional[str]:
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None

    # ------------------------------------------------------------------ #
    def visit_Assign(self, node: ast.Assign) -> None:
        # `payload = record.canonical()` marks `payload` as tracked;
        # any other reassignment of the same name clears the mark.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            target = node.targets[0].id
            kind = None
            if (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in _SOURCES
            ):
                kind = node.value.func.attr
            if kind is not None:
                self._frames[-1][target] = kind
            else:
                self._frames[-1].pop(target, None)
        for target in node.targets:
            self._check_subscript_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_subscript_write(node.target)
        self.generic_visit(node)

    def _check_subscript_write(self, target: ast.AST) -> None:
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and isinstance(target.slice, ast.Constant)
            and isinstance(target.slice.value, str)
        ):
            return
        kind = self._kind_of(target.value.id)
        if kind is None:
            return
        self._check_key(target, kind, target.slice.value)

    def visit_Call(self, node: ast.Call) -> None:
        # `payload.update({...})` with literal keys.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Name)
        ):
            kind = self._kind_of(node.func.value.id)
            if kind is not None:
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        for key in arg.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                self._check_key(key, kind, key.value)
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        self._check_key(keyword, kind, keyword.arg)
        self.generic_visit(node)

    def _check_key(self, node: ast.AST, kind: str, key: str) -> None:
        if key in self.fields or key in _SOURCES[kind]:
            return
        allowed = ", ".join(repr(k) for k in _SOURCES[kind])
        self.found.append(
            self.checker.finding(
                self.src,
                node,
                f"key {key!r} written into a .{kind}() record dict is not in "
                f"CANONICAL_FIELDS (extra keys allowed here: {allowed}) — "
                "meta-only data belongs under record.meta",
            )
        )


@register
class CanonicalFieldsChecker(Checker):
    """Writes into canonical record dicts stay within CANONICAL_FIELDS."""

    id = "canonical-fields"
    description = (
        "keys written into .canonical()/.to_json_dict() record dicts must "
        "stay within CANONICAL_FIELDS (+meta/envelope)"
    )

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        fields = find_canonical_fields(ctx)
        if fields is None:
            return ()  # record module not part of this lint — nothing to hold
        findings: List[Finding] = []
        for src in ctx.files:
            if src.tree is None:
                continue
            visitor = _Visitor(self, src, fields)
            visitor.visit(src.tree)
            findings.extend(visitor.found)
        return findings
