"""Determinism checker: no wall clocks, no unseeded RNG in canonical paths.

The replay contract (byte-identical serial/parallel/replayed campaigns)
only holds while the canonical modules — the sweep engine, the fault
machinery, the compilation pipeline and the serving path — derive every
value that can reach canonical output from their inputs.  A stray
``time.time()`` or module-level ``random.random()`` breaks that silently:
tests pass, replay drifts.  This checker flags, inside the configured
module prefixes:

* **wall-clock reads** — ``time.time`` / ``time.time_ns`` and the
  ``datetime.now/utcnow/today`` family, whether called or referenced (a
  reference as a default ``clock=`` argument is still a wall-clock read at
  run time).  Monotonic pacing clocks (``time.monotonic``,
  ``time.perf_counter``) are deliberately allowed: they feed rates and
  timeouts, never canonical values;
* **unseeded RNG** — the module-level ``random.*`` functions (the shared
  global generator), ``random.Random()`` with no seed, bare
  ``numpy.random.default_rng()`` and the legacy ``numpy.random.*`` global
  API.  Seeded constructions (``random.Random(seed)``,
  ``default_rng(seed)``) pass.

Sanctioned sites — attribution stamps, injected clock seams, client-side
retry jitter — carry ``# repro: allow[determinism]`` pragmas with a one-line
justification each; that pragma list *is* the allowlist.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Sequence, Tuple

from repro.lint.astutil import ScopedVisitor
from repro.lint.findings import Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: Module prefixes whose code may feed canonical/replayed output.
DEFAULT_CANONICAL_PREFIXES: Tuple[str, ...] = (
    "repro.sweep",
    "repro.faults",
    "repro.pipeline",
    "repro.serve",
)

#: Wall-clock reads (flagged on reference, not just call: default-argument
#: seams like ``clock=time.time`` execute at call time).
WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level functions of the shared ``random`` global generator.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "betavariate",
        "gammavariate",
        "triangular",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
        "getrandbits",
        "randbytes",
        "seed",
    }
)


class _Visitor(ScopedVisitor):
    def __init__(self, checker: "DeterminismChecker", src: SourceFile) -> None:
        super().__init__(src.tree)
        self.checker = checker
        self.src = src
        self.found: List[Finding] = []
        self._call_funcs: set = set()

    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        self._call_funcs.add(id(node.func))
        origin = self.resolve(node.func)
        if origin is not None:
            self._check_rng_call(node, origin)
        self.generic_visit(node)

    def _check_rng_call(self, node: ast.Call, origin: str) -> None:
        if origin == "random.Random" and not node.args and not node.keywords:
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    "unseeded random.Random() — derive the seed from the "
                    "campaign/point identity so runs replay identically",
                )
            )
        elif origin.startswith("random.") and origin.rsplit(".", 1)[1] in GLOBAL_RANDOM_FUNCS:
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    f"{origin}() uses the shared global RNG — construct a "
                    "seeded random.Random(...) instead",
                )
            )
        elif origin == "numpy.random.default_rng" and not node.args and not node.keywords:
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    "numpy.random.default_rng() without a seed is entropy-"
                    "seeded — pass an explicit seed",
                )
            )
        elif origin.startswith("numpy.random.") and origin != "numpy.random.default_rng":
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    f"{origin}() uses numpy's legacy global RNG — use "
                    "numpy.random.default_rng(seed)",
                )
            )

    # ------------------------------------------------------------------ #
    def _check_clock(self, node: ast.AST) -> None:
        origin = self.resolve(node)
        if origin in WALL_CLOCKS:
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    f"wall-clock read {origin} in canonical module "
                    f"{self.src.module!r} — inject a clock (or pragma-allow "
                    "a sanctioned attribution site)",
                )
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self._check_clock(node)
        # Children of an already-inspected chain re-resolve to prefixes of
        # the same dotted name, which are never in the banned sets.
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # Catches `from time import time; ... time()` style references.
        if isinstance(node.ctx, ast.Load):
            self._check_clock(node)
        self.generic_visit(node)


@register
class DeterminismChecker(Checker):
    """No wall-clock reads or unseeded RNG in canonical modules."""

    id = "determinism"
    description = (
        "wall-clock reads and unseeded/global RNG are banned in replay-"
        "critical modules (sweep, faults, pipeline, serve)"
    )

    def __init__(self, prefixes: Sequence[str] = DEFAULT_CANONICAL_PREFIXES) -> None:
        self.prefixes = tuple(prefixes)

    def _in_scope(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.prefixes
        )

    def check_file(self, src: SourceFile, ctx: LintContext) -> Iterable[Finding]:
        if not self._in_scope(src.module):
            return ()
        visitor = _Visitor(self, src)
        visitor.visit(src.tree)
        return visitor.found
