"""Event-schema completeness: every ``RunEvent`` must round-trip everywhere.

The campaign event stream is consumed by three independent modules that
each maintain a *hand-written* enumeration of event kinds:

* the **event-log serializer/replayer** (:mod:`repro.sweep.eventlog`) maps
  kinds to classes in its ``_RECORD_EVENTS`` / ``_FLAT_EVENTS`` dicts — an
  unregistered event silently vanishes from persistence *and* replay
  (``event_from_payload`` rebuilds from the same maps);
* the **follow dispatcher** (``_EventLogTailer._consume`` in
  :mod:`repro.sweep.follow`) branches on the kind strings — an unhandled
  kind is silently dropped by cross-process tailers.

Nothing ties these enumerations to the dataclasses in
:mod:`repro.sweep.events`; PR 5 and PR 9 each had to update all three by
hand.  This cross-module pass closes the loop statically: it discovers the
``RunEvent`` subclasses (any module defining a class literally named
``RunEvent``), the serializer maps and the ``_consume`` dispatchers among
the linted files, and reports every event kind missing from either side.
Deliberately ignored kinds take an explicit no-op branch (self-documenting)
or a pragma at the class definition.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: The serializer registry names the eventlog module must keep complete.
SERIALIZER_MAPS = ("_RECORD_EVENTS", "_FLAT_EVENTS")


class _Event(NamedTuple):
    cls_name: str
    kind: str
    src: SourceFile
    node: ast.ClassDef


def _class_kind(node: ast.ClassDef) -> str:
    """The literal ``kind = "..."`` class attribute, or ''."""
    for stmt in node.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "kind"
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            return stmt.value.value
    return ""


def _event_classes(src: SourceFile) -> List[_Event]:
    """RunEvent subclasses (transitively, within the file), with kinds."""
    classes: Dict[str, ast.ClassDef] = {
        node.name: node
        for node in ast.walk(src.tree)
        if isinstance(node, ast.ClassDef)
    }
    if "RunEvent" not in classes:
        return []

    def reaches_runevent(name: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        node = classes.get(name)
        if node is None:
            return False
        for base in node.bases:
            if isinstance(base, ast.Name):
                if base.id == "RunEvent" or reaches_runevent(base.id, seen):
                    return True
        return False

    events: List[_Event] = []
    for name, node in classes.items():
        if name == "RunEvent" or not reaches_runevent(name, set()):
            continue
        events.append(_Event(name, _class_kind(node), src, node))
    events.sort(key=lambda e: e.node.lineno)
    return events


def _serializer_registrations(src: SourceFile) -> Tuple[Set[str], Set[str], bool]:
    """(kinds, class names) registered in the serializer maps, + presence."""
    kinds: Set[str] = set()
    names: Set[str] = set()
    present = False
    for node in ast.walk(src.tree):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id in SERIALIZER_MAPS
            and isinstance(node.value, ast.Dict)
        ):
            continue
        present = True
        for key, value in zip(node.value.keys, node.value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                kinds.add(key.value)
            if isinstance(value, ast.Name):
                names.add(value.id)
    return kinds, names, present


def _consume_kind_strings(src: SourceFile) -> Tuple[Set[str], bool]:
    """String constants inside ``_consume`` dispatcher methods, + presence."""
    strings: Set[str] = set()
    present = False
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "_consume"
            ):
                present = True
                for child in ast.walk(stmt):
                    if isinstance(child, ast.Constant) and isinstance(
                        child.value, str
                    ):
                        strings.add(child.value)
    return strings, present


@register
class EventSchemaChecker(Checker):
    """Every RunEvent registered in serializer, replay and follow."""

    id = "event-schema"
    description = (
        "every RunEvent dataclass must be registered in the event-log "
        "serializer/replay maps and handled by the follow dispatcher"
    )

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        events: List[_Event] = []
        for src in ctx.files:
            if src.tree is not None:
                events.extend(_event_classes(src))
        if not events:
            return ()

        serializer_kinds: Set[str] = set()
        serializer_names: Set[str] = set()
        serializer_files: List[str] = []
        follow_strings: Set[str] = set()
        follow_files: List[str] = []
        for src in ctx.files:
            if src.tree is None:
                continue
            kinds, names, present = _serializer_registrations(src)
            if present:
                serializer_kinds |= kinds
                serializer_names |= names
                serializer_files.append(src.path)
            strings, present = _consume_kind_strings(src)
            if present:
                follow_strings |= strings
                follow_files.append(src.path)

        findings: List[Finding] = []
        for event in events:
            if not event.kind:
                findings.append(
                    self.finding(
                        event.src,
                        event.node,
                        f"RunEvent subclass {event.cls_name} defines no literal "
                        "kind tag — observers and serializers dispatch on it",
                    )
                )
                continue
            # Serializer + replay: both read the same registry dicts, so one
            # membership test covers persistence and reconstruction.
            if serializer_files and (
                event.kind not in serializer_kinds
                or event.cls_name not in serializer_names
            ):
                findings.append(
                    self.finding(
                        event.src,
                        event.node,
                        f"{event.cls_name} (kind {event.kind!r}) is not "
                        "registered in the event-log serializer maps "
                        f"({'/'.join(SERIALIZER_MAPS)} in "
                        f"{', '.join(serializer_files)}) — events of this kind "
                        "would be lost by persistence and replay",
                    )
                )
            if follow_files and event.kind not in follow_strings:
                findings.append(
                    self.finding(
                        event.src,
                        event.node,
                        f"{event.cls_name} (kind {event.kind!r}) is not handled "
                        "by the follow dispatcher (_consume in "
                        f"{', '.join(follow_files)}) — add a branch (an explicit "
                        "no-op documents a deliberate ignore)",
                    )
                )
        return findings
