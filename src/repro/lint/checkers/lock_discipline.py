"""Lock discipline: attributes used under ``self._lock`` stay under it.

The serving layer and the analytic batch engine guard their shared state
with plain ``threading.Lock`` instances and ``with self._lock:`` blocks.
The failure mode is not a missing lock — it is *partial* locking: an
attribute carefully mutated under the lock in one method and then read or
written bare in another, which is exactly the race a stress test only
catches once a year.

This checker infers the protected set per class instead of asking for
annotations: for every class that assigns a ``threading.Lock`` /
``threading.RLock`` / ``threading.Condition`` to a ``self`` attribute, any
*other* ``self`` attribute touched inside a ``with self.<lock>:`` block is
considered lock-protected, and every access to it *outside* such a block —
in any method except ``__init__``, where the instance is not yet published
— is flagged.  ``asyncio`` locks are out of scope (single-threaded event
loop; different discipline).

Scope defaults to the concurrent modules (``repro.serve.*`` and the
analytic batch engine).  Deliberately unguarded attributes (immutable after
construction, monotonic counters read for display) stay out of the
protected set automatically as long as they are never touched under the
lock — mixing is what gets flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.astutil import import_map
from repro.lint.findings import Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: Modules held to the discipline by default (prefix or exact match).
DEFAULT_LOCK_SCOPES: Tuple[str, ...] = (
    "repro.serve",
    "repro.pipeline.analytic_batch",
)

#: Constructors whose result makes a ``self`` attribute a lock.
_LOCK_TYPES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)

#: Methods where bare access is sanctioned: the instance is unpublished.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _self_attr(node: ast.AST, self_name: str) -> str:
    """``self.x`` → ``"x"``; anything else → ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return ""


def _method_self(fn: ast.FunctionDef) -> str:
    args = [*fn.args.posonlyargs, *fn.args.args]
    for decorator in fn.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "staticmethod",
            "classmethod",
        ):
            return ""
    return args[0].arg if args else ""


class _MethodScan(ast.NodeVisitor):
    """Attribute accesses of one method, split by lock depth."""

    def __init__(self, self_name: str, lock_attrs: Set[str]) -> None:
        self.self_name = self_name
        self.lock_attrs = lock_attrs
        self.depth = 0
        #: attr → first access node, per side of the lock
        self.under: Dict[str, ast.AST] = {}
        self.bare: Dict[str, ast.AST] = {}
        self.bare_all: List[Tuple[str, ast.AST]] = []

    def visit_With(self, node: ast.With) -> None:
        holds = any(
            _self_attr(item.context_expr, self.self_name) in self.lock_attrs
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if holds:
            self.depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if holds:
            self.depth -= 1

    visit_AsyncWith = visit_With

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node, self.self_name)
        if attr and attr not in self.lock_attrs:
            if self.depth > 0:
                self.under.setdefault(attr, node)
            else:
                self.bare.setdefault(attr, node)
                self.bare_all.append((attr, node))
        self.generic_visit(node)


def _lock_attrs(cls: ast.ClassDef, imports: Dict[str, str]) -> Set[str]:
    """``self`` attributes assigned a threading lock anywhere in the class."""
    locks: Set[str] = set()
    for fn in ast.walk(cls):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = _method_self(fn)
        if not self_name:
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            func = node.value.func
            if isinstance(func, ast.Name):
                origin = imports.get(func.id, "")
            elif isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                origin = imports.get(func.value.id, func.value.id) + "." + func.attr
            else:
                continue
            if origin not in _LOCK_TYPES:
                continue
            for target in node.targets:
                attr = _self_attr(target, self_name)
                if attr:
                    locks.add(attr)
    return locks


@register
class LockDisciplineChecker(Checker):
    """Attributes touched under ``self._lock`` are never touched bare."""

    id = "lock-discipline"
    description = (
        "attributes accessed inside `with self._lock:` blocks must never be "
        "accessed outside them (except during __init__)"
    )

    def __init__(self, scopes: Sequence[str] = DEFAULT_LOCK_SCOPES) -> None:
        self.scopes = tuple(scopes)

    def _in_scope(self, module: str) -> bool:
        return any(
            module == scope or module.startswith(scope + ".")
            for scope in self.scopes
        )

    def check_file(self, src: SourceFile, ctx: LintContext) -> Iterable[Finding]:
        if not self._in_scope(src.module):
            return ()
        imports = import_map(src.tree)
        findings: List[Finding] = []
        for cls in ast.walk(src.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            locks = _lock_attrs(cls, imports)
            if not locks:
                continue
            # Pass 1: the protected set — every attr seen under a lock in
            # any method — and the bare accesses, kept per method.
            scans: List[Tuple[ast.FunctionDef, _MethodScan]] = []
            protected: Set[str] = set()
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                self_name = _method_self(fn)
                if not self_name:
                    continue
                scan = _MethodScan(self_name, locks)
                for stmt in fn.body:
                    scan.visit(stmt)
                protected |= set(scan.under)
                scans.append((fn, scan))
            if not protected:
                continue
            # Pass 2: bare accesses to protected attrs, construction aside.
            for fn, scan in scans:
                if fn.name in _CONSTRUCTION_METHODS:
                    continue
                reported: Set[str] = set()
                for attr, node in scan.bare_all:
                    if attr not in protected or attr in reported:
                        continue
                    reported.add(attr)
                    findings.append(
                        self.finding(
                            src,
                            node,
                            f"self.{attr} is lock-protected in {cls.name} "
                            "(accessed inside `with self._lock:` elsewhere) "
                            f"but touched without the lock in {fn.name}() — "
                            "hold the lock or take a snapshot under it",
                        )
                    )
        return findings
