"""Picklability: what crosses a process boundary must survive pickling.

``ProcessPoolRunner`` ships chunk payloads to workers through
:mod:`pickle`; the backend registry is re-materialised inside spawned
workers from registered *factories*.  Lambdas, closures and classes defined
inside functions pickle by qualified name — i.e. not at all — so passing
one to a pool submission site or registering one as a backend works until
the first spawn-context pool (or the first real distributed runner, see
ROADMAP) and then dies far from the definition.

Flagged, per file:

* a ``lambda`` argument to any ``<pool>.submit(...)`` call, or to
  ``<pool>.map(...)`` when the receiver looks like an executor;
* a function or class *defined inside a function* passed by name to those
  sites (closures capture frames; local classes have no importable name);
* the same two shapes as the factory argument of ``register_backend``.

Fork-inherited registries that never cross a pickle boundary are the one
sanctioned exception — pragma such sites with the justification.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import Checker, LintContext, register
from repro.lint.source import SourceFile

#: Receiver-name fragments that mark ``.map`` as a pool/executor call.
_EXECUTOR_HINTS = ("pool", "executor")


class _Visitor(ast.NodeVisitor):
    def __init__(self, checker: "PicklabilityChecker", src: SourceFile) -> None:
        self.checker = checker
        self.src = src
        self.found: List[Finding] = []
        #: name → "function"/"class" for defs nested inside functions,
        #: per enclosing function scope (module-level defs are picklable).
        self._local_defs: List[Dict[str, str]] = []

    # ------------------------------------------------------------------ #
    def _visit_function(self, node) -> None:
        if self._local_defs:
            self._local_defs[-1][node.name] = "function"
        self._local_defs.append({})
        try:
            self.generic_visit(node)
        finally:
            self._local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._local_defs:
            self._local_defs[-1][node.name] = "class"
        self.generic_visit(node)

    def _local_kind(self, name: str) -> str:
        for frame in reversed(self._local_defs):
            if name in frame:
                return frame[name]
        return ""

    # ------------------------------------------------------------------ #
    def _check_arg(self, node: ast.AST, where: str) -> None:
        if isinstance(node, ast.Lambda):
            self.found.append(
                self.checker.finding(
                    self.src,
                    node,
                    f"lambda passed to {where} cannot be pickled across a "
                    "process boundary — use a module-level function",
                )
            )
        elif isinstance(node, ast.Name):
            kind = self._local_kind(node.id)
            if kind:
                self.found.append(
                    self.checker.finding(
                        self.src,
                        node,
                        f"locally defined {kind} {node.id!r} passed to {where} "
                        "— nested definitions don't pickle; hoist it to module "
                        "level",
                    )
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "submit":
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    self._check_arg(arg, "a pool submission site (.submit)")
            elif func.attr == "map" and isinstance(func.value, ast.Name):
                receiver = func.value.id.lower()
                if any(hint in receiver for hint in _EXECUTOR_HINTS):
                    for arg in node.args:
                        self._check_arg(arg, "an executor .map call")
        terminal = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if terminal == "register_backend":
            factories = list(node.args[1:]) + [
                kw.value for kw in node.keywords if kw.arg in (None, "factory")
            ]
            for arg in factories:
                self._check_arg(arg, "register_backend (backend factory)")
        self.generic_visit(node)


@register
class PicklabilityChecker(Checker):
    """No lambdas/closures/local classes at pool or registry seams."""

    id = "picklability"
    description = (
        "pool submission sites and backend registration must receive "
        "module-level (picklable) callables"
    )

    def check_file(self, src: SourceFile, ctx: LintContext) -> Iterable[Finding]:
        visitor = _Visitor(self, src)
        visitor.visit(src.tree)
        return visitor.found
