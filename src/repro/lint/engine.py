"""The lint engine: collect files, run checkers, apply suppressions.

One :func:`run_lint` call is one conformance sweep: parse every file under
the given paths, run each registered checker's per-file pass, then the
cross-module ``finish`` passes, and fold the raw findings through the two
suppression layers — inline pragmas first (site-local, justified), then the
baseline (grandfathered).  The result is a :class:`LintReport` that knows
how to render itself for terminals and CI, and what exit code the run
earned under the sweep-diff convention (0 clean / 1 findings).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.findings import ERROR, Finding, severity_rank
from repro.lint.registry import Checker, LintContext, default_checkers
from repro.lint.source import SourceFile, collect_sources


@dataclass
class LintReport:
    """Everything one lint run produced, suppressed findings included."""

    findings: List[Finding] = field(default_factory=list)  #: active (gating)
    pragma_suppressed: List[Finding] = field(default_factory=list)
    baseline_suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[Finding] = field(default_factory=list)
    files: int = 0
    checkers: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> int:
        return len(self.findings) - self.errors

    def exit_code(self, strict: bool = False) -> int:
        """0 clean / 1 findings, per the sweep-diff convention.

        Errors always gate.  ``--strict`` additionally gates warnings and
        stale baseline entries (paid-off debt must leave the baseline), so
        a strict-clean tree is clean with an *empty* baseline.
        """
        if self.errors:
            return 1
        if strict and (self.findings or self.stale_baseline):
            return 1
        return 0

    # ------------------------------------------------------------------ #
    def format_text(self) -> str:
        """The human report: one finding per line plus a summary."""
        lines = [f.format() for f in self.findings]
        for finding in self.stale_baseline:
            lines.append(
                f"{finding.path}: [baseline] stale entry for [{finding.check}] "
                f"{finding.message!r} — fixed; remove it from the baseline"
            )
        summary = (
            f"{self.files} file(s): {self.errors} error(s), "
            f"{self.warnings} warning(s)"
        )
        extras = []
        if self.pragma_suppressed:
            extras.append(f"{len(self.pragma_suppressed)} pragma-suppressed")
        if self.baseline_suppressed:
            extras.append(f"{len(self.baseline_suppressed)} baselined")
        if self.stale_baseline:
            extras.append(f"{len(self.stale_baseline)} stale baseline entr(ies)")
        if extras:
            summary += " (" + ", ".join(extras) + ")"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        """The machine report (CI artifact, ``--json``)."""
        return {
            "format": 1,
            "files": self.files,
            "checkers": list(self.checkers),
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "pragma_suppressed": len(self.pragma_suppressed),
                "baseline_suppressed": len(self.baseline_suppressed),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_dict() for f in self.findings],
            "pragma_suppressed": [f.to_dict() for f in self.pragma_suppressed],
            "baseline_suppressed": [f.to_dict() for f in self.baseline_suppressed],
            "stale_baseline": [f.to_dict() for f in self.stale_baseline],
        }

    def format_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def _dedupe(findings: List[Finding]) -> List[Finding]:
    seen = set()
    unique: List[Finding] = []
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            unique.append(finding)
    return unique


def run_lint(
    paths: Sequence[str],
    checkers: Optional[Sequence[Checker]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint every python file under ``paths`` with ``checkers``.

    ``checkers`` defaults to the full registered set;  ``baseline`` to an
    empty one (every finding gates).  Pragma suppression consults the file
    the finding points at — cross-module findings are suppressible at the
    site they anchor to, like any other.
    """
    sources, syntax_findings = collect_sources(paths)
    active_checkers = list(checkers) if checkers is not None else default_checkers()
    ctx = LintContext(sources)

    raw: List[Finding] = list(syntax_findings)
    for checker in active_checkers:
        for src in sources:
            if src.tree is None:
                continue  # already reported as a syntax finding
            raw.extend(checker.check_file(src, ctx))
        raw.extend(checker.finish(ctx))
    raw = _dedupe(raw)
    raw.sort(key=lambda f: (severity_rank(f.severity), *f.sort_key()))

    by_path: Dict[str, SourceFile] = {src.path: src for src in sources}
    base = baseline if baseline is not None else Baseline([])
    report = LintReport(
        files=len(sources), checkers=[c.id for c in active_checkers]
    )
    for finding in raw:
        src = by_path.get(finding.path)
        if src is not None and src.pragmas.allows(finding.line, finding.check):
            report.pragma_suppressed.append(finding)
        elif base.absorb(finding):
            report.baseline_suppressed.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = base.stale_entries()
    return report
