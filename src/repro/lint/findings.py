"""The structured output of every lint pass: :class:`Finding` objects.

A finding pins one contract violation to a ``path:line:col`` location with
the check that produced it, a severity and a human-actionable message.
Findings are value objects: the engine sorts, deduplicates and serialises
them, the baseline matches them structurally (ignoring line numbers, which
drift), and the CLI renders them one per line in the classic
``path:line:col: [check] message`` compiler shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Severity levels, in increasing order of gravity.
WARNING = "warning"
ERROR = "error"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location."""

    check: str  #: stable check id (``determinism``, ``event-schema``, ...)
    path: str  #: file path, relative to the lint root when possible
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    message: str  #: what is wrong and what the contract expects
    severity: str = ERROR

    # ------------------------------------------------------------------ #
    @property
    def location(self) -> str:
        """``path:line:col`` — clickable in editors and CI logs."""
        return f"{self.path}:{self.line}:{self.col}"

    def format(self) -> str:
        """One CLI line: ``path:line:col: [check] severity: message``."""
        return f"{self.location}: [{self.check}] {self.severity}: {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable report order: by file, then position, then check id."""
        return (self.path, self.line, self.col, self.check)

    # ------------------------------------------------------------------ #
    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity a baseline entry matches on.

        Line and column are deliberately excluded: grandfathered findings
        must survive unrelated edits above them, so the baseline matches on
        *what* is wrong and *where* (file + message), not on exact offsets.
        """
        return (self.check, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        """JSON projection (the ``--json`` report and the baseline file)."""
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from its JSON projection (baseline loading)."""
        return cls(
            check=str(payload.get("check", "")),
            path=str(payload.get("path", "")),
            line=int(payload.get("line", 0) or 0),
            col=int(payload.get("col", 0) or 0),
            message=str(payload.get("message", "")),
            severity=str(payload.get("severity", ERROR)),
        )


def severity_rank(severity: str) -> int:
    """Sort rank of a severity (errors first, unknown last)."""
    return _SEVERITY_RANK.get(severity, len(_SEVERITY_RANK))
