"""Inline suppression: ``# repro: allow[check-id] justification``.

A pragma comment acknowledges one *intentional* contract deviation at one
site — the attribution stamps that legitimately read the wall clock, the
fork-inherited backend factory that never crosses a pickle boundary.  The
syntax is deliberately narrow:

* ``# repro: allow[determinism]`` — suppress one check on this line;
* ``# repro: allow[determinism,picklability]`` — several checks;
* ``# repro: allow[*]`` — every check (discouraged; reviewers should see
  exactly which contract is being waived);
* everything after the closing bracket is the justification, which the
  satellite convention requires to be non-empty.

A trailing pragma covers the physical line it sits on.  A *standalone*
pragma (a line containing only the comment) covers the next line instead,
for sites whose statement line has no room — decorated defs, long
signatures.  Comments are found with :mod:`tokenize`, so a pragma-shaped
string literal never suppresses anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, List, NamedTuple

_PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<checks>[^\]]*)\]\s*(?P<why>.*)$"
)


class Pragma(NamedTuple):
    """One parsed suppression comment."""

    line: int  #: line the comment sits on
    checks: FrozenSet[str]  #: suppressed check ids ("*" = all)
    justification: str  #: free text after the bracket
    standalone: bool  #: comment-only line (covers the next line)


def parse_pragmas(text: str) -> List[Pragma]:
    """Every ``repro: allow`` pragma in ``text``, via the tokenizer."""
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return pragmas  # unparseable source produces a syntax finding anyway
    lines = text.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(token.string)
        if match is None:
            continue
        checks = frozenset(
            part.strip() for part in match.group("checks").split(",") if part.strip()
        )
        if not checks:
            continue
        line_no = token.start[0]
        source_line = lines[line_no - 1] if line_no - 1 < len(lines) else ""
        standalone = source_line.strip().startswith("#")
        pragmas.append(
            Pragma(
                line=line_no,
                checks=checks,
                justification=match.group("why").strip(),
                standalone=standalone,
            )
        )
    return pragmas


class PragmaMap:
    """Line → suppressed-checks lookup for one source file."""

    def __init__(self, text: str) -> None:
        self.pragmas = parse_pragmas(text)
        self._by_line: Dict[int, FrozenSet[str]] = {}
        for pragma in self.pragmas:
            # A trailing pragma covers its own line; a standalone pragma
            # covers the statement on the next line.
            covered = pragma.line + 1 if pragma.standalone else pragma.line
            merged = self._by_line.get(covered, frozenset()) | pragma.checks
            self._by_line[covered] = merged

    def allows(self, line: int, check: str) -> bool:
        """Whether a finding of ``check`` on ``line`` is suppressed."""
        checks = self._by_line.get(line)
        if not checks:
            return False
        return "*" in checks or check in checks
