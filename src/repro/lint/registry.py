"""The pluggable checker registry.

A checker is a class with a stable ``id``, a one-line ``description`` and
two hooks: :meth:`Checker.check_file` runs once per parsed file,
:meth:`Checker.finish` runs once after every file has been seen — the seam
for cross-module passes (event-schema completeness resolves the event
classes, the serializer maps and the follow dispatcher from *different*
files).  Checkers register with the :func:`register` decorator; importing
:mod:`repro.lint.checkers` fills the registry with the built-in six.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Type

from repro.lint.findings import ERROR, Finding
from repro.lint.source import SourceFile


class LintContext:
    """What every checker sees: all files of the run, indexed by module."""

    def __init__(self, files: List[SourceFile]) -> None:
        self.files = files
        self.by_module: Dict[str, SourceFile] = {f.module: f for f in files}

    def modules_ending(self, suffix: str) -> List[SourceFile]:
        """Files whose dotted module name ends with ``suffix``."""
        return [
            f
            for f in self.files
            if f.module == suffix or f.module.endswith("." + suffix)
        ]


class Checker:
    """Base class: override ``check_file`` and/or ``finish``."""

    id: str = ""
    description: str = ""
    severity: str = ERROR

    def check_file(self, src: SourceFile, ctx: LintContext) -> Iterable[Finding]:
        """Per-file pass; yields findings for ``src``."""
        return ()

    def finish(self, ctx: LintContext) -> Iterable[Finding]:
        """Cross-module pass, after every file was offered to check_file."""
        return ()

    # ------------------------------------------------------------------ #
    def finding(
        self, src: SourceFile, node, message: str, severity: str = None  # type: ignore[assignment]
    ) -> Finding:
        """Convenience constructor anchored at an AST node of ``src``."""
        return Finding(
            check=self.id,
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=severity if severity is not None else self.severity,
        )


_REGISTRY: Dict[str, Type[Checker]] = {}


def register(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator: add a checker to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} has no id")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate checker id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def checker_classes() -> Dict[str, Type[Checker]]:
    """The registered checkers, keyed by id (built-ins import on demand)."""
    import repro.lint.checkers  # noqa: F401  — fills the registry

    return dict(_REGISTRY)


def default_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, in id order."""
    return [cls() for _, cls in sorted(checker_classes().items())]
