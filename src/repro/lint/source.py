"""Parsed source files: the unit every checker operates on.

A :class:`SourceFile` bundles the path (as given, for findings), the dotted
module name (derived from the package layout on disk, so path-scoped checks
like determinism can match ``repro.sweep.*`` without importing anything),
the parsed AST and the file's pragma map.  Collection walks directories for
``*.py``, skipping caches and hidden trees; syntax errors become findings
rather than crashes, so one broken file cannot hide the rest of the report.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.lint.findings import ERROR, Finding
from repro.lint.pragmas import PragmaMap

_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", ".ruff_cache"}


def module_name_for(path: str) -> str:
    """The dotted module a file would import as, from ``__init__.py`` layout.

    Walks upward while parent directories are packages, so
    ``src/repro/sweep/events.py`` → ``repro.sweep.events`` regardless of
    where the lint was invoked from.  A stray file outside any package is
    just its stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = os.path.splitext(filename)[0]
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    return ".".join(reversed(parts)) if parts else stem


@dataclass
class SourceFile:
    """One parsed python file, ready for per-file and cross-module passes."""

    path: str  #: path as reported in findings (relative when possible)
    module: str  #: dotted module name derived from the package layout
    text: str
    tree: Optional[ast.AST]
    pragmas: PragmaMap = field(repr=False, default=None)  # type: ignore[assignment]

    @classmethod
    def load(cls, path: str, display: Optional[str] = None) -> Tuple["SourceFile", Optional[Finding]]:
        """Parse ``path``; returns the file plus a syntax finding when broken."""
        shown = display if display is not None else path
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        finding: Optional[Finding] = None
        try:
            tree: Optional[ast.AST] = ast.parse(text, filename=shown)
        except SyntaxError as exc:
            tree = None
            finding = Finding(
                check="syntax",
                path=shown,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
                severity=ERROR,
            )
        src = cls(
            path=shown,
            module=module_name_for(path),
            text=text,
            tree=tree,
            pragmas=PragmaMap(text),
        )
        return src, finding


def _display_path(path: str) -> str:
    """Relative-to-cwd when that is shorter and does not escape upward."""
    rel = os.path.relpath(path)
    return path if rel.startswith("..") else rel


def collect_sources(paths: Sequence[str]) -> Tuple[List[SourceFile], List[Finding]]:
    """Load every python file under ``paths`` (files or directories).

    Returns the parsed files in a deterministic order plus the syntax
    findings for files that failed to parse.  Missing paths raise — a typo
    on the CLI should not silently lint nothing.
    """
    seen = set()
    file_paths: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        elif os.path.isdir(path):
            candidates = []
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in _SKIP_DIRS and not d.startswith(".")
                )
                candidates.extend(
                    os.path.join(root, name)
                    for name in sorted(names)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for candidate in candidates:
            real = os.path.abspath(candidate)
            if real not in seen:
                seen.add(real)
                file_paths.append(candidate)
    sources: List[SourceFile] = []
    findings: List[Finding] = []
    for path in file_paths:
        src, finding = SourceFile.load(path, display=_display_path(path))
        sources.append(src)
        if finding is not None:
            findings.append(finding)
    return sources, findings
