"""MP-Stream-style memory micro-benchmarks for the DRAM model.

The paper motivates Smache with the observation (backed by the authors' own
MP-Stream benchmark, reference [11]) that stalling a DRAM stream or reverting
to random accesses costs a large fraction of the sustained bandwidth.  This
package provides the equivalent measurement for the reproduction's DRAM
substrate: drive the :class:`repro.memory.dram.DRAMModel` with different
access patterns (contiguous, strided, random, stencil-gather, mixed
read/write) and report the sustained words-per-cycle and effective bandwidth
each pattern achieves.

It serves two purposes: it documents the memory behaviour every simulated
result in this repository rests on, and it reproduces the *motivation*
experiment shape — contiguous streaming is the only pattern that sustains the
full interface rate once non-burst accesses carry a realistic penalty.
"""

from repro.membench.patterns import AccessPattern, generate_pattern
from repro.membench.runner import BandwidthResult, measure_pattern, run_membench

__all__ = [
    "AccessPattern",
    "generate_pattern",
    "BandwidthResult",
    "measure_pattern",
    "run_membench",
]
