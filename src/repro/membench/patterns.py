"""Access-pattern generators for the memory micro-benchmark."""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from repro.utils.validation import check_positive


class AccessPattern(enum.Enum):
    """The access patterns measured by the benchmark."""

    #: addresses 0, 1, 2, ... (an open burst — the Smache stream)
    CONTIGUOUS = "contiguous"
    #: constant stride > 1 (column walks, interleaved arrays)
    STRIDED = "strided"
    #: uniformly random addresses (pointer chasing, hash tables)
    RANDOM = "random"
    #: the naive stencil gather: for each point, its neighbour addresses
    #: (the baseline design's read stream)
    STENCIL_GATHER = "stencil-gather"
    #: contiguous reads regularly interrupted by writes to a second region
    #: through the same port (a naive read-modify-write loop)
    INTERLEAVED_RW = "interleaved-rw"


def generate_pattern(
    pattern: AccessPattern,
    n_accesses: int,
    region_words: int,
    stride: int = 8,
    row_width: int = 64,
    seed: int = 0,
) -> List[int]:
    """Generate the address trace for one pattern.

    Parameters
    ----------
    pattern:
        Which access pattern to generate.
    n_accesses:
        Length of the trace.
    region_words:
        Size of the address region the trace stays within.
    stride:
        Stride (in words) for the ``STRIDED`` pattern.
    row_width:
        Grid row width used by the ``STENCIL_GATHER`` pattern.
    seed:
        Seed for the ``RANDOM`` pattern.
    """
    check_positive("n_accesses", n_accesses)
    check_positive("region_words", region_words)
    if pattern is AccessPattern.CONTIGUOUS:
        return [i % region_words for i in range(n_accesses)]
    if pattern is AccessPattern.STRIDED:
        check_positive("stride", stride)
        return [(i * stride) % region_words for i in range(n_accesses)]
    if pattern is AccessPattern.RANDOM:
        rng = np.random.default_rng(seed)
        return list(rng.integers(0, region_words, size=n_accesses))
    if pattern is AccessPattern.STENCIL_GATHER:
        check_positive("row_width", row_width)
        trace: List[int] = []
        point = 0
        offsets = (-row_width, -1, 1, row_width)
        while len(trace) < n_accesses:
            for off in offsets:
                trace.append((point + off) % region_words)
                if len(trace) >= n_accesses:
                    break
            point = (point + 1) % region_words
        return trace
    if pattern is AccessPattern.INTERLEAVED_RW:
        # handled by the runner (write addresses interleaved with reads); the
        # read half is contiguous
        return [i % region_words for i in range(n_accesses)]
    raise ValueError(f"unhandled pattern {pattern}")  # pragma: no cover
