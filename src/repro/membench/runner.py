"""Drive the DRAM model with an address trace and measure sustained bandwidth."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.membench.patterns import AccessPattern, generate_pattern
from repro.memory.dram import DRAMCommand, DRAMModel, DRAMTiming
from repro.sim.engine import Simulator
from repro.utils.tables import format_table


@dataclass(frozen=True)
class BandwidthResult:
    """Sustained throughput of one access pattern."""

    pattern: AccessPattern
    accesses: int
    cycles: int
    word_bytes: int

    @property
    def words_per_cycle(self) -> float:
        """Sustained words transferred per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.accesses / self.cycles

    def bandwidth_mbps(self, frequency_mhz: float) -> float:
        """Effective bandwidth in MB/s at the given memory-interface clock."""
        return self.words_per_cycle * self.word_bytes * frequency_mhz

    @property
    def efficiency(self) -> float:
        """Fraction of the peak (one word per cycle) the pattern sustains."""
        return min(1.0, self.words_per_cycle)


def measure_pattern(
    pattern: AccessPattern,
    n_accesses: int = 4096,
    region_words: int = 8192,
    timing: Optional[DRAMTiming] = None,
    stride: int = 8,
    row_width: int = 64,
    seed: int = 0,
    write_fraction: float = 0.25,
) -> BandwidthResult:
    """Measure the sustained rate of one access pattern on the DRAM model."""
    timing = timing or DRAMTiming(random_access_cycles=4, row_miss_penalty=8, row_words=512)
    sim = Simulator("membench")
    dram = DRAMModel(sim, size_words=2 * region_words, timing=timing, shared_bus=True)
    dram.preload(0, np.arange(region_words))

    trace = generate_pattern(
        pattern, n_accesses, region_words, stride=stride, row_width=row_width, seed=seed
    )
    interleave_writes = pattern is AccessPattern.INTERLEAVED_RW
    write_every = max(2, int(round(1.0 / write_fraction))) if interleave_writes else 0

    issued = 0
    completed = 0
    writes_issued = 0
    while completed < n_accesses:
        if issued < n_accesses:
            if interleave_writes and write_every and issued % write_every == write_every - 1:
                if dram.write_cmd.can_push():
                    dram.write_cmd.push(
                        DRAMCommand(
                            kind="write",
                            addr=region_words + (writes_issued % region_words),
                            data=1.0,
                        )
                    )
                    writes_issued += 1
            if dram.read_cmd.can_push():
                dram.read_cmd.push(DRAMCommand(kind="read", addr=int(trace[issued])))
                issued += 1
        while dram.read_rsp.can_pop():
            dram.read_rsp.pop()
            completed += 1
        sim.step()
        if sim.cycle > 200 * n_accesses:
            raise RuntimeError(f"membench pattern {pattern} did not complete")
    total_accesses = n_accesses + writes_issued
    return BandwidthResult(
        pattern=pattern,
        accesses=total_accesses,
        cycles=sim.cycle,
        word_bytes=dram.word_bytes,
    )


@dataclass
class MembenchReport:
    """Results of the full pattern sweep."""

    results: List[BandwidthResult] = field(default_factory=list)
    frequency_mhz: float = 200.0

    def by_pattern(self) -> Dict[AccessPattern, BandwidthResult]:
        """Index the results by pattern."""
        return {r.pattern: r for r in self.results}

    def contiguous_advantage(self) -> float:
        """Sustained-rate ratio of contiguous streaming over random access."""
        table = self.by_pattern()
        random = table.get(AccessPattern.RANDOM)
        contiguous = table.get(AccessPattern.CONTIGUOUS)
        if not random or not contiguous or random.words_per_cycle == 0:
            return 0.0
        return contiguous.words_per_cycle / random.words_per_cycle

    def format(self) -> str:
        """Text table of the sweep (the MP-Stream-style view)."""
        headers = ["pattern", "accesses", "cycles", "words/cycle", "efficiency", "MB/s"]
        rows = [
            [
                r.pattern.value,
                r.accesses,
                r.cycles,
                round(r.words_per_cycle, 3),
                f"{r.efficiency:.1%}",
                round(r.bandwidth_mbps(self.frequency_mhz), 1),
            ]
            for r in self.results
        ]
        return format_table(headers, rows, title="Memory micro-benchmark (MP-Stream style)")


def run_membench(
    patterns: Sequence[AccessPattern] = tuple(AccessPattern),
    n_accesses: int = 4096,
    timing: Optional[DRAMTiming] = None,
    frequency_mhz: float = 200.0,
) -> MembenchReport:
    """Measure every requested pattern and return the combined report."""
    report = MembenchReport(frequency_mhz=frequency_mhz)
    for pattern in patterns:
        report.results.append(
            measure_pattern(pattern, n_accesses=n_accesses, timing=timing)
        )
    return report
