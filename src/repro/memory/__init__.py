"""Memory substrates: DRAM, block RAM and register files.

The DRAM model is the external memory the paper streams from; BRAM and
register-file models provide FPGA-like port semantics for the on-chip buffers
so that the architecture models can *demonstrate* (not just assert) that the
hybrid stream buffer never needs more than one concurrent read per BRAM
segment.
"""

from repro.memory.dram import DRAMModel, DRAMTiming, DRAMCommand, DRAMResponse
from repro.memory.bram import BRAMModel, PortConflictError
from repro.memory.regfile import RegisterFile

__all__ = [
    "DRAMModel",
    "DRAMTiming",
    "DRAMCommand",
    "DRAMResponse",
    "BRAMModel",
    "PortConflictError",
    "RegisterFile",
]
