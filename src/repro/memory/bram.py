"""On-chip block RAM (BRAM / M20K-style) model.

The functional behaviour is a plain word array; what matters for the
reproduction is the *port discipline*: a simple dual-port BRAM supports one
read and one write per cycle.  The paper's hybrid stream buffer is designed so
the BRAM-resident part of the window only ever needs a single sequential read
per cycle — :class:`BRAMModel` enforces that claim at simulation time by
raising :class:`PortConflictError` if an architecture model ever exceeds the
port budget within one cycle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.utils.validation import check_non_negative, check_positive


class PortConflictError(RuntimeError):
    """An architecture model exceeded the BRAM's per-cycle port budget."""


class BRAMModel:
    """A synchronous word-wide memory with a per-cycle port budget."""

    def __init__(
        self,
        name: str,
        depth: int,
        word_bits: int = 32,
        read_ports: int = 1,
        write_ports: int = 1,
    ) -> None:
        check_positive("depth", depth)
        check_positive("word_bits", word_bits)
        check_positive("read_ports", read_ports)
        check_non_negative("write_ports", write_ports)
        self.name = name
        self.depth = depth
        self.word_bits = word_bits
        self.read_ports = read_ports
        self.write_ports = write_ports
        self.storage = np.zeros(depth, dtype=np.float64)

        self._cycle: Optional[int] = None
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0

        self.total_reads = 0
        self.total_writes = 0
        self.max_reads_in_cycle = 0
        self.max_writes_in_cycle = 0

    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Storage capacity in bits (used by the resource model)."""
        return self.depth * self.word_bits

    def _advance(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._reads_this_cycle = 0
            self._writes_this_cycle = 0

    # ------------------------------------------------------------------ #
    def read(self, addr: int, cycle: int) -> float:
        """Read one word; counts against the cycle's read-port budget."""
        self._advance(cycle)
        if self._reads_this_cycle >= self.read_ports:
            raise PortConflictError(
                f"BRAM '{self.name}': more than {self.read_ports} read(s) in cycle {cycle}"
            )
        if not (0 <= addr < self.depth):
            raise IndexError(f"BRAM '{self.name}' read address {addr} out of range")
        self._reads_this_cycle += 1
        self.total_reads += 1
        self.max_reads_in_cycle = max(self.max_reads_in_cycle, self._reads_this_cycle)
        return float(self.storage[addr])

    def write(self, addr: int, data: float, cycle: int) -> None:
        """Write one word; counts against the cycle's write-port budget."""
        self._advance(cycle)
        if self._writes_this_cycle >= self.write_ports:
            raise PortConflictError(
                f"BRAM '{self.name}': more than {self.write_ports} write(s) in cycle {cycle}"
            )
        if not (0 <= addr < self.depth):
            raise IndexError(f"BRAM '{self.name}' write address {addr} out of range")
        self._writes_this_cycle += 1
        self.total_writes += 1
        self.max_writes_in_cycle = max(self.max_writes_in_cycle, self._writes_this_cycle)
        self.storage[addr] = data

    # ------------------------------------------------------------------ #
    def fill(self, values) -> None:
        """Load contents directly (configuration/warm-up helper, no port cost)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size > self.depth:
            raise ValueError("fill data larger than the BRAM")
        self.storage[: values.size] = values

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.storage[:] = 0.0
        self._cycle = None
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0
        self.total_reads = 0
        self.total_writes = 0
        self.max_reads_in_cycle = 0
        self.max_writes_in_cycle = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BRAMModel({self.name!r}, depth={self.depth}, {self.word_bits}b)"


class BRAMFifo:
    """A FIFO built on top of a :class:`BRAMModel` (one window segment).

    This is how the bulk of the hybrid stream buffer is realised: a circular
    FIFO that performs at most one read and one write per cycle.
    """

    def __init__(self, name: str, depth: int, word_bits: int = 32) -> None:
        self.bram = BRAMModel(name, depth=max(1, depth), word_bits=word_bits)
        self.depth = depth
        self._head = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        """True when the FIFO holds ``depth`` items."""
        return self._count >= self.depth

    def push(self, value: float, cycle: int) -> Optional[float]:
        """Push a value; if full, the oldest value is popped and returned.

        This shift-through behaviour is exactly what the window buffer needs:
        one write plus at most one read per cycle.
        """
        evicted: Optional[float] = None
        if self.depth == 0:
            return value
        if self.full:
            evicted = self.bram.read(self._head, cycle)
            self.bram.write(self._head, value, cycle)
            self._head = (self._head + 1) % self.depth
        else:
            tail = (self._head + self._count) % self.depth
            self.bram.write(tail, value, cycle)
            self._count += 1
        return evicted

    def reset(self) -> None:
        """Clear the FIFO."""
        self.bram.reset()
        self._head = 0
        self._count = 0
