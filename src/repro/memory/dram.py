"""Off-chip DRAM model.

The model captures the property the paper's whole argument rests on: DRAM
delivers one word per cycle as long as accesses are *contiguous* (an open
burst), while breaking the access pattern costs extra cycles (command
overhead, and optionally a row-activation penalty used by the sensitivity
ablation).  It also counts traffic, which is how the paper's Figure 2 "DRAM
Traffic (KB)" column is produced.

Structure
---------
A :class:`DRAMModel` owns the backing storage (a NumPy array of words) and two
ports:

* a **read port** — commands in, responses out, in order;
* a **write port** — commands in, completion counted.

With ``shared_bus=True`` both ports are served by a single internal server
(one transaction at a time, round-robin), which is how the naive baseline
master drives memory.  With ``shared_bus=False`` (the Smache configuration)
reads and writes proceed concurrently, modelling independent AXI read/write
channels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np
from collections import deque

from repro.sim.channel import Channel
from repro.sim.engine import Component, Simulator
from repro.utils.validation import check_non_negative, check_positive

#: Default depth of the in-flight read window (response re-ordering buffer).
#: The analytic performance model mirrors this limit when predicting stream
#: throughput, so keep the two in sync through this constant.
DEFAULT_RESPONSE_CAPACITY = 8


@dataclass(frozen=True)
class DRAMTiming:
    """Timing parameters of the DRAM model (all in cycles)."""

    #: Cycles per word when the access continues an open burst (sequential).
    stream_word_cycles: int = 1
    #: Cycles per access that does not continue a burst (command overhead).
    random_access_cycles: int = 1
    #: Pipeline latency from accepting a read to the data appearing.
    read_latency: int = 4
    #: Words per DRAM row (only used when ``row_miss_penalty`` > 0).
    row_words: int = 512
    #: Extra cycles when an access lands in a different row than the previous
    #: access on the same port (models row activate/precharge; 0 by default so
    #: the shipped configuration matches the paper's simulation counting).
    row_miss_penalty: int = 0

    def __post_init__(self) -> None:
        check_positive("stream_word_cycles", self.stream_word_cycles)
        check_positive("random_access_cycles", self.random_access_cycles)
        check_non_negative("read_latency", self.read_latency)
        check_positive("row_words", self.row_words)
        check_non_negative("row_miss_penalty", self.row_miss_penalty)


@dataclass(frozen=True)
class DRAMCommand:
    """One memory command."""

    kind: str  # "read" or "write"
    addr: int
    data: float = 0.0
    tag: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"unknown DRAM command kind {self.kind!r}")


@dataclass(frozen=True)
class DRAMResponse:
    """Read data returned by the DRAM."""

    addr: int
    data: float
    tag: int = 0


class _Port:
    """Internal per-port state: burst tracking and an absolute free time.

    ``free_at`` is the first cycle at which the port can start a new access.
    Absolute times (rather than a per-tick countdown) make a busy wait a
    *dead* region for the fast engine: nothing about the port changes until
    ``free_at``, so the simulator can batch-advance the clock over it.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.free_at = 0
        self.last_addr: Optional[int] = None
        self.current: Optional[DRAMCommand] = None

    def reset(self) -> None:
        self.free_at = 0
        self.last_addr = None
        self.current = None


class DRAMModel(Component):
    """Cycle-level DRAM with burst-aware timing and traffic counters."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dram",
        size_words: int = 1 << 20,
        word_bytes: int = 4,
        timing: Optional[DRAMTiming] = None,
        shared_bus: bool = False,
        read_cmd_capacity: int = 4,
        response_capacity: int = DEFAULT_RESPONSE_CAPACITY,
    ) -> None:
        super().__init__(sim, name)
        check_positive("size_words", size_words)
        check_positive("word_bytes", word_bytes)
        self.size_words = size_words
        self.word_bytes = word_bytes
        self.timing = timing or DRAMTiming()
        self.shared_bus = shared_bus

        self.storage = np.zeros(size_words, dtype=np.float64)

        #: Read commands from the system to the DRAM.
        self.read_cmd: Channel = self.channel("read_cmd", read_cmd_capacity)
        #: Read responses, strictly in command order.
        self.read_rsp: Channel = self.channel("read_rsp", response_capacity)
        #: Write commands.
        self.write_cmd: Channel = self.channel("write_cmd", read_cmd_capacity)

        self._read_port = _Port("read")
        self._write_port = _Port("write")
        self._inflight_reads: Deque[Tuple[int, DRAMResponse]] = deque()

        # statistics
        self.words_read = 0
        self.words_written = 0
        self.sequential_accesses = 0
        self.random_accesses = 0
        self.row_misses = 0
        self.writes_completed = 0
        self._arbiter_turn = 0  # round-robin pointer for the shared bus
        # busy accounting is interval-based (see _account_busy): every access
        # contributes its occupancy interval up front, so batch-advancing the
        # clock over a busy wait loses no cycles.
        self._busy_accum = 0
        self._busy_union_until = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def preload(self, base: int, values: np.ndarray) -> None:
        """Write ``values`` directly into the backing store (no cycles, no traffic)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if base < 0 or base + values.size > self.size_words:
            raise ValueError("preload region outside the DRAM")
        self.storage[base : base + values.size] = values

    def snapshot(self, base: int, count: int) -> np.ndarray:
        """Copy ``count`` words starting at ``base`` out of the backing store."""
        if base < 0 or base + count > self.size_words:
            raise ValueError("snapshot region outside the DRAM")
        return self.storage[base : base + count].copy()

    @property
    def bytes_read(self) -> int:
        """Total bytes transferred out of the DRAM."""
        return self.words_read * self.word_bytes

    @property
    def bytes_written(self) -> int:
        """Total bytes transferred into the DRAM."""
        return self.words_written * self.word_bytes

    @property
    def total_traffic_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.storage[:] = 0.0
        self._read_port.reset()
        self._write_port.reset()
        self._inflight_reads.clear()
        self.words_read = 0
        self.words_written = 0
        self.sequential_accesses = 0
        self.random_accesses = 0
        self.row_misses = 0
        self.writes_completed = 0
        self._arbiter_turn = 0
        self._busy_accum = 0
        self._busy_union_until = 0

    def finished(self) -> bool:
        return (
            not self._inflight_reads
            and self.cycle >= self._read_port.free_at
            and self.cycle >= self._write_port.free_at
        )

    # ------------------------------------------------------------------ #
    # timing
    # ------------------------------------------------------------------ #
    @property
    def busy_cycles(self) -> int:
        """Cycles (so far) where at least one port was serving an access."""
        return self._busy_accum - max(0, self._busy_union_until - self.sim.cycle)

    def _account_busy(self, start: int, end: int) -> None:
        """Add the busy interval ``(start, end]`` to the union accumulator.

        Intervals always begin at the current cycle, so the union of the two
        ports' intervals is contiguous at the tail and one high-water mark
        (``_busy_union_until``) suffices to avoid double counting.
        """
        counted_from = max(start, self._busy_union_until)
        if end > counted_from:
            self._busy_accum += end - counted_from
            self._busy_union_until = end

    def _access_cost(self, port: _Port, addr: int) -> int:
        """Cycles the access occupies the port, with burst/row accounting."""
        t = self.timing
        sequential = port.last_addr is not None and addr == port.last_addr + 1
        if sequential:
            self.sequential_accesses += 1
            cost = t.stream_word_cycles
        else:
            self.random_accesses += 1
            cost = t.random_access_cycles
            if t.row_miss_penalty > 0:
                prev_row = None if port.last_addr is None else port.last_addr // t.row_words
                if prev_row is None or addr // t.row_words != prev_row:
                    self.row_misses += 1
                    cost += t.row_miss_penalty
        port.last_addr = addr
        return cost

    def _start_read(self, cmd: DRAMCommand) -> None:
        if not (0 <= cmd.addr < self.size_words):
            raise IndexError(f"DRAM read address {cmd.addr} out of range")
        now = self.cycle
        cost = self._access_cost(self._read_port, cmd.addr)
        self._read_port.free_at = now + cost
        self._account_busy(now, now + cost)
        data = float(self.storage[cmd.addr])
        ready = now + cost + self.timing.read_latency
        self._inflight_reads.append((ready, DRAMResponse(addr=cmd.addr, data=data, tag=cmd.tag)))
        self.words_read += 1

    def _start_write(self, cmd: DRAMCommand) -> None:
        if not (0 <= cmd.addr < self.size_words):
            raise IndexError(f"DRAM write address {cmd.addr} out of range")
        now = self.cycle
        cost = self._access_cost(self._write_port, cmd.addr)
        self._write_port.free_at = now + cost
        self._account_busy(now, now + cost)
        self.storage[cmd.addr] = cmd.data
        self.words_written += 1
        self.writes_completed += 1

    # ------------------------------------------------------------------ #
    def tick(self) -> None:
        now = self.cycle
        # Deliver any read data whose latency has elapsed (in order).
        inflight = self._inflight_reads
        if inflight:
            rsp = self.read_rsp
            while inflight and inflight[0][0] <= now and rsp.can_push():
                rsp.push(inflight.popleft()[1])

        if self.shared_bus:
            self._tick_shared_bus(now)
        else:
            self._tick_split_bus(now)

    def _response_space_ok(self) -> bool:
        # Do not accept more reads than the response path can absorb; this
        # provides the back-pressure ("stall") path of the AXI-style interface.
        return len(self._inflight_reads) < self.read_rsp.capacity

    def _tick_split_bus(self, now: int) -> None:
        if now >= self._read_port.free_at and self.read_cmd.can_pop() and self._response_space_ok():
            self._start_read(self.read_cmd.pop())
        if now >= self._write_port.free_at and self.write_cmd.can_pop():
            self._start_write(self.write_cmd.pop())

    def _tick_shared_bus(self, now: int) -> None:
        # One transaction at a time across both ports, round-robin between
        # pending reads and writes so neither side starves.
        if now < self._read_port.free_at or now < self._write_port.free_at:
            return
        want_read = self.read_cmd.can_pop() and self._response_space_ok()
        want_write = self.write_cmd.can_pop()
        if want_read and (not want_write or self._arbiter_turn == 0):
            cmd = self.read_cmd.pop()
            self._start_read(cmd)
            # Both "ports" are the same bus: mirror the occupancy.
            self._write_port.free_at = self._read_port.free_at
            self._arbiter_turn = 1
        elif want_write:
            cmd = self.write_cmd.pop()
            self._start_write(cmd)
            self._read_port.free_at = self._write_port.free_at
            self._arbiter_turn = 0

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self) -> Optional[int]:
        now = self.sim.cycle
        horizon: Optional[int] = None
        # A draining port is self-scheduled activity even with empty queues:
        # finished() flips when it runs dry, and the contract requires every
        # change of observable state — idle status included — to be bounded
        # by the horizon (otherwise run_until_idle could sleep through it).
        for port in (self._read_port, self._write_port):
            if port.free_at > now and (horizon is None or port.free_at < horizon):
                horizon = port.free_at
        if self._inflight_reads and self.read_rsp.can_push():
            ready = self._inflight_reads[0][0]
            if ready <= now:
                return now
            if horizon is None or ready < horizon:
                horizon = ready
        # A blocked response path (read_rsp full) is not self-scheduled
        # activity: only the consumer popping can unblock it, and that
        # consumer reports its own activity.
        if self.read_cmd.can_pop() and self._response_space_ok():
            free = self._read_port.free_at
            if self.shared_bus and self._write_port.free_at > free:
                free = self._write_port.free_at
            if free <= now:
                return now
            if horizon is None or free < horizon:
                horizon = free
        if self.write_cmd.can_pop():
            free = self._write_port.free_at
            if self.shared_bus and self._read_port.free_at > free:
                free = self._read_port.free_at
            if free <= now:
                return now
            if horizon is None or free < horizon:
                horizon = free
        return horizon

    def skip_digest(self):
        return (
            len(self._inflight_reads),
            self.words_read,
            self.words_written,
            self.writes_completed,
            self._read_port.free_at,
            self._write_port.free_at,
            self._arbiter_turn,
        )
