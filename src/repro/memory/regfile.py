"""Register-file (distributed memory) model.

Registers are the other half of the paper's hybrid stream buffer: they can be
read in parallel (every stencil tap in the same cycle), at the cost of one
register bit per stored bit.  The model is a plain array with statistics; the
interesting property compared to :class:`repro.memory.bram.BRAMModel` is the
*absence* of a port budget.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.validation import check_positive


class RegisterFile:
    """A multi-ported word array modelling FPGA register storage."""

    def __init__(self, name: str, depth: int, word_bits: int = 32) -> None:
        check_positive("depth", depth)
        check_positive("word_bits", word_bits)
        self.name = name
        self.depth = depth
        self.word_bits = word_bits
        self.storage = np.zeros(depth, dtype=np.float64)
        self.total_reads = 0
        self.total_writes = 0

    # ------------------------------------------------------------------ #
    @property
    def total_bits(self) -> int:
        """Storage capacity in bits (used by the resource model)."""
        return self.depth * self.word_bits

    def read(self, addr: int) -> float:
        """Combinational read (no port budget)."""
        if not (0 <= addr < self.depth):
            raise IndexError(f"register file '{self.name}' read address {addr} out of range")
        self.total_reads += 1
        return float(self.storage[addr])

    def write(self, addr: int, data: float) -> None:
        """Clocked write."""
        if not (0 <= addr < self.depth):
            raise IndexError(f"register file '{self.name}' write address {addr} out of range")
        self.total_writes += 1
        self.storage[addr] = data

    def read_many(self, addrs: List[int]) -> List[float]:
        """Read several locations in the same cycle (parallel taps)."""
        return [self.read(a) for a in addrs]

    def shift_in(self, value: float) -> float:
        """Shift the whole file by one position and insert ``value`` at index 0.

        Returns the value shifted out of the last position.  This is the
        register-chain behaviour of a window buffer implemented as a shift
        register.
        """
        evicted = float(self.storage[self.depth - 1])
        if self.depth > 1:
            self.storage[1:] = self.storage[:-1]
        self.storage[0] = value
        self.total_writes += self.depth
        return evicted

    def fill(self, values) -> None:
        """Load contents directly (test/configuration helper)."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size > self.depth:
            raise ValueError("fill data larger than the register file")
        self.storage[: values.size] = values

    def reset(self) -> None:
        """Clear contents and statistics."""
        self.storage[:] = 0.0
        self.total_reads = 0
        self.total_writes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegisterFile({self.name!r}, depth={self.depth}, {self.word_bits}b)"
