"""The compilation pipeline: one spec, one compile step, pluggable backends.

Historically every consumer of this reproduction (the eval harness, the DSE
explorer, the examples, the benchmarks) hand-wired its own
``grid -> plan -> partition -> system -> run`` sequence and paid full
cycle-accurate simulation even for broad sweeps.  This package replaces that
with a single shared pipeline:

* :class:`StencilProblem` — the complete, hashable description of one stencil
  workload (grid, stencil, boundary, iteration pattern, kernel, architecture
  knobs);
* :func:`compile` — runs range partitioning, the buffer planner, the hybrid
  register/BRAM partition and the cost/synthesis models exactly once and
  memoizes the resulting :class:`CompiledDesign` in a keyed plan cache;
* a registry of :class:`Backend` implementations that evaluate a compiled
  design at different fidelities:

  ========== =====================================================
  backend    what it does
  ========== =====================================================
  simulate   cycle-accurate simulation (``repro.arch.system``)
  reference  NumPy golden execution (``repro.reference``)
  analytic   closed-form cycles/traffic/ops prediction, no clock
  cost       memory cost estimate + synthesis report only
  hdl        Verilog skeleton generation (``repro.hdlgen``)
  ========== =====================================================

* :func:`evaluate` / :func:`evaluate_batch` — the facade used by the eval
  harness, the DSE sweeps and the examples.  Broad sweeps run ``analytic``
  over the full space and re-``simulate`` only the Pareto front, which is how
  the fast path stays honest against the slow one (see
  :func:`repro.pipeline.analytic.validate_prediction`).
"""

from repro.pipeline.problem import StencilProblem
from repro.pipeline.cache import CacheInfo, PlanCache, plan_cache, clear_plan_cache
from repro.pipeline.compile import CompiledDesign, compile, compile_batch
from repro.pipeline.analytic import (
    ANALYTIC_TOLERANCE,
    PerformancePrediction,
    ReferenceBand,
    ValidationReport,
    predict_performance,
    validate_prediction,
)
from repro.pipeline.analytic_batch import AnalyticBatchEngine, batching_enabled
from repro.pipeline.backends import (
    Backend,
    EvaluationRequest,
    EvaluationResult,
    available_backends,
    batch_evaluate,
    evaluate,
    evaluate_batch,
    get_backend,
    register_backend,
)

__all__ = [
    "StencilProblem",
    "CacheInfo",
    "PlanCache",
    "plan_cache",
    "clear_plan_cache",
    "CompiledDesign",
    "compile",
    "compile_batch",
    "AnalyticBatchEngine",
    "batching_enabled",
    "ANALYTIC_TOLERANCE",
    "PerformancePrediction",
    "ReferenceBand",
    "ValidationReport",
    "predict_performance",
    "validate_prediction",
    "Backend",
    "EvaluationRequest",
    "EvaluationResult",
    "available_backends",
    "batch_evaluate",
    "evaluate",
    "evaluate_batch",
    "get_backend",
    "register_backend",
]
