"""Closed-form performance model: cycles, DRAM traffic and ops without a clock.

The cycle-accurate simulator in :mod:`repro.arch` steps every component every
cycle, which is what makes it trustworthy — and what makes broad design-space
sweeps expensive.  This module predicts the same three quantities (cycle
count, DRAM traffic, operation count) directly from the
:class:`~repro.core.buffers.BufferPlan`, the stream-range structure and the
:class:`~repro.memory.dram.DRAMTiming`, in microseconds instead of seconds.

The model is *structural*, not fitted: every term corresponds to a mechanism
of the simulated microarchitecture.

Smache (per work-instance)
    ``floor((prefetch_words + N) * word_period)`` — the streaming front-end
    accepts one word per cycle, so the instance is throughput-bound by the
    ``N`` stream words (plus the static-buffer prefetch on warm-up).
    ``word_period`` exceeds one cycle only when the DRAM read latency is so
    large that the response window (``RESPONSE_CAPACITY`` in-flight reads)
    cannot cover it;

    ``+ window_hi`` — emission of tuple ``i`` waits until the window head has
    run ``window_hi`` positions ahead (the look-ahead of FSM-2);

    ``+ read_latency + kernel.latency + SMACHE_PIPELINE_OVERHEAD`` — the
    pipeline fill/drain: DRAM read latency, kernel pipeline depth and the
    seven single-cycle hops of the shell (read command, DRAM accept, response
    channel, router, window insert, tuple channel, write-back/commit);

    ``+ burst_breaks * (random_access_cycles - stream_word_cycles)`` — every
    non-contiguous transition on the DRAM read or write port (prefetch job
    starts, the per-instance stream restart, the ping-pong write-base flip)
    stalls the stream by the burst-break penalty.

Baseline
    The shared command bus serves exactly one transaction per cycle, so the
    instance cost is the bus occupancy ``seq * stream_word_cycles +
    rand * random_access_cycles`` — with the sequential/random split counted
    exactly from the per-range fetch schedule — plus a per-instance drain
    (read latency + kernel latency + ``BASELINE_DRAIN_OVERHEAD``).

DRAM traffic and operation counts are exact (they are deterministic counts,
not timing), so only the cycle prediction carries a tolerance:
:data:`ANALYTIC_TOLERANCE` (5%), asserted against the simulator by
:func:`validate_prediction` in the ReFrame style of a reference value with a
relative band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.buffers import BufferPlan
from repro.core.ranges import StreamRange
from repro.memory.dram import DEFAULT_RESPONSE_CAPACITY, DRAMTiming
from repro.reference.kernels import StencilKernel
from repro.pipeline.compile import CompiledDesign

#: Relative tolerance of the cycle prediction against the simulator.
ANALYTIC_TOLERANCE = 0.05

#: Fixed single-cycle hops between the DRAM response and the committed write
#: (read command, DRAM accept, response channel, router, window insert, tuple
#: channel, write-back) in the simulated Smache shell.
SMACHE_PIPELINE_OVERHEAD = 7

#: Per-instance drain of the baseline master beyond bus occupancy and the
#: read/kernel latencies (response hop + final write commit).  Exact for a
#: burst-break penalty >= 2 cycles; overestimates by <= 2 cycles per instance
#: at the degenerate penalty-free timing.
BASELINE_DRAIN_OVERHEAD = 2

#: In-flight read window of the simulated DRAM read port, shared with
#: :class:`repro.memory.dram.DRAMModel` so the two cannot drift.
RESPONSE_CAPACITY = DEFAULT_RESPONSE_CAPACITY


@dataclass(frozen=True)
class PerformancePrediction:
    """Analytically predicted counterpart of a ``SimulationResult``."""

    system: str
    cycles: int
    iterations: int
    grid_points: int
    dram_words_read: int
    dram_words_written: int
    dram_bytes: int
    operations: int
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def dram_traffic_kib(self) -> float:
        """Total DRAM traffic in KiB."""
        return self.dram_bytes / 1024.0

    @property
    def cycles_per_point(self) -> float:
        """Average cycles per grid point per work-instance."""
        total_points = max(1, self.grid_points * self.iterations)
        return self.cycles / total_points

    def execution_time_us(self, frequency_mhz: float) -> float:
        """Predicted execution time in microseconds at the given clock."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        return self.cycles / frequency_mhz

    def mops(self, frequency_mhz: float) -> float:
        """Millions of kernel operations per second at the given clock."""
        time_us = self.execution_time_us(frequency_mhz)
        return self.operations / time_us if time_us else 0.0


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _extrapolate(per_instance: Sequence[int], iterations: int) -> int:
    """Sum a per-instance series whose tail alternates with period two.

    ``per_instance`` holds the first ``min(iterations, 3)`` instance values;
    after the warm-up instance the system ping-pongs between two DRAM bases,
    so instances alternate between exactly two steady values.
    """
    if iterations <= len(per_instance):
        return sum(per_instance[:iterations])
    total = sum(per_instance)
    odd_value, even_value = per_instance[1], per_instance[2]
    remaining_odd = sum(1 for i in range(3, iterations) if i % 2 == 1)
    remaining_even = (iterations - 3) - remaining_odd
    return total + remaining_odd * odd_value + remaining_even * even_value


def _burst_break(last_addr: Optional[int], addr: int) -> bool:
    """True when ``addr`` does not continue the port's open burst."""
    return last_addr is None or addr != last_addr + 1


# --------------------------------------------------------------------------- #
# Smache
# --------------------------------------------------------------------------- #
def predict_smache(
    plan: BufferPlan,
    kernel: StencilKernel,
    iterations: int,
    timing: Optional[DRAMTiming] = None,
    write_through: bool = True,
) -> PerformancePrediction:
    """Predict the Smache system's cycles, traffic and ops for one workload."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    t = timing or DRAMTiming()
    n = plan.grid.size
    window_hi = plan.stream.window_hi
    statics = tuple((s.start, s.length) for s in plan.statics)
    prefetch_words = sum(length for _, length in statics)
    penalty = t.random_access_cycles - t.stream_word_cycles

    # Effective cycles per stream word: one, unless the read latency exceeds
    # what the in-flight response window can hide.
    word_period = max(
        float(t.stream_word_cycles),
        (t.read_latency + t.stream_word_cycles) / RESPONSE_CAPACITY,
    )
    fill_overhead = (
        window_hi + t.read_latency + kernel.latency + SMACHE_PIPELINE_OVERHEAD
    )

    read_last: Optional[int] = None
    write_last: Optional[int] = None
    per_instance: List[int] = []
    total_breaks = 0
    for instance in range(min(iterations, 3)):
        src = 0 if instance % 2 == 0 else n
        dst = n if instance % 2 == 0 else 0
        prefetching = instance == 0 or not write_through
        breaks = 0
        if prefetching:
            for start, length in statics:
                if _burst_break(read_last, src + start):
                    breaks += 1
                read_last = src + start + length - 1
        if _burst_break(read_last, src):
            breaks += 1
        read_last = src + n - 1
        if _burst_break(write_last, dst):
            breaks += 1
        write_last = dst + n - 1
        streamed = n + (prefetch_words if prefetching else 0)
        per_instance.append(int(streamed * word_period) + fill_overhead + breaks * penalty)
        total_breaks += breaks

    cycles = 1 + _extrapolate(per_instance, iterations) if iterations else 0
    prefetch_instances = 1 if (write_through and iterations) else iterations
    words_read = prefetch_words * prefetch_instances + n * iterations
    words_written = n * iterations
    word_bytes = plan.grid.word_bytes
    return PerformancePrediction(
        system="smache",
        cycles=cycles,
        iterations=iterations,
        grid_points=n,
        dram_words_read=words_read,
        dram_words_written=words_written,
        dram_bytes=(words_read + words_written) * word_bytes,
        operations=kernel.ops_per_point * n * iterations,
        detail={
            "word_period": word_period,
            "fill_overhead": fill_overhead,
            "prefetch_words": prefetch_words,
            "burst_breaks_first_instances": total_breaks,
        },
    )


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def _fetch_deltas(ranges: Sequence[StreamRange]) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """Per-range fetch schedule: ``(start, length, per-access address deltas)``.

    Mirrors :func:`repro.arch.baseline.build_fetch_plan`: existing accesses
    fetch ``centre + delta``; skipped/constant accesses issue a dummy centre
    read (delta 0) to keep the schedule regular.  Within a range every point
    shares the same deltas, which is what makes the count closed-form.
    """
    out = []
    for r in ranges:
        rep = r.representative
        deltas = tuple(
            (p.linear_index - rep.centre_linear)
            if (p.exists and p.linear_index is not None)
            else 0
            for p in rep.points
        )
        out.append((r.start, r.length, deltas))
    return out


def baseline_schedule_constants(
    plan: BufferPlan, ranges: Sequence[StreamRange]
) -> Tuple[int, int, int, int]:
    """Instance-invariant constants of the baseline fetch schedule.

    Returns ``(n_points, seq_intra, first_rel, last_rel)``: the per-point
    access count, the sequential read transitions that repeat identically
    every instance (within a point's fetches, between consecutive points of a
    range, and between consecutive ranges), and the base-relative addresses
    of the first and last read of an instance.  These are pure structural
    counts — shared between :func:`predict_baseline` and the vectorized
    engine of :mod:`repro.pipeline.analytic_batch` so the two cannot drift.
    """
    if not ranges:
        raise ValueError("predict_baseline needs the problem's stream ranges")
    n = plan.grid.size
    n_points = len(ranges[0].representative.points)
    schedule = _fetch_deltas(ranges)

    seq_intra = 0
    for start, length, deltas in schedule:
        within = sum(1 for a, b in zip(deltas, deltas[1:]) if b == a + 1)
        seq_intra += length * within
        if deltas and deltas[0] == deltas[-1]:
            seq_intra += length - 1
    for (s0, l0, d0), (s1, _, d1) in zip(schedule, schedule[1:]):
        last_addr = (s0 + l0 - 1) + (d0[-1] if d0 else 0)
        first_addr = s1 + (d1[0] if d1 else 0)
        if first_addr == last_addr + 1:
            seq_intra += 1

    first_rel = schedule[0][0] + (schedule[0][2][0] if schedule[0][2] else 0)
    last_rel = (n - 1) + (schedule[-1][2][-1] if schedule[-1][2] else 0)
    return n_points, seq_intra, first_rel, last_rel


def predict_baseline(
    plan: BufferPlan,
    ranges: Sequence[StreamRange],
    kernel: StencilKernel,
    iterations: int,
    timing: Optional[DRAMTiming] = None,
) -> PerformancePrediction:
    """Predict the no-buffering baseline's cycles, traffic and ops."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    t = timing or DRAMTiming()
    n = plan.grid.size
    # The carry-in transition of each instance depends on the ping-pong base
    # and is walked per instance below; everything else is instance-invariant.
    n_points, seq_intra, first_rel, last_rel = baseline_schedule_constants(plan, ranges)

    read_last: Optional[int] = None
    write_last: Optional[int] = None
    per_instance_seq: List[int] = []
    for instance in range(min(iterations, 3)):
        src = 0 if instance % 2 == 0 else n
        dst = n if instance % 2 == 0 else 0
        seq = seq_intra + (0 if _burst_break(read_last, src + first_rel) else 1)
        read_last = src + last_rel
        # writes walk the destination copy in order; only the first can break.
        seq += (n - 1) + (0 if _burst_break(write_last, dst) else 1)
        write_last = dst + n - 1
        per_instance_seq.append(seq)

    seq_total = _extrapolate(per_instance_seq, iterations)
    accesses = (n_points + 1) * n * iterations
    rand_total = accesses - seq_total
    bus_cycles = seq_total * t.stream_word_cycles + rand_total * t.random_access_cycles
    drain = t.read_latency + kernel.latency + BASELINE_DRAIN_OVERHEAD
    cycles = bus_cycles + iterations * drain + 1 if iterations else 0

    words_read = n_points * n * iterations
    words_written = n * iterations
    word_bytes = plan.grid.word_bytes
    return PerformancePrediction(
        system="baseline",
        cycles=cycles,
        iterations=iterations,
        grid_points=n,
        dram_words_read=words_read,
        dram_words_written=words_written,
        dram_bytes=(words_read + words_written) * word_bytes,
        operations=kernel.ops_per_point * n * iterations,
        detail={
            "sequential_accesses": seq_total,
            "random_accesses": rand_total,
            "bus_cycles": bus_cycles,
            "per_instance_drain": drain,
        },
    )


def predict_performance(
    design: CompiledDesign,
    system: str = "smache",
    iterations: int = 1,
    kernel: Optional[StencilKernel] = None,
    timing: Optional[DRAMTiming] = None,
    write_through: bool = True,
) -> PerformancePrediction:
    """Predict performance of a compiled design on either system."""
    kernel = kernel or design.problem.effective_kernel
    if system == "smache":
        return predict_smache(
            design.plan, kernel, iterations, timing=timing, write_through=write_through
        )
    if system == "baseline":
        return predict_baseline(design.plan, design.ranges, kernel, iterations, timing=timing)
    raise ValueError(f"unknown system {system!r}; expected 'smache' or 'baseline'")


# --------------------------------------------------------------------------- #
# cross-validation against the simulator (ReFrame-style reference bands)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ReferenceBand:
    """A reference value with a relative tolerance band, ReFrame style.

    ``lower``/``upper`` are relative bounds: ``(-0.05, 0.05)`` accepts
    measurements within 5% on either side of the reference.
    """

    value: float
    lower: float = -ANALYTIC_TOLERANCE
    upper: float = ANALYTIC_TOLERANCE

    def error(self, measured: float) -> float:
        """Signed relative deviation of ``measured`` from the reference."""
        if self.value == 0:
            return 0.0 if measured == 0 else float("inf")
        return (measured - self.value) / abs(self.value)

    def contains(self, measured: float) -> bool:
        """True when ``measured`` falls inside the band."""
        return self.lower <= self.error(measured) <= self.upper


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of cross-validating the analytic model against the simulator."""

    system: str
    bands: Dict[str, ReferenceBand]
    predicted: Dict[str, float]
    iterations: int = 0
    simulate_seconds: float = 0.0
    predict_seconds: float = 0.0

    @property
    def errors(self) -> Dict[str, float]:
        """Signed relative error per metric (prediction vs simulation)."""
        return {m: band.error(self.predicted[m]) for m, band in self.bands.items()}

    @property
    def ok(self) -> bool:
        """True when every metric is inside its tolerance band."""
        return all(band.contains(self.predicted[m]) for m, band in self.bands.items())

    @property
    def worst_error(self) -> float:
        """Largest absolute relative error across the metrics."""
        return max((abs(e) for e in self.errors.values()), default=0.0)

    @property
    def speedup(self) -> float:
        """Wall-clock advantage of prediction over simulation."""
        if self.predict_seconds <= 0:
            return float("inf")
        return self.simulate_seconds / self.predict_seconds


#: The metrics cross-validated between the two backends.  Cycle counts carry
#: the relative tolerance band; word/operation counts must match exactly.
VALIDATED_METRICS = ("cycles", "dram_words_read", "dram_words_written", "operations")


def build_validation_report(
    system: str,
    simulated: Dict[str, float],
    predicted: Dict[str, float],
    iterations: int = 0,
    tolerance: float = ANALYTIC_TOLERANCE,
    simulate_seconds: float = 0.0,
    predict_seconds: float = 0.0,
) -> ValidationReport:
    """Assemble the canonical cross-validation report from metric dicts.

    The single place that encodes the banding rule (cycles get the relative
    ``tolerance``, counts must match exactly), shared by the in-process
    :func:`validate_prediction` and the sweep-engine E5 experiment.
    """
    bands = {
        metric: ReferenceBand(
            simulated[metric],
            *((-tolerance, tolerance) if metric == "cycles" else (0.0, 0.0)),
        )
        for metric in VALIDATED_METRICS
    }
    return ValidationReport(
        system=system,
        bands=bands,
        predicted={metric: predicted[metric] for metric in VALIDATED_METRICS},
        iterations=iterations,
        simulate_seconds=simulate_seconds,
        predict_seconds=predict_seconds,
    )


def validate_prediction(
    design: CompiledDesign,
    system: str = "smache",
    iterations: int = 5,
    timing: Optional[DRAMTiming] = None,
    tolerance: float = ANALYTIC_TOLERANCE,
) -> ValidationReport:
    """Run simulator and analytic model on the same workload and compare.

    Cycle counts carry the relative ``tolerance`` band; DRAM word counts and
    operation counts must match exactly (they are counts, not timing).
    """
    import time

    from repro.pipeline.backends import EvaluationRequest, get_backend

    request = EvaluationRequest(system=system, iterations=iterations, dram_timing=timing)
    t0 = time.perf_counter()
    simulated = get_backend("simulate").evaluate(design, request)
    t1 = time.perf_counter()
    predicted = get_backend("analytic").evaluate(design, request)
    t2 = time.perf_counter()
    return build_validation_report(
        system=system,
        simulated={m: getattr(simulated, m) for m in VALIDATED_METRICS},
        predicted={m: getattr(predicted, m) for m in VALIDATED_METRICS},
        iterations=iterations,
        tolerance=tolerance,
        simulate_seconds=t1 - t0,
        predict_seconds=t2 - t1,
    )
