"""Vectorized analytic pricing: thousands of sweep points per NumPy call.

The closed-form model of :mod:`repro.pipeline.analytic` already prices one
design in microseconds, but a broad campaign calls it once per point, so the
sweep's wall clock is dominated by per-point Python overhead — attribute
walks, dict building, the interpreter loop — not by the model's arithmetic.
This module applies the gather-plan idiom of
:mod:`repro.reference.stencil_exec` to pricing itself:

* **group** a batch of ``(CompiledDesign, EvaluationRequest)`` pairs by
  *plan-structure signature* — the system (Smache or baseline) and the
  static-buffer count, the only structural properties that change the shape
  of the fold.  Everything else (grid size, window reach, buffer extents,
  DRAM timing, write-through, instance count) varies freely *within* a
  group;

* **pack** the per-point knobs into int64/float64 columns.  Knob extraction
  walks the compiled plan once per distinct design and is memoized in a
  bounded :class:`~repro.pipeline.cache.PlanCache` keyed like the plan cache
  itself, so re-pricing a design space under new timings or instance counts
  touches no plan objects at all;

* **fold** the Smache and baseline formulas over the columns — the
  three-instance warm-up walk, the period-two tail extrapolation, the
  burst-break bookkeeping — as masked NumPy array ops.

On top of the per-call grouping sits a **packed-session cache**
(:meth:`AnalyticBatchEngine.price_batch`): a bounded identity-keyed memo of
whole batches.  When the same problem list is priced again — a
:class:`~repro.api.Workbench` session re-pricing its space under new
timings, instance counts or write policies — compilation, knob extraction
and grouping are all skipped: the cached design-side columns are folded
against freshly broadcast request-side columns, so a warm re-price is pure
array arithmetic plus result construction.  The cache key is the identity
of the problem objects (plus the plan cache in use), which is sound because
every entry holds strong references to exactly those objects: a key can
only match while the original problems are alive and unchanged (they are
frozen dataclasses).

The scalar path stays the reference (the same contract as
``reference_step_scalar``): every array fold below mirrors one line of
:func:`~repro.pipeline.analytic.predict_smache` /
:func:`~repro.pipeline.analytic.predict_baseline`, computed in the same IEEE
operations on the same values, so results are **bitwise-equal per point** —
including the ``int(streamed * word_period)`` truncation and the exact
``detail`` integer/float types that canonical campaign JSON serialises.
Both entry points share one set of fold kernels, so the session path cannot
drift from the grouped path.  ``tests/pipeline/test_analytic_batch.py``
enforces the equality across the sweep axes; ``tests/sweep`` holds campaign
output byte-identical between scalar and vectorized pricing.

Set ``REPRO_ANALYTIC_BATCH=0`` to disable batching everywhere (the parity
suites use this to produce the scalar reference through the very same call
paths).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from threading import Lock
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.memory.dram import DRAMTiming
from repro.pipeline.analytic import (
    BASELINE_DRAIN_OVERHEAD,
    RESPONSE_CAPACITY,
    SMACHE_PIPELINE_OVERHEAD,
    PerformancePrediction,
    baseline_schedule_constants,
)
from repro.pipeline.backends import EvaluationRequest, EvaluationResult
from repro.pipeline.cache import PlanCache, plan_cache
from repro.pipeline.compile import CompiledDesign

#: One batch item: an already-compiled design and the request to price it on.
PricingItem = Tuple[CompiledDesign, EvaluationRequest]

#: Distinct request signatures whose fold outputs a packed session retains.
_MAX_FOLDS_PER_SESSION = 16


def batching_enabled() -> bool:
    """Whether the vectorized fast lane is on (``REPRO_ANALYTIC_BATCH``).

    Read per call so tests and campaigns can flip the switch at runtime; any
    value but ``0``/``off``/``false`` (or unset) keeps batching enabled.
    """
    return os.environ.get("REPRO_ANALYTIC_BATCH", "1").lower() not in ("0", "off", "false")


class SmacheKnobs(NamedTuple):
    """Per-design constants of the Smache fold (everything read off the plan)."""

    n: int
    window_hi: int
    starts: Tuple[int, ...]
    lengths: Tuple[int, ...]
    prefetch_words: int
    word_bytes: int


class BaselineKnobs(NamedTuple):
    """Per-design constants of the baseline fold (the fetch-schedule walk)."""

    n: int
    n_points: int
    seq_intra: int
    first_rel: int
    last_rel: int
    word_bytes: int


def _smache_knobs(design: CompiledDesign) -> SmacheKnobs:
    plan = design.plan
    statics = tuple((s.start, s.length) for s in plan.statics)
    return SmacheKnobs(
        n=plan.grid.size,
        window_hi=plan.stream.window_hi,
        starts=tuple(s for s, _ in statics),
        lengths=tuple(l for _, l in statics),
        prefetch_words=sum(l for _, l in statics),
        word_bytes=plan.grid.word_bytes,
    )


def _baseline_knobs(design: CompiledDesign) -> BaselineKnobs:
    n_points, seq_intra, first_rel, last_rel = baseline_schedule_constants(
        design.plan, design.ranges
    )
    return BaselineKnobs(
        n=design.plan.grid.size,
        n_points=n_points,
        seq_intra=seq_intra,
        first_rel=first_rel,
        last_rel=last_rel,
        word_bytes=design.plan.grid.word_bytes,
    )


#: One fully-resolved point inside a group: (input index, design, request,
#: kernel latency, kernel ops/point, timing, knobs).
_Row = Tuple[int, CompiledDesign, EvaluationRequest, int, int, DRAMTiming, tuple]


def _masked_extrapolate(per_inst: np.ndarray, it: np.ndarray) -> np.ndarray:
    """Vectorized :func:`~repro.pipeline.analytic._extrapolate`.

    ``per_inst`` is a ``(3, m)`` matrix of the warm-up instance values;
    instances beyond ``min(it, 3)`` are masked out, and the period-two tail
    (odd instances repeat row 1, even instances row 2) is added in closed
    form — exactly the counts the scalar loop derives.
    """
    summed = (
        np.where(it >= 1, per_inst[0], 0)
        + np.where(it >= 2, per_inst[1], 0)
        + np.where(it >= 3, per_inst[2], 0)
    )
    remaining_odd = np.maximum(it - 2, 0) // 2
    remaining_even = np.maximum(it - 3, 0) - remaining_odd
    return summed + remaining_odd * per_inst[1] + remaining_even * per_inst[2]


def _column(values: List[int]) -> np.ndarray:
    return np.asarray(values, dtype=np.int64)


# --------------------------------------------------------------------------- #
# packed design-side columns
# --------------------------------------------------------------------------- #
class SmacheCols(NamedTuple):
    """Design-side columns of one Smache group (request-independent)."""

    indices: Tuple[int, ...]
    designs: Tuple[CompiledDesign, ...]
    n: np.ndarray
    window_hi: np.ndarray
    prefetch_words: np.ndarray
    word_bytes: np.ndarray
    starts: np.ndarray  # (m, n_statics)
    lengths: np.ndarray  # (m, n_statics)
    kernel_latency: np.ndarray  # the problems' effective kernels
    kernel_ops: np.ndarray


class BaselineCols(NamedTuple):
    """Design-side columns of one baseline group (request-independent)."""

    indices: Tuple[int, ...]
    designs: Tuple[CompiledDesign, ...]
    n: np.ndarray
    n_points: np.ndarray
    seq_intra: np.ndarray
    first_rel: np.ndarray
    last_rel: np.ndarray
    word_bytes: np.ndarray
    kernel_latency: np.ndarray
    kernel_ops: np.ndarray


class RequestCols(NamedTuple):
    """Request-side columns: everything a re-price is allowed to change."""

    it: np.ndarray
    swc: np.ndarray
    rac: np.ndarray
    read_latency: np.ndarray
    write_through: np.ndarray  # bool
    kernel_latency: Optional[np.ndarray]  # overrides the design-side columns
    kernel_ops: Optional[np.ndarray]


def _pack_smache(indices, designs, knobs, klat, kops) -> SmacheCols:
    m = len(indices)
    n_statics = len(knobs[0].starts)
    return SmacheCols(
        indices=tuple(indices),
        designs=tuple(designs),
        n=_column([k.n for k in knobs]),
        window_hi=_column([k.window_hi for k in knobs]),
        prefetch_words=_column([k.prefetch_words for k in knobs]),
        word_bytes=_column([k.word_bytes for k in knobs]),
        starts=np.asarray([k.starts for k in knobs], dtype=np.int64).reshape(m, n_statics),
        lengths=np.asarray([k.lengths for k in knobs], dtype=np.int64).reshape(m, n_statics),
        kernel_latency=_column(klat),
        kernel_ops=_column(kops),
    )


def _pack_baseline(indices, designs, knobs, klat, kops) -> BaselineCols:
    return BaselineCols(
        indices=tuple(indices),
        designs=tuple(designs),
        n=_column([k.n for k in knobs]),
        n_points=_column([k.n_points for k in knobs]),
        seq_intra=_column([k.seq_intra for k in knobs]),
        first_rel=_column([k.first_rel for k in knobs]),
        last_rel=_column([k.last_rel for k in knobs]),
        word_bytes=_column([k.word_bytes for k in knobs]),
        kernel_latency=_column(klat),
        kernel_ops=_column(kops),
    )


# --------------------------------------------------------------------------- #
# fold kernels (shared by the grouped and the packed-session paths)
# --------------------------------------------------------------------------- #
class SmacheFold(NamedTuple):
    word_period: np.ndarray
    fill_overhead: np.ndarray
    total_breaks: np.ndarray
    cycles: np.ndarray
    words_read: np.ndarray
    words_written: np.ndarray
    dram_bytes: np.ndarray
    operations: np.ndarray


class BaselineFold(NamedTuple):
    seq_total: np.ndarray
    rand_total: np.ndarray
    bus_cycles: np.ndarray
    drain: np.ndarray
    cycles: np.ndarray
    words_read: np.ndarray
    words_written: np.ndarray
    dram_bytes: np.ndarray
    operations: np.ndarray


def _fold_smache(cols: SmacheCols, req: RequestCols) -> SmacheFold:
    """The Smache fold: predict_smache over columns, one instance at a time."""
    m = len(cols.indices)
    n = cols.n
    starts, lengths = cols.starts, cols.lengths
    n_statics = starts.shape[1]
    kernel_latency = req.kernel_latency if req.kernel_latency is not None else cols.kernel_latency
    kernel_ops = req.kernel_ops if req.kernel_ops is not None else cols.kernel_ops
    it, swc, rac, read_latency = req.it, req.swc, req.rac, req.read_latency
    write_through = req.write_through

    penalty = rac - swc
    word_period = np.maximum(
        swc.astype(np.float64), (read_latency + swc) / RESPONSE_CAPACITY
    )
    fill_overhead = cols.window_hi + read_latency + kernel_latency + SMACHE_PIPELINE_OVERHEAD

    zero = np.zeros(m, dtype=np.int64)
    read_last = zero.copy()
    has_read = np.zeros(m, dtype=bool)
    write_last = zero.copy()
    has_write = np.zeros(m, dtype=bool)
    per_instance = np.zeros((3, m), dtype=np.int64)
    total_breaks = zero.copy()
    for instance in range(3):
        src = zero if instance % 2 == 0 else n
        dst = n if instance % 2 == 0 else zero
        if instance == 0:
            prefetching = np.ones(m, dtype=bool)
        else:
            prefetching = ~write_through
        breaks = np.zeros(m, dtype=np.int64)
        for j in range(n_statics):
            addr = src + starts[:, j]
            breaks += prefetching & (~has_read | (addr != read_last + 1))
            read_last = np.where(prefetching, addr + lengths[:, j] - 1, read_last)
            has_read = has_read | prefetching
        breaks += ~has_read | (src != read_last + 1)
        read_last = src + n - 1
        has_read = np.ones(m, dtype=bool)
        breaks += ~has_write | (dst != write_last + 1)
        write_last = dst + n - 1
        has_write = np.ones(m, dtype=bool)
        streamed = n + np.where(prefetching, cols.prefetch_words, 0)
        per_instance[instance] = (
            (streamed * word_period).astype(np.int64)
            + fill_overhead
            + breaks * penalty
        )
        total_breaks += np.where(instance < it, breaks, 0)

    cycles = np.where(it > 0, 1 + _masked_extrapolate(per_instance, it), 0)
    prefetch_instances = np.where(write_through & (it > 0), 1, it)
    words_read = cols.prefetch_words * prefetch_instances + n * it
    words_written = n * it
    dram_bytes = (words_read + words_written) * cols.word_bytes
    operations = kernel_ops * n * it
    return SmacheFold(
        word_period, fill_overhead, total_breaks, cycles,
        words_read, words_written, dram_bytes, operations,
    )


def _fold_baseline(cols: BaselineCols, req: RequestCols) -> BaselineFold:
    """The baseline fold: predict_baseline over columns."""
    m = len(cols.indices)
    n = cols.n
    kernel_latency = req.kernel_latency if req.kernel_latency is not None else cols.kernel_latency
    kernel_ops = req.kernel_ops if req.kernel_ops is not None else cols.kernel_ops
    it, swc, rac, read_latency = req.it, req.swc, req.rac, req.read_latency

    zero = np.zeros(m, dtype=np.int64)
    read_last = zero.copy()
    has_read = np.zeros(m, dtype=bool)
    write_last = zero.copy()
    has_write = np.zeros(m, dtype=bool)
    per_instance_seq = np.zeros((3, m), dtype=np.int64)
    for instance in range(3):
        src = zero if instance % 2 == 0 else n
        dst = n if instance % 2 == 0 else zero
        seq = cols.seq_intra + (has_read & (src + cols.first_rel == read_last + 1))
        read_last = src + cols.last_rel
        has_read = np.ones(m, dtype=bool)
        # writes walk the destination copy in order; only the first can break.
        seq = seq + (n - 1) + (has_write & (dst == write_last + 1))
        write_last = dst + n - 1
        has_write = np.ones(m, dtype=bool)
        per_instance_seq[instance] = seq

    seq_total = _masked_extrapolate(per_instance_seq, it)
    accesses = (cols.n_points + 1) * n * it
    rand_total = accesses - seq_total
    bus_cycles = seq_total * swc + rand_total * rac
    drain = read_latency + kernel_latency + BASELINE_DRAIN_OVERHEAD
    cycles = np.where(it > 0, bus_cycles + it * drain + 1, 0)

    words_read = cols.n_points * n * it
    words_written = n * it
    dram_bytes = (words_read + words_written) * cols.word_bytes
    operations = kernel_ops * n * it
    return BaselineFold(
        seq_total, rand_total, bus_cycles, drain, cycles,
        words_read, words_written, dram_bytes, operations,
    )


# --------------------------------------------------------------------------- #
# result assembly
# --------------------------------------------------------------------------- #
class SmacheLists(NamedTuple):
    """A Smache group's fold outputs as native-typed Python lists.

    ``ndarray.tolist()`` converts int64 to ``int`` and float64 to ``float``
    exactly, so these carry the same native values the scalar path produces
    (canonical JSON depends on the types).  Pure data — safe to memoize per
    request signature and share across calls; the assemblers build fresh
    result objects from them every time.
    """

    word_period: list
    fill_overhead: list
    prefetch_words: list
    total_breaks: list
    cycles: list
    words_read: list
    words_written: list
    dram_bytes: list
    operations: list
    grid_points: list


class BaselineLists(NamedTuple):
    """A baseline group's fold outputs as native-typed Python lists."""

    seq_total: list
    rand_total: list
    bus_cycles: list
    drain: list
    cycles: list
    words_read: list
    words_written: list
    dram_bytes: list
    operations: list
    grid_points: list


def _lists_smache(cols: SmacheCols, fold: SmacheFold) -> SmacheLists:
    return SmacheLists(
        fold.word_period.tolist(),
        fold.fill_overhead.tolist(),
        cols.prefetch_words.tolist(),
        fold.total_breaks.tolist(),
        fold.cycles.tolist(),
        fold.words_read.tolist(),
        fold.words_written.tolist(),
        fold.dram_bytes.tolist(),
        fold.operations.tolist(),
        cols.n.tolist(),
    )


def _lists_baseline(cols: BaselineCols, fold: BaselineFold) -> BaselineLists:
    return BaselineLists(
        fold.seq_total.tolist(),
        fold.rand_total.tolist(),
        fold.bus_cycles.tolist(),
        fold.drain.tolist(),
        fold.cycles.tolist(),
        fold.words_read.tolist(),
        fold.words_written.tolist(),
        fold.dram_bytes.tolist(),
        fold.operations.tolist(),
        cols.n.tolist(),
    )


# The assemblers construct result objects with ``object.__new__`` + a
# ``__dict__`` literal instead of the dataclass ``__init__`` — field-for-field
# identical to what the scalar :class:`AnalyticBackend` builds, but skipping
# the per-field interpreter work that would otherwise dominate a
# thousand-point warm re-price.  They scatter straight into ``out`` at the
# group's indices, so the group→input permutation happens exactly once.
def _assemble_smache(
    out: List[Optional[EvaluationResult]],
    indices: Tuple[int, ...],
    designs: Tuple[CompiledDesign, ...],
    lists: SmacheLists,
    iterations: List[int],
    with_artifacts: bool,
) -> None:
    new = object.__new__
    result_cls = EvaluationResult
    prediction_cls = PerformancePrediction
    set_frozen = object.__setattr__
    for index, design, it, wp, fo, pw, tb, cyc, wr, ww, db, ops, npts in zip(
        indices, designs, iterations, *lists
    ):
        detail = {
            "word_period": wp,
            "fill_overhead": fo,
            "prefetch_words": pw,
            "burst_breaks_first_instances": tb,
        }
        if with_artifacts:
            prediction = new(prediction_cls)
            # Frozen dataclass: route around __setattr__ like replace() does.
            set_frozen(prediction, "__dict__", {
                "system": "smache",
                "cycles": cyc,
                "iterations": it,
                "grid_points": npts,
                "dram_words_read": wr,
                "dram_words_written": ww,
                "dram_bytes": db,
                "operations": ops,
                "detail": detail,
            })
            artifacts = {"prediction": prediction}
            extra = dict(detail)
        else:
            artifacts = {}
            extra = detail
        result = new(result_cls)
        result.__dict__ = {
            "backend": "analytic",
            "system": "smache",
            "design": design,
            "iterations": it,
            "cycles": cyc,
            "dram_words_read": wr,
            "dram_words_written": ww,
            "dram_bytes": db,
            "operations": ops,
            "output": None,
            "extra": extra,
            "perf": {},
            "artifacts": artifacts,
        }
        out[index] = result


def _assemble_baseline(
    out: List[Optional[EvaluationResult]],
    indices: Tuple[int, ...],
    designs: Tuple[CompiledDesign, ...],
    lists: BaselineLists,
    iterations: List[int],
    with_artifacts: bool,
) -> None:
    new = object.__new__
    result_cls = EvaluationResult
    prediction_cls = PerformancePrediction
    set_frozen = object.__setattr__
    for index, design, it, st, rt, bc, dr, cyc, wr, ww, db, ops, npts in zip(
        indices, designs, iterations, *lists
    ):
        detail = {
            "sequential_accesses": st,
            "random_accesses": rt,
            "bus_cycles": bc,
            "per_instance_drain": dr,
        }
        if with_artifacts:
            prediction = new(prediction_cls)
            set_frozen(prediction, "__dict__", {
                "system": "baseline",
                "cycles": cyc,
                "iterations": it,
                "grid_points": npts,
                "dram_words_read": wr,
                "dram_words_written": ww,
                "dram_bytes": db,
                "operations": ops,
                "detail": detail,
            })
            artifacts = {"prediction": prediction}
            extra = dict(detail)
        else:
            artifacts = {}
            extra = detail
        result = new(result_cls)
        result.__dict__ = {
            "backend": "analytic",
            "system": "baseline",
            "design": design,
            "iterations": it,
            "cycles": cyc,
            "dram_words_read": wr,
            "dram_words_written": ww,
            "dram_bytes": db,
            "operations": ops,
            "output": None,
            "extra": extra,
            "perf": {},
            "artifacts": artifacts,
        }
        out[index] = result


class EngineCacheInfo(NamedTuple):
    """Counters of an :class:`AnalyticBatchEngine`'s three cache layers.

    The first four fields mirror :class:`~repro.pipeline.cache.CacheInfo`
    exactly (they are the knob cache's counters, one entry per distinct
    design/system), so existing consumers of the engine's ``cache_info()``
    keep reading the same numbers; the remaining fields expose the
    packed-session LRU and the per-session fold memo, which is what a
    long-running serving layer watches (`/stats` surfaces this whole tuple).
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int
    session_hits: int
    session_misses: int
    session_evictions: int
    session_maxsize: int
    session_currsize: int
    fold_hits: int
    fold_misses: int

    @property
    def session_hit_rate(self) -> float:
        """Fraction of ``price_batch`` calls answered by a packed session."""
        lookups = self.session_hits + self.session_misses
        return self.session_hits / lookups if lookups else 0.0

    @property
    def fold_hit_rate(self) -> float:
        """Fraction of session folds answered by the fold memo."""
        lookups = self.fold_hits + self.fold_misses
        return self.fold_hits / lookups if lookups else 0.0


class _SessionEntry:
    """One packed batch: strong refs pin the identity keys, columns persist."""

    __slots__ = ("problems", "cache", "designs", "packed", "folded")

    def __init__(self, problems, cache, designs) -> None:
        self.problems = problems
        self.cache = cache
        self.designs = designs
        #: Per system: the list of packed design-side column groups.
        self.packed: Dict[str, List[object]] = {}
        #: Per request signature: the folds' outputs as native lists, one per
        #: group.  The fold is a pure function of the packed columns and the
        #: scalar request knobs in the key, so identical re-prices skip the
        #: array work too — only result objects are built fresh each call.
        self.folded: "OrderedDict[tuple, List[object]]" = OrderedDict()


class AnalyticBatchEngine:
    """Prices batches of analytic requests through the vectorized folds.

    One engine holds one bounded knob cache plus a bounded packed-session
    cache; the process-wide instance lives on the registered
    :class:`~repro.pipeline.backends.AnalyticBackend`, and a
    :class:`~repro.api.Workbench` session keeps its own so repeated
    ``evaluate_batch`` calls reuse the packed columns.
    """

    def __init__(self, max_entries: int = 1024, max_sessions: int = 32) -> None:
        self._knobs = PlanCache(max_entries=max_entries)
        self._sessions: "OrderedDict[tuple, _SessionEntry]" = OrderedDict()
        self._max_sessions = max_sessions
        # One engine may be shared by every connection of the evaluation
        # service (repro.serve), so the identity-keyed session LRU and the
        # per-session fold memos are guarded like PlanCache guards its
        # entries.  Folds and packing run outside the lock (pure functions);
        # when two threads race, the loser adopts the winner's entry.
        self._lock = Lock()
        self._session_hits = 0
        self._session_misses = 0
        self._session_evictions = 0
        self._fold_hits = 0
        self._fold_misses = 0

    def cache_info(self) -> EngineCacheInfo:
        """Counters of every cache layer the engine owns.

        The first four fields are the knob cache's
        :class:`~repro.pipeline.cache.CacheInfo` (one entry per distinct
        design/system), unchanged from earlier releases; the session and
        fold fields track the packed-session LRU behind :meth:`price_batch`.
        """
        knobs = self._knobs.cache_info()
        with self._lock:
            return EngineCacheInfo(
                hits=knobs.hits,
                misses=knobs.misses,
                maxsize=knobs.maxsize,
                currsize=knobs.currsize,
                session_hits=self._session_hits,
                session_misses=self._session_misses,
                session_evictions=self._session_evictions,
                session_maxsize=self._max_sessions,
                session_currsize=len(self._sessions),
                fold_hits=self._fold_hits,
                fold_misses=self._fold_misses,
            )

    def clear(self) -> None:
        """Drop packed knobs and sessions (benchmarks measuring cold packs)."""
        self._knobs.clear()
        with self._lock:
            self._sessions.clear()
            self._session_hits = 0
            self._session_misses = 0
            self._session_evictions = 0
            self._fold_hits = 0
            self._fold_misses = 0

    # ------------------------------------------------------------------ #
    def price(
        self, items: Sequence[PricingItem], with_artifacts: bool = True
    ) -> List[EvaluationResult]:
        """Price every item, returning results **in input order**.

        Items are regrouped by plan-structure signature internally; the
        result list is re-scattered so ``out[i]`` always answers
        ``items[i]`` — an asserted invariant, not a convention.  With
        ``with_artifacts=False`` the per-point
        :class:`~repro.pipeline.analytic.PerformancePrediction` artifact is
        skipped (runners that strip artifacts anyway need not build them).
        """
        items = list(items)
        if not items:
            # An empty batch has nothing to group; building zero-length
            # packed columns would only exercise NumPy edge cases for free.
            return []
        out: List[Optional[EvaluationResult]] = [None] * len(items)
        groups: Dict[tuple, List[_Row]] = {}
        for index, (design, request) in enumerate(items):
            kernel = request.resolve_kernel(design)
            timing = request.dram_timing or DRAMTiming()
            knobs = self._knobs_for(design, request.system)
            if request.system == "smache":
                signature = ("smache", len(knobs.starts))
            else:
                signature = ("baseline",)
            groups.setdefault(signature, []).append(
                (index, design, request, kernel.latency, kernel.ops_per_point, timing, knobs)
            )
        for signature, rows in groups.items():
            indices = [row[0] for row in rows]
            designs = [row[1] for row in rows]
            knobs = [row[6] for row in rows]
            klat = [row[3] for row in rows]
            kops = [row[4] for row in rows]
            iterations = [row[2].iterations for row in rows]
            req_cols = RequestCols(
                it=_column(iterations),
                swc=_column([row[5].stream_word_cycles for row in rows]),
                rac=_column([row[5].random_access_cycles for row in rows]),
                read_latency=_column([row[5].read_latency for row in rows]),
                write_through=np.asarray([row[2].write_through for row in rows], dtype=bool),
                # Already resolved per row (request override or problem default).
                kernel_latency=None,
                kernel_ops=None,
            )
            if signature[0] == "smache":
                cols = _pack_smache(indices, designs, knobs, klat, kops)
                lists = _lists_smache(cols, _fold_smache(cols, req_cols))
                _assemble_smache(
                    out, cols.indices, cols.designs, lists, iterations, with_artifacts
                )
            else:
                cols = _pack_baseline(indices, designs, knobs, klat, kops)
                lists = _lists_baseline(cols, _fold_baseline(cols, req_cols))
                _assemble_baseline(
                    out, cols.indices, cols.designs, lists, iterations, with_artifacts
                )
        assert all(r is not None for r in out), (
            "vectorized pricing must fill every input slot exactly once"
        )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    def price_batch(
        self,
        problems: Sequence[object],
        request: EvaluationRequest,
        cache: Optional[PlanCache] = plan_cache,
        with_artifacts: bool = True,
    ) -> List[EvaluationResult]:
        """Price one shared request over a problem list, session-cached.

        The batch facade behind ``Workbench.evaluate_batch``: the first call
        for a given problem list compiles (via
        :func:`~repro.pipeline.compile.compile_batch`), extracts knobs and
        packs design-side columns; every later call with the *same problem
        objects* — under any iterations / DRAM timing / write policy —
        reuses the packed columns and only broadcasts the request.  Results
        come back in input order, same invariant as :meth:`price`.

        ``cache=None`` (an explicit cache bypass) disables the session memo
        too: every call recompiles, exactly like the scalar path.
        """
        problems = list(problems)
        if not problems:
            return []
        if cache is None:
            from repro.pipeline.compile import compile_batch

            designs = compile_batch(problems, cache=None)
            return self.price([(d, request) for d in designs], with_artifacts)

        key = (id(cache), tuple(map(id, problems)))
        with self._lock:
            entry = self._sessions.get(key)
            if entry is not None:
                self._sessions.move_to_end(key)
                self._session_hits += 1
        if entry is None:
            from repro.pipeline.compile import compile_batch

            designs = compile_batch(problems, cache=cache)
            with self._lock:
                entry = self._sessions.get(key)
                if entry is not None:
                    # A concurrent caller packed the same list first.
                    self._sessions.move_to_end(key)
                    self._session_hits += 1
                else:
                    self._session_misses += 1
                    entry = _SessionEntry(problems, cache, designs)
                    self._sessions[key] = entry
                    while len(self._sessions) > self._max_sessions:
                        self._sessions.popitem(last=False)
                        self._session_evictions += 1

        system = request.system
        with self._lock:
            groups = entry.packed.get(system)
        if groups is None:
            groups = self._pack_session(entry.designs, system)
            with self._lock:
                groups = entry.packed.setdefault(system, groups)

        m = len(problems)
        timing = request.dram_timing or DRAMTiming()
        override = request.kernel
        # Everything the folds consume besides the packed columns.  Identical
        # knobs give identical fold outputs, so the native-list form is
        # memoized per signature; result objects are still built fresh.
        fold_key = (
            system,
            request.iterations,
            request.write_through,
            timing.stream_word_cycles,
            timing.random_access_cycles,
            timing.read_latency,
            None if override is None else (override.latency, override.ops_per_point),
        )
        with self._lock:
            folded = entry.folded.get(fold_key)
            if folded is not None:
                entry.folded.move_to_end(fold_key)
                self._fold_hits += 1
            else:
                self._fold_misses += 1
        if folded is None:
            folded = []
            for cols in groups:
                g = len(cols.indices)
                req_cols = RequestCols(
                    it=np.full(g, request.iterations, dtype=np.int64),
                    swc=np.full(g, timing.stream_word_cycles, dtype=np.int64),
                    rac=np.full(g, timing.random_access_cycles, dtype=np.int64),
                    read_latency=np.full(g, timing.read_latency, dtype=np.int64),
                    write_through=np.full(g, request.write_through, dtype=bool),
                    kernel_latency=(
                        np.full(g, override.latency, dtype=np.int64)
                        if override is not None
                        else None
                    ),
                    kernel_ops=(
                        np.full(g, override.ops_per_point, dtype=np.int64)
                        if override is not None
                        else None
                    ),
                )
                if system == "smache":
                    folded.append(_lists_smache(cols, _fold_smache(cols, req_cols)))
                else:
                    folded.append(_lists_baseline(cols, _fold_baseline(cols, req_cols)))
            with self._lock:
                existing = entry.folded.get(fold_key)
                if existing is not None:
                    folded = existing
                else:
                    entry.folded[fold_key] = folded
                    while len(entry.folded) > _MAX_FOLDS_PER_SESSION:
                        entry.folded.popitem(last=False)

        out: List[Optional[EvaluationResult]] = [None] * m
        assemble = _assemble_smache if system == "smache" else _assemble_baseline
        for cols, lists in zip(groups, folded):
            iterations = [request.iterations] * len(cols.indices)
            assemble(out, cols.indices, cols.designs, lists, iterations, with_artifacts)
        # The packed groups partition range(m) by construction (enumerate in
        # _pack_session), so a total-count check is a full fill/no-collision
        # check without a per-element scan.
        assert sum(len(cols.indices) for cols in groups) == m, (
            "vectorized pricing must fill every input slot exactly once"
        )
        return out  # type: ignore[return-value]

    def _pack_session(self, designs: Sequence[CompiledDesign], system: str):
        """Pack design-side columns for one system, grouped by signature."""
        grouped: Dict[tuple, List[int]] = {}
        knobs = [self._knobs_for(design, system) for design in designs]
        for index, k in enumerate(knobs):
            signature = ("smache", len(k.starts)) if system == "smache" else ("baseline",)
            grouped.setdefault(signature, []).append(index)
        packed = []
        for signature, indices in grouped.items():
            group_designs = [designs[i] for i in indices]
            group_knobs = [knobs[i] for i in indices]
            kernels = [d.problem.effective_kernel for d in group_designs]
            klat = [k.latency for k in kernels]
            kops = [k.ops_per_point for k in kernels]
            pack = _pack_smache if signature[0] == "smache" else _pack_baseline
            packed.append(pack(indices, group_designs, group_knobs, klat, kops))
        return packed

    # ------------------------------------------------------------------ #
    def _knobs_for(self, design: CompiledDesign, system: str):
        builder = _smache_knobs if system == "smache" else _baseline_knobs
        problem = design.problem
        if not problem.is_cacheable:
            # Custom iteration patterns compile outside the plan cache; their
            # knobs stay outside the knob cache for the same reason.
            return builder(design)
        key = (system,) + problem.cache_key()
        return self._knobs.get_or_compile(key, lambda: builder(design))
