"""Pluggable evaluation backends over compiled designs.

A :class:`Backend` turns a :class:`~repro.pipeline.compile.CompiledDesign`
plus an :class:`EvaluationRequest` into an :class:`EvaluationResult`.  All
backends share one result shape so consumers (eval harness, DSE sweeps,
benchmarks) can switch fidelity with a string:

* ``simulate``  — the cycle-accurate systems of :mod:`repro.arch.system`;
* ``reference`` — NumPy golden execution (output values, no timing);
* ``analytic``  — the closed-form model of :mod:`repro.pipeline.analytic`;
* ``cost``      — memory cost estimate and synthesis report only;
* ``hdl``       — the generated Verilog project of :mod:`repro.hdlgen`.

New backends register with :func:`register_backend`; workloads plug in at the
:class:`~repro.pipeline.problem.StencilProblem` seam.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import SmacheConfig
from repro.memory.dram import DRAMTiming
from repro.reference.kernels import StencilKernel
from repro.reference.stencil_exec import make_test_grid, reference_run
from repro.pipeline.cache import PlanCache, plan_cache
from repro.pipeline.compile import CompiledDesign
from repro.pipeline.compile import compile as compile_problem
from repro.pipeline.problem import StencilProblem

#: The two systems an evaluation can target.
SYSTEMS = ("smache", "baseline")


@dataclass(frozen=True)
class EvaluationRequest:
    """What to run a compiled design on (workload, fidelity knobs)."""

    system: str = "smache"
    iterations: int = 1
    kernel: Optional[StencilKernel] = None
    input_grid: Optional[np.ndarray] = field(default=None, compare=False)
    input_kind: str = "ramp"
    dram_timing: Optional[DRAMTiming] = None
    write_through: bool = True
    max_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {SYSTEMS}")
        if self.iterations < 0:
            raise ValueError("iterations must be non-negative")

    def resolve_kernel(self, design: CompiledDesign) -> StencilKernel:
        """The kernel to run: the request's override or the problem's own."""
        return self.kernel if self.kernel is not None else design.problem.effective_kernel

    def resolve_input(self, design: CompiledDesign) -> np.ndarray:
        """The input grid: the request's array or a deterministic test grid."""
        if self.input_grid is not None:
            return np.asarray(self.input_grid, dtype=np.float64)
        return make_test_grid(design.problem.grid, kind=self.input_kind)


@dataclass
class EvaluationResult:
    """One backend's verdict on one compiled design.

    Timing fields are ``None`` for backends that do not produce them (the
    ``reference`` backend has no clock; ``cost``/``hdl`` have no workload).
    """

    backend: str
    system: str
    design: CompiledDesign
    iterations: int = 0
    cycles: Optional[int] = None
    dram_words_read: Optional[int] = None
    dram_words_written: Optional[int] = None
    dram_bytes: Optional[int] = None
    operations: Optional[int] = None
    output: Optional[np.ndarray] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Backend-side performance telemetry (e.g. the simulate backend's
    #: scheduler counters: engine mode, ticks executed, cycles skipped).
    #: Deliberately *not* part of ``extra``: campaign records fold ``extra``
    #: into their canonical (byte-identical across engines and runners)
    #: output, while ``perf`` lands in the non-deterministic ``meta`` side.
    perf: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, object] = field(default_factory=dict)

    @property
    def dram_traffic_kib(self) -> Optional[float]:
        """Total DRAM traffic in KiB (``None`` for workload-free backends)."""
        return self.dram_bytes / 1024.0 if self.dram_bytes is not None else None

    def execution_time_us(self, frequency_mhz: Optional[float] = None) -> float:
        """Execution time in microseconds (defaults to the design's Fmax)."""
        if self.cycles is None:
            raise ValueError(f"backend {self.backend!r} produced no cycle count")
        if frequency_mhz is not None:
            fmax, source = frequency_mhz, "frequency_mhz"
        else:
            fmax, source = self.design.fmax_mhz, "the design's estimated Fmax"
        if not fmax > 0:  # also rejects NaN, instead of a ZeroDivisionError below
            raise ValueError(f"{source} must be positive, got {fmax!r}")
        return self.cycles / fmax

    def mops(self, frequency_mhz: Optional[float] = None) -> float:
        """Millions of kernel operations per second."""
        time_us = self.execution_time_us(frequency_mhz)
        if not time_us or self.operations is None:
            return 0.0
        return self.operations / time_us


class Backend:
    """Base class: evaluate a compiled design under a request."""

    #: Registry name; subclasses must override.
    name: str = "abstract"

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        """Produce an :class:`EvaluationResult` (must be overridden)."""
        raise NotImplementedError

    def evaluate_many(
        self,
        items: Sequence[Tuple[CompiledDesign, EvaluationRequest]],
        with_artifacts: bool = True,
    ) -> List[EvaluationResult]:
        """Evaluate many (design, request) pairs, in input order.

        The default is the obvious loop over :meth:`evaluate`; backends with
        a real batch substrate override it (:class:`AnalyticBackend` routes
        through the vectorized engine of
        :mod:`repro.pipeline.analytic_batch`).  ``with_artifacts=False``
        permits skipping heavyweight per-point artifacts that the caller
        would strip anyway.
        """
        results = []
        for design, request in items:
            result = self.evaluate(design, request)
            if not with_artifacts and result.artifacts:
                result = replace(result, artifacts={})
            results.append(result)
        return results


# --------------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------------- #
_BACKENDS: Dict[str, Callable[[], Backend]] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register (or replace) a backend under ``name``."""
    _BACKENDS[name] = factory
    _INSTANCES.pop(name, None)


def get_backend(name: str) -> Backend:
    """Look up a backend instance by name."""
    if name not in _BACKENDS:
        raise KeyError(f"unknown backend {name!r}; choose from {available_backends()}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _BACKENDS[name]()
    return _INSTANCES[name]


def available_backends() -> List[str]:
    """Names of every registered backend, sorted."""
    return sorted(_BACKENDS)


# --------------------------------------------------------------------------- #
# built-in backends
# --------------------------------------------------------------------------- #
class SimulateBackend(Backend):
    """Cycle-accurate simulation of the Smache or baseline system."""

    name = "simulate"

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        from repro.arch.system import BaselineSystem, SmacheSystem

        kernel = request.resolve_kernel(design)
        grid_in = request.resolve_input(design)
        if request.system == "smache":
            system = SmacheSystem(
                design.config,
                kernel=kernel,
                iterations=request.iterations,
                dram_timing=request.dram_timing,
                plan=design.plan,
                partition=design.partition,
                write_through=request.write_through,
            )
            default_max = 50_000_000
        else:
            system = BaselineSystem(
                design.config,
                kernel=kernel,
                iterations=request.iterations,
                dram_timing=request.dram_timing,
            )
            default_max = 100_000_000
        system.load_input(grid_in)
        sim = system.run(max_cycles=request.max_cycles or default_max)
        perf = {f"sim_{key}": value for key, value in sim.engine_stats.items()}
        return EvaluationResult(
            backend=self.name,
            system=request.system,
            design=design,
            iterations=request.iterations,
            cycles=sim.cycles,
            dram_words_read=sim.dram_words_read,
            dram_words_written=sim.dram_words_written,
            dram_bytes=sim.dram_bytes,
            operations=sim.operations,
            output=sim.output,
            extra=dict(sim.extra),
            perf=perf,
            artifacts={"simulation": sim},
        )


class ReferenceBackend(Backend):
    """NumPy golden execution: exact output values, no timing."""

    name = "reference"

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        problem = design.problem
        kernel = request.resolve_kernel(design)
        output = reference_run(
            request.resolve_input(design),
            problem.grid,
            problem.stencil,
            problem.boundary,
            kernel,
            iterations=request.iterations,
        )
        return EvaluationResult(
            backend=self.name,
            system=request.system,
            design=design,
            iterations=request.iterations,
            operations=kernel.ops_per_point * problem.grid.size * request.iterations,
            output=output,
        )


class AnalyticBackend(Backend):
    """Closed-form performance prediction (no clock, no output grid).

    Single evaluations go through the scalar model of
    :mod:`repro.pipeline.analytic` — the bitwise reference.  Batches go
    through :attr:`engine`, the process-shared vectorized pricing engine
    (:class:`repro.pipeline.analytic_batch.AnalyticBatchEngine`), whose
    bounded knob cache persists across calls; ``REPRO_ANALYTIC_BATCH=0``
    routes batches back through the scalar loop.
    """

    name = "analytic"

    def __init__(self) -> None:
        from repro.pipeline.analytic_batch import AnalyticBatchEngine

        #: The shared vectorized pricing engine (bounded signature cache).
        self.engine = AnalyticBatchEngine()

    def evaluate_many(
        self,
        items: Sequence[Tuple[CompiledDesign, EvaluationRequest]],
        with_artifacts: bool = True,
    ) -> List[EvaluationResult]:
        from repro.pipeline.analytic_batch import batching_enabled

        if not batching_enabled():
            return super().evaluate_many(items, with_artifacts=with_artifacts)
        return self.engine.price(items, with_artifacts=with_artifacts)

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        from repro.pipeline.analytic import predict_performance

        prediction = predict_performance(
            design,
            system=request.system,
            iterations=request.iterations,
            kernel=request.resolve_kernel(design),
            timing=request.dram_timing,
            write_through=request.write_through,
        )
        return EvaluationResult(
            backend=self.name,
            system=request.system,
            design=design,
            iterations=request.iterations,
            cycles=prediction.cycles,
            dram_words_read=prediction.dram_words_read,
            dram_words_written=prediction.dram_words_written,
            dram_bytes=prediction.dram_bytes,
            operations=prediction.operations,
            extra=dict(prediction.detail),
            artifacts={"prediction": prediction},
        )


class CostBackend(Backend):
    """Memory cost estimate and synthesis report, no workload execution.

    Besides the Table-I cost split and the synthesis estimate, the extras
    carry the planner comparison used by the A3 ablation: the elements of the
    chosen plan, of the paper's Algorithm 1 and of a stream-only window wide
    enough for the full offset span.
    """

    name = "cost"

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        from repro.core.planner import paper_algorithm1

        offsets = [o for r in design.ranges for o in r.stream_offsets]
        stream_only = (max(offsets) - min(offsets)) if offsets else 0
        return EvaluationResult(
            backend=self.name,
            system=request.system,
            design=design,
            extra={
                "r_total_bits": design.cost.r_total_bits,
                "b_total_bits": design.cost.b_total_bits,
                "total_bits": design.cost.total_bits,
                "fmax_mhz": design.synthesis.fmax_mhz,
                "alms": design.synthesis.alms,
                "registers": design.synthesis.registers,
                "bram_bits": design.synthesis.bram_bits,
                "plan_elements": design.plan.total_cost_elements,
                "algorithm1_elements": paper_algorithm1(design.ranges).total_elements,
                "stream_only_elements": stream_only,
            },
            artifacts={"cost": design.cost, "synthesis": design.synthesis},
        )


class HdlBackend(Backend):
    """Verilog skeleton generation for the compiled design."""

    name = "hdl"

    def evaluate(self, design: CompiledDesign, request: EvaluationRequest) -> EvaluationResult:
        from repro.hdlgen import generate_project

        project = generate_project(design.config)
        return EvaluationResult(
            backend=self.name,
            system=request.system,
            design=design,
            extra={"n_files": len(project.files)},
            artifacts={"project": project},
        )


for _backend_cls in (SimulateBackend, ReferenceBackend, AnalyticBackend, CostBackend, HdlBackend):
    register_backend(_backend_cls.name, _backend_cls)


# --------------------------------------------------------------------------- #
# facade
# --------------------------------------------------------------------------- #
ProblemLike = Union[StencilProblem, SmacheConfig, CompiledDesign]


def _as_design(problem: ProblemLike, cache: Optional[PlanCache]) -> CompiledDesign:
    if isinstance(problem, CompiledDesign):
        return problem
    if isinstance(problem, SmacheConfig):
        problem = StencilProblem.from_config(problem)
    return compile_problem(problem, cache=cache)


def evaluate(
    problem: ProblemLike,
    backend: str = "simulate",
    request: Optional[EvaluationRequest] = None,
    cache: Optional[PlanCache] = plan_cache,
    **request_overrides,
) -> EvaluationResult:
    """Compile (memoized) and evaluate one problem with the named backend.

    ``problem`` may be a :class:`StencilProblem`, a plain
    :class:`SmacheConfig` or an already-compiled design.  Request fields are
    given either as a full :class:`EvaluationRequest` or as keyword overrides
    (``iterations=100``, ``system="baseline"``, ...).
    """
    design = _as_design(problem, cache)
    req = request or EvaluationRequest()
    if request_overrides:
        req = replace(req, **request_overrides)
    return get_backend(backend).evaluate(design, req)


def batch_evaluate(
    problems: Sequence[ProblemLike],
    backend: str = "analytic",
    request: Optional[EvaluationRequest] = None,
    cache: Optional[PlanCache] = plan_cache,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    engine=None,
    with_artifacts: bool = True,
    **request_overrides,
) -> List[EvaluationResult]:
    """Evaluate many problems with one backend (the sweep batch layer).

    This is the engine behind :meth:`repro.api.Workbench.evaluate_batch` and
    the deprecated module-level :func:`evaluate_batch` shim.

    Defaults to the ``analytic`` backend: sweeps price the full space with the
    closed-form model and re-simulate only the designs that matter (see
    :func:`repro.dse.explorer.explore_performance`).

    Serial analytic batches take the vectorized fast lane: the whole batch is
    compiled through :func:`~repro.pipeline.compile.compile_batch` and priced
    in one :class:`~repro.pipeline.analytic_batch.AnalyticBatchEngine` call —
    bitwise-equal per point to the scalar loop, results in input order (an
    asserted engine invariant).  Because the whole batch shares one request,
    pricing goes through the engine's packed-session cache
    (:meth:`~repro.pipeline.analytic_batch.AnalyticBatchEngine.price_batch`):
    re-pricing the same problem list under new request knobs reuses the
    packed design columns and skips compilation entirely.  ``engine`` selects
    a specific pricing engine (a :class:`~repro.api.Workbench` session passes
    its own so packed columns persist across calls); by default the
    registered backend's shared engine is used.  ``with_artifacts=False``
    skips the per-point :class:`~repro.pipeline.analytic.PerformancePrediction`
    artifact — metrics and ``extra`` are unchanged.
    ``REPRO_ANALYTIC_BATCH=0`` restores the scalar loop.

    With ``jobs > 1`` the batch is sharded over a process pool (see
    :mod:`repro.sweep.runners`): each worker compiles with its own warm plan
    cache and evaluation happens fully in the worker, so compilation — the
    expensive part of broad analytic sweeps — parallelises too.  Results come
    back in input order; heavyweight ``artifacts`` (e.g. live simulation
    objects) are dropped in the parallel path, but metrics, outputs and the
    compiled design survive the process boundary.  Worker processes can only
    share the process-global plan cache, so a non-default ``cache`` (a custom
    instance, or ``None`` to bypass caching) keeps the batch on the serial
    path regardless of ``jobs``.
    """
    req = request or EvaluationRequest()
    if request_overrides:
        req = replace(req, **request_overrides)
    if jobs <= 1 or cache is not plan_cache:
        from repro.pipeline.analytic_batch import batching_enabled

        backend_obj = get_backend(backend)
        if (
            len(problems) > 1
            # A stand-in or subclass registered as ``analytic`` may override
            # ``evaluate``; the lane would silently bypass it, so require the
            # exact class.
            and type(backend_obj) is AnalyticBackend
            and batching_enabled()
        ):
            pricing = engine if engine is not None else backend_obj.engine
            results = pricing.price_batch(
                list(problems), req, cache=cache, with_artifacts=with_artifacts
            )
            # The engine's input-order invariant, re-checked at the facade:
            # result i must answer problem i even after signature regrouping.
            assert len(results) == len(problems), (
                "batch pricing results misaligned with input order"
            )
            return results
        results = [evaluate(p, backend=backend, request=req, cache=cache) for p in problems]
        if not with_artifacts:
            results = [
                replace(r, artifacts={}) if r.artifacts else r for r in results
            ]
        return results
    from repro.sweep.runners import ProcessPoolRunner
    from repro.sweep.spec import SweepPoint

    points = []
    for p in problems:
        if isinstance(p, CompiledDesign):
            p = p.problem
        elif isinstance(p, SmacheConfig):
            p = StencilProblem.from_config(p)
        points.append(SweepPoint(problem=p, backend=backend, request=req))
    runner = ProcessPoolRunner(jobs=jobs, chunksize=chunksize)
    records = runner.run(points, keep_results=True)
    return [r.result for r in records]


def evaluate_batch(
    problems: Sequence[ProblemLike],
    backend: str = "analytic",
    request: Optional[EvaluationRequest] = None,
    cache: Optional[PlanCache] = plan_cache,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    **request_overrides,
) -> List[EvaluationResult]:
    """Deprecated shim over :func:`batch_evaluate`.

    .. deprecated::
        Use :meth:`repro.api.Workbench.evaluate_batch`, which carries the
        session's cache and runner policy instead of per-call arguments.
    """
    warnings.warn(
        "evaluate_batch() is deprecated; use repro.api.Workbench().evaluate_batch()",
        DeprecationWarning,
        stacklevel=2,
    )
    return batch_evaluate(
        problems,
        backend=backend,
        request=request,
        cache=cache,
        jobs=jobs,
        chunksize=chunksize,
        **request_overrides,
    )
