"""The keyed plan cache behind :func:`repro.pipeline.compile`.

Compiling a problem (range partitioning, the buffer planner, the hybrid
partition, the cost and synthesis models) is pure — the result depends only on
the problem description — so it is memoized.  Sweeps that revisit the same
problem (DSE objective comparisons, the eval harness regenerating several
tables from one configuration, repeated benchmark rounds) then plan once and
hit the cache for every later use.

The cache is a bounded LRU: the least recently used design is evicted once
``max_entries`` distinct problems have been compiled.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock
from typing import Callable, Hashable, List, NamedTuple, Optional, Sequence, Tuple


class CacheInfo(NamedTuple):
    """``functools.lru_cache``-style counters of a :class:`PlanCache`.

    The same shape is reported per worker process by campaign runs (see
    :mod:`repro.sweep`), so serial and parallel sweeps surface cache
    behaviour uniformly.
    """

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`PlanCache` at one point in time."""

    hits: int
    misses: int
    entries: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded, thread-safe LRU cache from problem keys to compiled designs."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[Hashable, ...], object]" = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    def get_or_compile(self, key: Tuple[Hashable, ...], build: Callable[[], object]) -> object:
        """Return the cached design for ``key``, compiling it on a miss.

        ``build`` runs outside the lock (compilation can take seconds for
        million-element grids); if two threads race on the same key the loser's
        result is discarded in favour of the winner's.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
        design = build()
        with self._lock:
            winner = self._entries.get(key)
            if winner is not None:
                self._entries.move_to_end(key)
                return winner
            self._entries[key] = design
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return design

    def get_or_compile_batch(
        self,
        keys: Sequence[Tuple[Hashable, ...]],
        builds: Sequence[Callable[[], object]],
    ) -> List[object]:
        """Resolve many keys at once, compiling each distinct miss exactly once.

        The batch counting contract: a batch of N lookups sharing one
        uncached key costs **one miss plus N−1 hits** — the first occurrence
        compiles, every duplicate is answered by that single compilation —
        instead of the N misses a naive per-key loop would record.  Results
        come back in input order; like :meth:`get_or_compile`, builds run
        outside the lock and a concurrent winner's entry is preferred.
        """
        if len(keys) != len(builds):
            raise ValueError("keys and builds must have the same length")
        results: List[Optional[object]] = [None] * len(keys)
        pending: "OrderedDict[Tuple[Hashable, ...], List[int]]" = OrderedDict()
        with self._lock:
            for index, key in enumerate(keys):
                if key in pending:
                    self._hits += 1
                    pending[key].append(index)
                    continue
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    results[index] = cached
                else:
                    self._misses += 1
                    pending[key] = [index]
        for key, indices in pending.items():
            built = builds[indices[0]]()
            with self._lock:
                winner = self._entries.get(key)
                if winner is not None:
                    self._entries.move_to_end(key)
                    built = winner
                else:
                    self._entries[key] = built
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self._evictions += 1
            for index in indices:
                results[index] = built
        return results

    def peek(self, key: Tuple[Hashable, ...]) -> Optional[object]:
        """Return the cached design without affecting LRU order or counters."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self) -> CacheStats:
        """A snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
            )

    def cache_info(self) -> CacheInfo:
        """``functools``-style counters: hits, misses, maxsize, currsize."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.max_entries,
                currsize=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache used by :func:`repro.pipeline.compile` by default.
plan_cache = PlanCache()


def clear_plan_cache() -> None:
    """Reset the process-wide plan cache (used by benchmarks and tests)."""
    plan_cache.clear()
