"""``compile()``: from a stencil problem to a fully planned, priced design.

This is the single seam every consumer goes through.  One call runs

1. range partitioning (:func:`repro.core.ranges.partition_into_ranges`),
2. the buffer-configuration planner (:func:`repro.core.planner.plan_buffers`),
3. the hybrid register/BRAM partition (:func:`repro.core.partition`),
4. the Table-I memory cost model (:func:`repro.core.cost_model`), and
5. the analytical synthesis estimator (:func:`repro.fpga.synthesis`),

and memoizes the resulting :class:`CompiledDesign` in the keyed plan cache,
so sweeps re-planning the same problem are free after the first hit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.buffers import BufferPlan
from repro.core.config import SmacheConfig
from repro.core.cost_model import MemoryCostEstimate, estimate_memory_cost
from repro.core.partition import HybridPartition, partition_for_plan
from repro.core.planner import plan_buffers
from repro.core.ranges import StreamRange, classify_cases, partition_into_ranges
from repro.fpga.synthesis import SynthesisReport, synthesize_smache
from repro.pipeline.cache import PlanCache, plan_cache
from repro.pipeline.problem import StencilProblem


@dataclass(frozen=True)
class CompiledDesign:
    """Everything derived from one problem: plan, partition, cost, synthesis."""

    problem: StencilProblem
    config: SmacheConfig
    ranges: Tuple[StreamRange, ...]
    n_cases: int
    plan: BufferPlan
    partition: HybridPartition
    cost: MemoryCostEstimate
    synthesis: SynthesisReport

    # ------------------------------------------------------------------ #
    @property
    def n_ranges(self) -> int:
        """Number of stream ranges of the problem."""
        return len(self.ranges)

    @property
    def total_memory_bits(self) -> int:
        """Estimated on-chip memory of the design (registers + BRAM)."""
        return self.cost.total_bits

    @property
    def fmax_mhz(self) -> float:
        """Estimated clock frequency from the synthesis model."""
        return self.synthesis.fmax_mhz

    def describe(self) -> str:
        """Multi-line summary used by examples and sweep reports."""
        lines = [
            f"CompiledDesign for {self.problem.describe()}",
            f"  cases/ranges   : {self.n_cases} cases over {self.n_ranges} ranges",
            self.plan.describe(),
            f"  stream mapping : {self.partition.describe()}",
            f"  memory cost    : {self.cost.r_total_bits} register bits, "
            f"{self.cost.b_total_bits} BRAM bits",
            f"  est. Fmax      : {self.fmax_mhz:.1f} MHz",
        ]
        return "\n".join(lines)


def _build(problem: StencilProblem) -> CompiledDesign:
    """Uncached compilation of one problem."""
    config = problem.to_config()
    ranges = tuple(
        partition_into_ranges(problem.grid, problem.stencil, problem.boundary, problem.pattern)
    )
    plan = plan_buffers(
        problem.grid,
        problem.stencil,
        problem.boundary,
        problem.pattern,
        word_bits=problem.word_bits,
        max_stream_reach=problem.max_stream_reach,
        max_total_bits=problem.max_total_bits,
    )
    partition = partition_for_plan(
        plan, problem.mode, register_elements=problem.register_elements
    )
    cost = estimate_memory_cost(plan, problem.mode, partition=partition)
    synthesis = synthesize_smache(
        config, plan=plan, partition=partition, kernel=problem.effective_kernel
    )
    return CompiledDesign(
        problem=problem,
        config=config,
        ranges=ranges,
        n_cases=len(classify_cases(ranges)),
        plan=plan,
        partition=partition,
        cost=cost,
        synthesis=synthesis,
    )


def compile(
    problem: StencilProblem,
    cache: Optional[PlanCache] = plan_cache,
) -> CompiledDesign:
    """Compile ``problem`` into a :class:`CompiledDesign`, memoized per problem.

    ``cache`` defaults to the process-wide plan cache; pass ``None`` to force
    a fresh compilation.  Problems carrying a custom non-contiguous iteration
    pattern always bypass the cache (see :attr:`StencilProblem.is_cacheable`).
    """
    if isinstance(problem, SmacheConfig):
        problem = StencilProblem.from_config(problem)
    if cache is None or not problem.is_cacheable:
        return _build(problem)
    design = cache.get_or_compile(problem.cache_key(), lambda: _build(problem))
    if design.problem != problem:
        # A cache hit from an equivalent problem under a different name (the
        # key ignores labels): share the compiled artifacts, keep the caller's
        # identity on the wrapper.
        design = replace(design, problem=problem, config=problem.to_config())
    return design


def compile_batch(
    problems: Sequence[Union[StencilProblem, SmacheConfig, CompiledDesign]],
    cache: Optional[PlanCache] = plan_cache,
) -> List[CompiledDesign]:
    """Compile many problems at once, in input order.

    The batch counterpart of :func:`compile`, used by the vectorized analytic
    fast lane (:mod:`repro.pipeline.analytic_batch`): cacheable problems go
    through :meth:`PlanCache.get_or_compile_batch`, so a batch of N points
    sharing one design compiles it once and records one miss plus N−1 hits —
    the same counters a per-point loop over a warm cache would show.
    Already-compiled designs pass through untouched; uncacheable problems
    (and every problem when ``cache`` is ``None``) build fresh, exactly like
    :func:`compile`.
    """
    designs: List[Optional[CompiledDesign]] = [None] * len(problems)
    keyed_indices: List[int] = []
    keyed_problems: List[StencilProblem] = []
    for index, problem in enumerate(problems):
        if isinstance(problem, CompiledDesign):
            designs[index] = problem
            continue
        if isinstance(problem, SmacheConfig):
            problem = StencilProblem.from_config(problem)
        if cache is None or not problem.is_cacheable:
            designs[index] = _build(problem)
            continue
        keyed_indices.append(index)
        keyed_problems.append(problem)
    if keyed_problems:
        built = cache.get_or_compile_batch(
            [p.cache_key() for p in keyed_problems],
            [lambda p=p: _build(p) for p in keyed_problems],
        )
        for index, problem, design in zip(keyed_indices, keyed_problems, built):
            if design.problem != problem:
                design = replace(design, problem=problem, config=problem.to_config())
            designs[index] = design
    return designs  # type: ignore[return-value]
