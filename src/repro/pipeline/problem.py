"""The pipeline's input: a complete, cacheable stencil problem description.

A :class:`StencilProblem` bundles what :class:`repro.core.config.SmacheConfig`
describes (grid, stencil, boundary, architecture knobs) with the two things a
full evaluation additionally needs: the computation *kernel* and, optionally,
a non-contiguous *iteration pattern*.  Unlike ``SmacheConfig`` it is designed
to be used as a cache key, so the whole compilation (planning, partitioning,
costing, synthesis) can be memoized per problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Optional, Tuple

from repro.core.boundary import BoundarySpec
from repro.core.config import SmacheConfig
from repro.core.grid import GridSpec, IterationPattern
from repro.core.partition import StreamBufferMode
from repro.core.stencil import StencilShape
from repro.reference.kernels import AveragingKernel, StencilKernel


def default_kernel(stencil: StencilShape) -> StencilKernel:
    """The kernel assumed when a problem does not name one (paper's filter)."""
    return AveragingKernel(expected_points=stencil.n_points)


@dataclass(frozen=True)
class StencilProblem:
    """Everything needed to compile and evaluate one stencil workload."""

    grid: GridSpec
    stencil: StencilShape
    boundary: BoundarySpec
    # Excluded from the generated hash (kernels may hold dict fields, e.g.
    # WeightedKernel's weights) but still part of equality; cache_key() carries
    # the kernel identity through its repr instead.
    kernel: Optional[StencilKernel] = field(default=None, hash=False)
    pattern: Optional[IterationPattern] = field(default=None, compare=False)
    mode: StreamBufferMode = StreamBufferMode.HYBRID
    word_bits: Optional[int] = None
    max_stream_reach: Optional[int] = None
    max_total_bits: Optional[int] = None
    register_elements: Optional[int] = None
    name: str = "problem"

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls,
        config: SmacheConfig,
        kernel: Optional[StencilKernel] = None,
        pattern: Optional[IterationPattern] = None,
    ) -> "StencilProblem":
        """Wrap an existing :class:`SmacheConfig` as a pipeline problem."""
        return cls(
            grid=config.grid,
            stencil=config.stencil,
            boundary=config.boundary,
            kernel=kernel,
            pattern=pattern,
            mode=config.mode,
            word_bits=config.word_bits,
            max_stream_reach=config.max_stream_reach,
            max_total_bits=config.max_total_bits,
            register_elements=config.register_elements,
            name=config.name,
        )

    @classmethod
    def paper_example(cls, rows: int = 11, cols: int = 11, **overrides) -> "StencilProblem":
        """The paper's validation case as a pipeline problem."""
        problem = cls.from_config(SmacheConfig.paper_example(rows, cols))
        return replace(problem, **overrides) if overrides else problem

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def to_config(self) -> SmacheConfig:
        """The ``repro.core`` view of this problem (drops kernel and pattern)."""
        return SmacheConfig(
            grid=self.grid,
            stencil=self.stencil,
            boundary=self.boundary,
            mode=self.mode,
            word_bits=self.word_bits,
            max_stream_reach=self.max_stream_reach,
            max_total_bits=self.max_total_bits,
            register_elements=self.register_elements,
            kernel_ops_per_point=self.effective_kernel.ops_per_point,
            name=self.name,
        )

    @property
    def effective_kernel(self) -> StencilKernel:
        """The kernel to compile for (defaults to the paper's averaging filter)."""
        return self.kernel if self.kernel is not None else default_kernel(self.stencil)

    # ------------------------------------------------------------------ #
    # caching
    # ------------------------------------------------------------------ #
    @property
    def is_cacheable(self) -> bool:
        """Only problems with a contiguous (or default) pattern are memoized.

        A custom :class:`IterationPattern` is a mutable, identity-keyed object;
        compiling one bypasses the plan cache rather than risking a stale hit.
        """
        return self.pattern is None or self.pattern.is_contiguous()

    def cache_key(self) -> Tuple[Hashable, ...]:
        """A hashable key identifying everything :func:`compile` depends on.

        Memoized on the (frozen) instance: every field the key derives from
        is immutable, and batched pricing looks the key up once per point per
        call, where rebuilding ``repr(kernel)`` would dominate the warm path.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            kernel = self.effective_kernel
            key = (
                self.grid,
                self.stencil,
                self.boundary,
                self.mode,
                self.word_bits,
                self.max_stream_reach,
                self.max_total_bits,
                self.register_elements,
                type(kernel).__name__,
                repr(kernel),
            )
            object.__setattr__(self, "_cache_key", key)
        return key

    def describe(self) -> str:
        """One-line summary used by sweep reports."""
        return (
            f"{self.name}: {self.stencil} on {self.grid.describe()}, "
            f"mode={self.mode.value}, kernel={self.effective_kernel.name}"
        )
