"""NumPy golden models.

These are the functional references the cycle-accurate hardware models are
validated against: a kernel library (averaging filter, weighted stencils,
reductions) and an executor that applies a stencil kernel over a grid with
arbitrary boundary conditions, Jacobi style (all reads from iteration ``k``,
all writes to iteration ``k+1``), matching the work-instance semantics of the
Smache architecture.
"""

from repro.reference.kernels import (
    AveragingKernel,
    MaxKernel,
    StencilKernel,
    SumKernel,
    WeightedKernel,
)
from repro.reference.stencil_exec import (
    build_gather_plan,
    gather_plan,
    reference_run,
    reference_step,
    reference_step_scalar,
)

__all__ = [
    "StencilKernel",
    "AveragingKernel",
    "SumKernel",
    "MaxKernel",
    "WeightedKernel",
    "build_gather_plan",
    "gather_plan",
    "reference_step",
    "reference_step_scalar",
    "reference_run",
]
