"""Stencil kernel library.

A :class:`StencilKernel` is the computation applied to every stencil tuple.
The same kernel object is used by the NumPy reference executor and by the
cycle-accurate :class:`repro.arch.kernel.KernelHW`, which guarantees the two
agree functionally and lets tests compare them bit-for-bit (well,
float-for-float).

Each kernel also carries the metadata the evaluation needs:

* ``ops_per_point`` — how many arithmetic operations one application counts
  as (the paper's MOPS figure for the 4-point averaging filter corresponds to
  4 operations per grid point);
* ``latency`` — pipeline depth of the hardware implementation in cycles;
* ``adder_levels`` — depth of the reduction tree, used by the synthesis
  timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

Offset = Tuple[int, ...]


@dataclass(frozen=True)
class StencilKernel:
    """Base class: a per-tuple computation with hardware metadata."""

    name: str = "kernel"
    ops_per_point: int = 1
    latency: int = 2

    def apply(self, offsets: Sequence[Offset], values: Sequence[float]) -> float:
        """Compute the output value for one stencil tuple.

        ``offsets`` and ``values`` are parallel sequences containing only the
        accesses that exist (open-boundary neighbours are absent; constant
        boundary values are present with their substituted value).
        """
        raise NotImplementedError

    def apply_batch(self, offsets: Sequence[Offset], values: np.ndarray) -> np.ndarray:
        """Apply the kernel to many tuples that share one offset signature.

        ``values`` has shape ``(m, k)``: ``m`` tuples, each with the same
        ``k`` offsets (one gather-plan group of the vectorized reference
        executor, see :mod:`repro.reference.stencil_exec`).  Returns the
        ``(m,)`` output vector.

        The contract is **bit-exactness**: the result must equal calling
        :meth:`apply` row by row, so vectorized overrides must fold columns
        left-to-right (matching Python's sequential reduction order) rather
        than using pairwise reductions like ``np.sum``.  This fallback simply
        loops, which keeps arbitrary user kernels correct — they still gain
        the executor's cached boundary resolution and index gathering.  Rows
        are handed to :meth:`apply` as plain float lists, preserving its
        ``Sequence[float]`` contract (truthiness, ``len``, python floats).
        """
        return np.fromiter(
            (self.apply(offsets, row) for row in values.tolist()),
            dtype=np.float64,
            count=len(values),
        )

    @property
    def adder_levels(self) -> int:
        """Depth of the reduction tree (overridden where meaningful)."""
        return 1


def _fold_sum(values: np.ndarray) -> np.ndarray:
    """Left-to-right column sum of ``(m, k)`` values (k >= 1).

    Matches ``sum(row)`` applied per row: Python's ``sum`` starts from the
    int ``0`` (exact) and adds the elements in order, so a sequential
    elementwise fold over columns produces bit-identical float64 results.
    Seeding with ``0.0 + column`` (not a copy) mirrors that leading zero:
    under IEEE-754 round-to-nearest, ``0 + (-0.0)`` is ``+0.0``, so a bare
    copy would leak ``-0.0`` where the scalar path produces ``+0.0``.
    """
    acc = values[:, 0] + 0.0
    for j in range(1, values.shape[1]):
        acc += values[:, j]
    return acc


@dataclass(frozen=True)
class AveragingKernel(StencilKernel):
    """The paper's 4-point averaging filter, generalised to any tuple size.

    The output is the mean of the *available* neighbours, which is the usual
    way an averaging filter treats open boundaries (corner points average 2
    or 3 neighbours instead of 4).
    """

    name: str = "average"
    ops_per_point: int = 4
    latency: int = 3
    expected_points: int = 4

    def apply(self, offsets: Sequence[Offset], values: Sequence[float]) -> float:
        if not values:
            return 0.0
        return float(sum(values)) / len(values)

    def apply_batch(self, offsets: Sequence[Offset], values: np.ndarray) -> np.ndarray:
        m, k = values.shape
        if k == 0:
            return np.zeros(m, dtype=np.float64)
        return _fold_sum(values) / k

    @property
    def adder_levels(self) -> int:
        n = max(2, self.expected_points)
        return (n - 1).bit_length()


@dataclass(frozen=True)
class SumKernel(StencilKernel):
    """Plain sum of the available tuple values."""

    name: str = "sum"
    ops_per_point: int = 3
    latency: int = 2
    expected_points: int = 4

    def apply(self, offsets: Sequence[Offset], values: Sequence[float]) -> float:
        return float(sum(values))

    def apply_batch(self, offsets: Sequence[Offset], values: np.ndarray) -> np.ndarray:
        m, k = values.shape
        if k == 0:
            return np.zeros(m, dtype=np.float64)
        return _fold_sum(values)

    @property
    def adder_levels(self) -> int:
        n = max(2, self.expected_points)
        return (n - 1).bit_length()


@dataclass(frozen=True)
class MaxKernel(StencilKernel):
    """Maximum of the available tuple values (morphological dilation)."""

    name: str = "max"
    ops_per_point: int = 3
    latency: int = 2

    def apply(self, offsets: Sequence[Offset], values: Sequence[float]) -> float:
        if not values:
            return 0.0
        return float(max(values))

    def apply_batch(self, offsets: Sequence[Offset], values: np.ndarray) -> np.ndarray:
        m, k = values.shape
        if k == 0:
            return np.zeros(m, dtype=np.float64)
        acc = values[:, 0].copy()
        for j in range(1, k):
            # Python's max() keeps the accumulator unless the candidate
            # compares strictly greater — np.maximum would diverge on NaN
            # (it propagates) and on signed zeros, breaking bit-exactness
            # with the scalar apply.
            column = values[:, j]
            acc = np.where(column > acc, column, acc)
        return acc


@dataclass(frozen=True)
class WeightedKernel(StencilKernel):
    """A weighted stencil: ``out = bias + sum_i w(offset_i) * value_i``.

    Missing (open-boundary) neighbours simply contribute nothing, which for a
    diffusion-style operator corresponds to a zero-flux edge.
    """

    name: str = "weighted"
    weights: Mapping[Offset, float] = field(default_factory=dict)
    bias: float = 0.0
    ops_per_point: int = 0  # recomputed in __post_init__ when left at 0
    latency: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", dict(self.weights))
        if not self.weights:
            raise ValueError("WeightedKernel needs at least one weight")
        if self.ops_per_point == 0:
            # one multiply + one add per tap
            object.__setattr__(self, "ops_per_point", 2 * len(self.weights))

    def apply(self, offsets: Sequence[Offset], values: Sequence[float]) -> float:
        acc = self.bias
        for off, val in zip(offsets, values):
            w = self.weights.get(tuple(off))
            if w is not None:
                acc += w * val
        return float(acc)

    def apply_batch(self, offsets: Sequence[Offset], values: np.ndarray) -> np.ndarray:
        acc = np.full(values.shape[0], float(self.bias), dtype=np.float64)
        for j, off in enumerate(offsets):
            w = self.weights.get(tuple(off))
            if w is not None:
                acc += w * values[:, j]
        return acc

    @property
    def adder_levels(self) -> int:
        n = max(2, len(self.weights))
        return (n - 1).bit_length() + 1  # +1 for the multiplier stage

    @classmethod
    def jacobi_2d(cls, alpha: float = 0.25) -> "WeightedKernel":
        """Jacobi relaxation: the average of the four neighbours, scaled."""
        w = {(-1, 0): alpha, (1, 0): alpha, (0, -1): alpha, (0, 1): alpha}
        return cls(name="jacobi", weights=w)

    @classmethod
    def diffusion_2d(cls, nu: float = 0.1) -> "WeightedKernel":
        """Explicit heat-diffusion step: ``u + nu * laplacian(u)``."""
        w = {
            (0, 0): 1.0 - 4.0 * nu,
            (-1, 0): nu,
            (1, 0): nu,
            (0, -1): nu,
            (0, 1): nu,
        }
        return cls(name="diffusion", weights=w)
