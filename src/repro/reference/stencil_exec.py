"""Golden (NumPy) execution of stencil computations with arbitrary boundaries.

The executor mirrors the work-instance semantics of the hardware: one *step*
reads every value from iteration ``k`` and writes iteration ``k+1`` (Jacobi /
ping-pong), applying the kernel to the tuple of accesses that exist after
boundary resolution.  The cycle-accurate systems in :mod:`repro.arch` are
validated against these functions element by element.

Vectorized execution
--------------------
Boundary resolution is a pure function of ``(grid, stencil, boundary)`` —
the hardware pre-resolves it once per system for the same reason — so the
executor builds a :class:`GatherPlan` once per triple (LRU-cached across
steps and iterations): grid positions are grouped by their *resolution
signature* (which stencil offsets exist, wrap, or resolve to a constant),
and every group carries a precomputed gather-index matrix.  One step is then
a handful of NumPy gathers plus one :meth:`StencilKernel.apply_batch` call
per group, instead of ``grid.size`` Python-level resolutions.

The vectorized path is **bit-identical** to the scalar one (enforced by
``tests/reference``): kernels fold operand columns left-to-right, matching
the sequential reduction order of their scalar ``apply``, and the interior
of a grid collapses into a single group so the common case is one fused
gather.  :func:`reference_step_scalar` keeps the original per-cell loop as
the independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.boundary import BoundarySpec, ResolutionKind
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import StencilKernel


# --------------------------------------------------------------------------- #
# gather plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GatherGroup:
    """All grid positions sharing one boundary-resolution signature."""

    #: Linear indices of the member positions, ascending.
    rows: np.ndarray
    #: The common offsets of the surviving accesses, in resolution order.
    offsets: Tuple[Tuple[int, ...], ...]
    #: ``(m, k)`` gather indices into the flat grid; constant columns hold 0.
    index: np.ndarray
    #: Columns that are constant-boundary substitutions, with their values.
    constant_columns: Tuple[Tuple[int, float], ...]


@dataclass(frozen=True)
class GatherPlan:
    """Precomputed vectorized execution plan for one (grid, stencil, boundary)."""

    size: int
    groups: Tuple[GatherGroup, ...]

    def execute(self, flat: np.ndarray, kernel: StencilKernel, out: np.ndarray) -> None:
        """Apply ``kernel`` over every position, writing into flat ``out``."""
        for group in self.groups:
            values = flat[group.index]
            for column, constant in group.constant_columns:
                values[:, column] = constant
            out[group.rows] = kernel.apply_batch(group.offsets, values)


def build_gather_plan(
    grid: GridSpec, stencil: StencilShape, boundary: BoundarySpec
) -> GatherPlan:
    """Resolve every position once and group by resolution signature."""
    buckets: Dict[Tuple, Dict[str, list]] = {}
    order: List[Tuple] = []
    for linear in range(grid.size):
        centre = grid.coord(linear)
        signature: List[Tuple] = []
        indices: List[int] = []
        offsets: List[Tuple[int, ...]] = []
        constants: List[Tuple[int, float]] = []
        for point in boundary.resolve_stencil(grid, centre, stencil):
            if point.kind is ResolutionKind.SKIPPED:
                continue
            if point.kind is ResolutionKind.CONSTANT:
                value = float(point.constant_value)
                constants.append((len(indices), value))
                signature.append((point.offset, "c", value))
                indices.append(0)  # placeholder; overwritten by the constant
            else:
                # The *relative* displacement, not the absolute target, keys
                # the signature: every interior point shares one group.
                signature.append((point.offset, "g", point.linear_index - linear))
                indices.append(point.linear_index)
            offsets.append(point.offset)
        key = tuple(signature)
        bucket = buckets.get(key)
        if bucket is None:
            # constants and offsets are part of the signature, so they are
            # identical for every member row and recorded once per group
            bucket = {"offsets": offsets, "constants": constants, "rows": [], "index": []}
            buckets[key] = bucket
            order.append(key)
        bucket["rows"].append(linear)
        bucket["index"].append(indices)
    groups = []
    for key in order:
        bucket = buckets[key]
        rows = bucket["rows"]
        groups.append(
            GatherGroup(
                rows=np.asarray(rows, dtype=np.intp),
                offsets=tuple(bucket["offsets"]),
                index=np.asarray(bucket["index"], dtype=np.intp).reshape(
                    len(rows), len(bucket["offsets"])
                ),
                constant_columns=tuple(bucket["constants"]),
            )
        )
    return GatherPlan(size=grid.size, groups=tuple(groups))


#: The memoized gather plan for a (grid, stencil, boundary) triple — the
#: three specs are frozen dataclasses, so they key an LRU directly.
gather_plan = lru_cache(maxsize=64)(build_gather_plan)


def clear_gather_plan_cache() -> None:
    """Drop every cached gather plan (benchmarks measuring cold builds)."""
    gather_plan.cache_clear()


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def _check_input(array: np.ndarray, grid: GridSpec) -> np.ndarray:
    array = np.asarray(array, dtype=np.float64)
    if array.shape != grid.shape:
        raise ValueError(f"array shape {array.shape} does not match grid {grid.shape}")
    return array


def reference_step(
    array: np.ndarray,
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    kernel: StencilKernel,
) -> np.ndarray:
    """Apply one work-instance of the stencil kernel to ``array``.

    ``array`` must have the grid's shape; the returned array is a new
    allocation (Jacobi semantics — no in-place update).  Uses the vectorized
    gather-plan path; :func:`reference_step_scalar` is the per-cell original,
    bit-identical by construction.
    """
    array = _check_input(array, grid)
    flat = array.reshape(-1)
    out = np.empty_like(flat)
    gather_plan(grid, stencil, boundary).execute(flat, kernel, out)
    return out.reshape(grid.shape)


def reference_step_scalar(
    array: np.ndarray,
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    kernel: StencilKernel,
) -> np.ndarray:
    """The original per-cell executor (the vectorized path's cross-check)."""
    array = _check_input(array, grid)
    flat = array.reshape(-1)
    out = np.empty_like(flat)

    for linear in range(grid.size):
        centre = grid.coord(linear)
        offsets = []
        values = []
        for point in boundary.resolve_stencil(grid, centre, stencil):
            if point.kind is ResolutionKind.SKIPPED:
                continue
            if point.kind is ResolutionKind.CONSTANT:
                offsets.append(point.offset)
                values.append(float(point.constant_value))
            else:
                offsets.append(point.offset)
                values.append(float(flat[point.linear_index]))
        out[linear] = kernel.apply(offsets, values)
    return out.reshape(grid.shape)


def reference_run(
    array: np.ndarray,
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    kernel: StencilKernel,
    iterations: int = 1,
) -> np.ndarray:
    """Apply ``iterations`` work-instances (ping-pong between two arrays).

    The gather plan is built (or fetched from the cache) once and reused for
    every iteration — index construction happens once per
    (grid, stencil, boundary), not once per step.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    current = _check_input(array, grid).copy()
    if iterations == 0:
        return current
    plan = gather_plan(grid, stencil, boundary)
    flat = current.reshape(-1)
    out = np.empty_like(flat)
    for _ in range(iterations):
        plan.execute(flat, kernel, out)
        flat, out = out, flat
    return flat.reshape(grid.shape)


def make_test_grid(grid: GridSpec, seed: Optional[int] = 0, kind: str = "ramp") -> np.ndarray:
    """Generate a deterministic input grid for validation and benchmarking.

    ``kind`` selects the pattern: ``"ramp"`` (0, 1, 2, ... which makes index
    mix-ups visible), ``"random"`` (uniform in [0, 1)), or ``"impulse"`` (a
    single 1.0 in the centre, useful for watching boundary wrap-around).
    """
    if kind == "ramp":
        return np.arange(grid.size, dtype=np.float64).reshape(grid.shape)
    if kind == "random":
        rng = np.random.default_rng(seed)
        return rng.random(grid.shape)
    if kind == "impulse":
        data = np.zeros(grid.shape, dtype=np.float64)
        data[tuple(s // 2 for s in grid.shape)] = 1.0
        return data
    raise ValueError(f"unknown test-grid kind {kind!r}")
