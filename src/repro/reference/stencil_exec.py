"""Golden (NumPy) execution of stencil computations with arbitrary boundaries.

The executor mirrors the work-instance semantics of the hardware: one *step*
reads every value from iteration ``k`` and writes iteration ``k+1`` (Jacobi /
ping-pong), applying the kernel to the tuple of accesses that exist after
boundary resolution.  The cycle-accurate systems in :mod:`repro.arch` are
validated against these functions element by element.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.boundary import BoundarySpec, ResolutionKind
from repro.core.grid import GridSpec
from repro.core.stencil import StencilShape
from repro.reference.kernels import StencilKernel


def reference_step(
    array: np.ndarray,
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    kernel: StencilKernel,
) -> np.ndarray:
    """Apply one work-instance of the stencil kernel to ``array``.

    ``array`` must have the grid's shape; the returned array is a new
    allocation (Jacobi semantics — no in-place update).
    """
    array = np.asarray(array, dtype=np.float64)
    if array.shape != grid.shape:
        raise ValueError(f"array shape {array.shape} does not match grid {grid.shape}")
    flat = array.reshape(-1)
    out = np.empty_like(flat)

    for linear in range(grid.size):
        centre = grid.coord(linear)
        offsets = []
        values = []
        for point in boundary.resolve_stencil(grid, centre, stencil):
            if point.kind is ResolutionKind.SKIPPED:
                continue
            if point.kind is ResolutionKind.CONSTANT:
                offsets.append(point.offset)
                values.append(float(point.constant_value))
            else:
                offsets.append(point.offset)
                values.append(float(flat[point.linear_index]))
        out[linear] = kernel.apply(offsets, values)
    return out.reshape(grid.shape)


def reference_run(
    array: np.ndarray,
    grid: GridSpec,
    stencil: StencilShape,
    boundary: BoundarySpec,
    kernel: StencilKernel,
    iterations: int = 1,
) -> np.ndarray:
    """Apply ``iterations`` work-instances (ping-pong between two arrays)."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    current = np.asarray(array, dtype=np.float64).copy()
    for _ in range(iterations):
        current = reference_step(current, grid, stencil, boundary, kernel)
    return current


def make_test_grid(grid: GridSpec, seed: Optional[int] = 0, kind: str = "ramp") -> np.ndarray:
    """Generate a deterministic input grid for validation and benchmarking.

    ``kind`` selects the pattern: ``"ramp"`` (0, 1, 2, ... which makes index
    mix-ups visible), ``"random"`` (uniform in [0, 1)), or ``"impulse"`` (a
    single 1.0 in the centre, useful for watching boundary wrap-around).
    """
    if kind == "ramp":
        return np.arange(grid.size, dtype=np.float64).reshape(grid.shape)
    if kind == "random":
        rng = np.random.default_rng(seed)
        return rng.random(grid.shape)
    if kind == "impulse":
        data = np.zeros(grid.shape, dtype=np.float64)
        data[tuple(s // 2 for s in grid.shape)] = 1.0
        return data
    raise ValueError(f"unknown test-grid kind {kind!r}")
