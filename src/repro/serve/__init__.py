"""An always-on evaluation service over the vectorized analytic engine.

``repro.serve`` turns the batch-only speed of
:class:`~repro.pipeline.analytic_batch.AnalyticBatchEngine` into low-latency
interactive throughput: concurrent single-point requests are micro-batched
into engine calls (:mod:`repro.serve.batcher`), identical repeats are
answered from a content-keyed memo (:mod:`repro.serve.memo`), admission is
bounded with backpressure, and everything is reachable over a stdlib-only
TCP/JSON-lines protocol (:mod:`repro.serve.protocol`) with blocking and
asyncio clients (:mod:`repro.serve.client`).

Quickstart::

    python -m repro.serve serve --port 7571          # terminal 1
    python -m repro.serve bench-client --port 7571   # terminal 2

or in-process::

    from repro.api import Workbench
    result = await Workbench().evaluate_async(problem, iterations=5)
"""

from repro.serve.batcher import AdaptiveBatcher, request_signature
from repro.serve.client import (
    AsyncServeClient,
    EvaluationTimeout,
    Overloaded,
    ServeClient,
    ServeError,
    Unavailable,
)
from repro.serve.memo import ResponseMemo
from repro.serve.metrics import LatencyReservoir, ServerMetrics
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    make_point,
    parse_point,
    point_key,
    result_payload,
)
from repro.serve.server import (
    EvaluationServer,
    EvaluationService,
    EvaluationTimeoutError,
    OverloadedError,
    ServiceUnavailableError,
    run_server,
)

__all__ = [
    "AdaptiveBatcher",
    "AsyncServeClient",
    "EvaluationServer",
    "EvaluationService",
    "EvaluationTimeout",
    "EvaluationTimeoutError",
    "LatencyReservoir",
    "Overloaded",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResponseMemo",
    "ServeClient",
    "ServeError",
    "ServerMetrics",
    "ServiceUnavailableError",
    "Unavailable",
    "make_point",
    "parse_point",
    "point_key",
    "request_signature",
    "result_payload",
    "run_server",
]
