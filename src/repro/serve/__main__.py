"""CLI for the evaluation service: ``serve`` and ``bench-client``.

::

    python -m repro.serve serve --port 7571 --max-batch 64 --window-ms 2
    python -m repro.serve bench-client --port 7571 --points 1000 \\
        --unique 200 --connections 4 --verify

``serve`` runs an :class:`~repro.serve.server.EvaluationServer` until
interrupted.  ``bench-client`` fires a mixed duplicate/unique workload from
several pipelined connections, prints client-side throughput and the
server's ``/stats``, and with ``--verify`` recomputes every unique point
through the scalar reference path and asserts the served payloads are
byte-identical (exit 1 otherwise) — the same check CI runs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any, Dict, List


def _point_mix(points: int, unique: int, iterations: int) -> List[Dict[str, Any]]:
    """A deterministic mixed workload: ``unique`` specs cycled to ``points``.

    Grids walk a rectangle of paper-style shapes; duplicates are interleaved
    (not back-to-back) so memo hits and batch packing both get exercised.
    """
    unique = max(1, min(unique, points))
    specs = []
    for index in range(unique):
        rows = 9 + index % 40
        cols = 9 + (index // 40) % 25
        specs.append(
            {"grid": [rows, cols], "system": "smache", "iterations": iterations,
             "write_through": True}
        )
    return [specs[i % unique] for i in range(points)]


def _canonical(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import EvaluationServer

    server = EvaluationServer(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        window_ms=args.window_ms,
        queue_limit=args.queue_limit,
        memo_entries=args.memo_entries,
        scalar=args.scalar,
    )

    async def main() -> None:
        host, port = await server.start()
        mode = "scalar (reference)" if args.scalar else "micro-batched"
        print(f"serving on {host}:{port} [{mode}]", flush=True)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupted; shutting down", flush=True)
    return 0


def cmd_bench_client(args: argparse.Namespace) -> int:
    from repro.serve.client import AsyncServeClient

    specs = _point_mix(args.points, args.unique, args.iterations)

    async def wait_ready() -> None:
        deadline = time.monotonic() + args.connect_timeout
        while True:
            try:
                async with AsyncServeClient(args.host, args.port) as probe:
                    if await probe.ping():
                        return
            except (ConnectionError, OSError):
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(0.1)

    async def main() -> int:
        await wait_ready()
        clients = [AsyncServeClient(args.host, args.port) for _ in range(args.connections)]
        for client in clients:
            await client.connect()
        results: List[Dict[str, Any]] = [{} for _ in specs]
        semaphore = asyncio.Semaphore(args.concurrency)

        async def one(index: int) -> None:
            async with semaphore:
                client = clients[index % len(clients)]
                results[index] = await client.evaluate_retry(specs[index])

        started = time.perf_counter()
        await asyncio.gather(*(one(i) for i in range(len(specs))))
        elapsed = time.perf_counter() - started
        stats = await clients[0].stats()
        for client in clients:
            await client.close()

        print(
            f"{len(specs)} requests ({args.unique} unique) over "
            f"{args.connections} connection(s): {elapsed * 1e3:.1f} ms, "
            f"{len(specs) / elapsed:,.0f} req/s"
        )
        latency = stats.get("latency", {})
        batches = stats.get("batches", {})
        print(
            f"server: p50 {latency.get('p50_ms')} ms, p99 {latency.get('p99_ms')} ms, "
            f"mean batch {batches.get('mean_size')}, "
            f"memo {stats.get('memo')}, window {stats.get('window_ms')} ms"
        )
        if args.stats_json:
            print(json.dumps(stats, sort_keys=True))

        if args.verify:
            from repro.pipeline.backends import evaluate
            from repro.serve.protocol import parse_point, result_payload

            mismatches = 0
            seen: Dict[bytes, bytes] = {}
            for spec, payload in zip(specs, results):
                spec_key = _canonical(spec)
                reference = seen.get(spec_key)
                if reference is None:
                    problem, request = parse_point(spec)
                    scalar = evaluate(
                        problem, backend="analytic", request=request
                    )
                    reference = _canonical(result_payload(scalar))
                    seen[spec_key] = reference
                if _canonical(payload) != reference:
                    mismatches += 1
            if mismatches:
                print(f"VERIFY FAILED: {mismatches} served payload(s) differ "
                      f"from the scalar reference", file=sys.stderr)
                return 1
            print(f"verify: {len(specs)} responses bitwise-equal to the scalar reference")
        return 0

    return asyncio.run(main())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the evaluation server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7571, help="0 picks a free port")
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument("--window-ms", type=float, default=2.0)
    serve.add_argument("--queue-limit", type=int, default=1024)
    serve.add_argument("--memo-entries", type=int, default=4096)
    serve.add_argument(
        "--scalar", action="store_true",
        help="serve through the per-request scalar reference path (benchmark baseline)",
    )
    serve.set_defaults(fn=cmd_serve)

    bench = sub.add_parser("bench-client", help="fire a mixed workload at a server")
    bench.add_argument("--host", default="127.0.0.1")
    bench.add_argument("--port", type=int, default=7571)
    bench.add_argument("--points", type=int, default=1000, help="total requests")
    bench.add_argument("--unique", type=int, default=200, help="distinct points in the mix")
    bench.add_argument("--iterations", type=int, default=5)
    bench.add_argument("--connections", type=int, default=4, help="concurrent connections")
    bench.add_argument("--concurrency", type=int, default=64, help="max requests in flight")
    bench.add_argument("--connect-timeout", type=float, default=30.0)
    bench.add_argument("--verify", action="store_true",
                       help="assert responses bitwise-match the scalar reference")
    bench.add_argument("--stats-json", action="store_true",
                       help="also dump the raw /stats JSON")
    bench.set_defaults(fn=cmd_bench_client)
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
