"""Adaptive request micro-batching: concurrent singles become engine batches.

The vectorized pricing engine is ~24x faster than the scalar path *per
batch* (``BENCH_analytic.json``), but interactive traffic arrives one point
at a time.  The :class:`AdaptiveBatcher` manufactures batches out of that
stream: each incoming ``(problem, request)`` lands in a bucket keyed by its
*request signature* (everything one engine fold shares — system, iterations,
write policy, DRAM timing, kernel override), and a bucket is flushed as one
:meth:`AnalyticBatchEngine.price_batch` call either

* when it reaches ``max_batch`` points (size-triggered, under pressure), or
* when its ``window`` timer fires (time-triggered, under light load).

The window adapts between ``min_window_ms`` and ``max_window_ms``: a
size-triggered flush means requests are arriving faster than the engine
drains them, so the window *grows* (bigger batches, higher throughput); a
timer flush that caught only a trickle of requests means batching is
costing latency for nothing, so the window *shrinks*.  Both adjustments are
multiplicative and deterministic, so tests can drive the window exactly.

The batcher is event-loop native: ``submit`` is awaitable, flushes run
inline on the loop (pricing a bucket is NumPy work in the hundreds of
microseconds — cheaper than a thread hop), and cancelled waiters (a client
that disconnected mid-flight) are simply skipped when results are
delivered, so nothing leaks.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import EvaluationRequest, EvaluationResult
from repro.pipeline.problem import StencilProblem

#: A bucket flush: price these problems under this one shared request.
PriceFn = Callable[[List[StencilProblem], EvaluationRequest], Sequence[EvaluationResult]]


def request_signature(request: EvaluationRequest) -> Tuple[Any, ...]:
    """Everything a pricing fold shares across a bucket.

    Two requests with equal signatures can be priced in one
    ``price_batch`` call; the fields mirror the engine's fold-memo key, so
    a recurring bucket also hits the engine's fold cache.
    """
    timing = request.dram_timing or DRAMTiming()
    kernel = request.kernel
    return (
        request.system,
        request.iterations,
        request.write_through,
        timing.stream_word_cycles,
        timing.random_access_cycles,
        timing.read_latency,
        timing.row_words,
        timing.row_miss_penalty,
        None if kernel is None else (type(kernel).__name__, repr(kernel)),
    )


class _Bucket:
    """Requests sharing one signature, waiting to be flushed together."""

    __slots__ = ("request", "items", "timer")

    def __init__(self, request: EvaluationRequest) -> None:
        self.request = request
        self.items: List[Tuple[StencilProblem, "asyncio.Future[EvaluationResult]"]] = []
        self.timer: Optional[asyncio.TimerHandle] = None


class AdaptiveBatcher:
    """Signature-keyed micro-batching with an adaptive flush window."""

    def __init__(
        self,
        price: PriceFn,
        *,
        max_batch: int = 64,
        window_ms: float = 2.0,
        min_window_ms: float = 0.2,
        max_window_ms: float = 25.0,
        grow: float = 1.5,
        shrink: float = 0.7,
        on_flush: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if not (0 < min_window_ms <= window_ms <= max_window_ms):
            raise ValueError("need 0 < min_window_ms <= window_ms <= max_window_ms")
        if not (grow > 1.0 and 0.0 < shrink < 1.0):
            raise ValueError("need grow > 1 and 0 < shrink < 1")
        self._price = price
        self.max_batch = max_batch
        self.min_window_ms = min_window_ms
        self.max_window_ms = max_window_ms
        self._window_ms = window_ms
        self._grow = grow
        self._shrink = shrink
        self._on_flush = on_flush
        self._buckets: Dict[Tuple[Any, ...], _Bucket] = {}

    # ------------------------------------------------------------------ #
    @property
    def window_ms(self) -> float:
        """The current adaptive flush window (milliseconds)."""
        return self._window_ms

    def pending(self) -> int:
        """Requests queued in unflushed buckets (0 when fully drained)."""
        return sum(len(bucket.items) for bucket in self._buckets.values())

    # ------------------------------------------------------------------ #
    def submit(
        self, problem: StencilProblem, request: EvaluationRequest
    ) -> Awaitable[EvaluationResult]:
        """Queue one evaluation; the returned future resolves at flush time.

        Must be called on a running event loop.  If the request fills its
        bucket to ``max_batch`` the flush happens synchronously inside this
        call; otherwise the bucket's window timer delivers it.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[EvaluationResult]" = loop.create_future()
        signature = request_signature(request)
        bucket = self._buckets.get(signature)
        if bucket is None:
            bucket = _Bucket(request)
            self._buckets[signature] = bucket
            bucket.timer = loop.call_later(
                self._window_ms / 1000.0, self._flush, signature, "window"
            )
        bucket.items.append((problem, future))
        if len(bucket.items) >= self.max_batch:
            self._flush(signature, "full")
        return future

    def flush_all(self) -> None:
        """Flush every bucket now (shutdown, or tests forcing determinism)."""
        for signature in list(self._buckets):
            self._flush(signature, "drain")

    # ------------------------------------------------------------------ #
    def _flush(self, signature: Tuple[Any, ...], why: str) -> None:
        bucket = self._buckets.pop(signature, None)
        if bucket is None:  # size-flushed before its timer fired
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        size = len(bucket.items)
        self._adapt(size, why)
        if self._on_flush is not None:
            self._on_flush(size, why)
        problems = [problem for problem, _ in bucket.items]
        try:
            results = self._price(problems, bucket.request)
        except Exception as exc:  # noqa: BLE001 — fan the failure out to waiters
            for _, future in bucket.items:
                if not future.done():
                    future.set_exception(exc)
            return
        if len(results) != size:
            error = RuntimeError(
                f"pricing returned {len(results)} results for {size} requests"
            )
            for _, future in bucket.items:
                if not future.done():
                    future.set_exception(error)
            return
        for (_, future), result in zip(bucket.items, results):
            # A done future here is a waiter that disconnected (cancelled);
            # its result is simply dropped — nothing retains the future.
            if not future.done():
                future.set_result(result)

    def _adapt(self, size: int, why: str) -> None:
        if why == "full":
            # Demand filled a batch before the timer: widen the window so the
            # next batch amortizes even more per-request overhead.
            self._window_ms = min(self._window_ms * self._grow, self.max_window_ms)
        elif why == "window" and size <= max(1, self.max_batch // 4):
            # The timer fired on a mostly-empty bucket: light load, so lean
            # toward latency.
            self._window_ms = max(self._window_ms * self._shrink, self.min_window_ms)
