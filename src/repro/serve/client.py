"""Clients for the evaluation service: blocking and asyncio, stdlib only.

:class:`ServeClient` is the simple synchronous API — one request in flight,
socket + buffered reads, context-managed::

    with ServeClient("127.0.0.1", 7571) as client:
        result = client.evaluate({"grid": [24, 24], "iterations": 5})
        print(result["cycles"], client.stats()["throughput_rps"])

:class:`AsyncServeClient` pipelines: requests are written immediately with
monotonically increasing ids, a reader task matches responses back to their
futures, so hundreds of evaluations can be in flight on one connection —
which is what lets the server's micro-batcher do its job.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from typing import Any, Dict, Optional

from repro.serve.protocol import ProtocolError, decode_line, encode


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (and it wasn't an overload)."""


class Overloaded(ServeError):
    """The server rejected the request at admission; retry after the hint."""

    def __init__(self, retry_after_ms: int) -> None:
        super().__init__(f"server overloaded; retry after {retry_after_ms} ms")
        self.retry_after_ms = retry_after_ms


class Unavailable(ServeError):
    """The server's circuit breaker is open; retry after the hint."""

    def __init__(self, retry_after_ms: int) -> None:
        super().__init__(f"server unavailable; retry after {retry_after_ms} ms")
        self.retry_after_ms = retry_after_ms


class EvaluationTimeout(ServeError):
    """The server gave up on the evaluation after its batch timeout."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"server-side evaluation timed out after {timeout_s:g} s")
        self.timeout_s = timeout_s


def _raise_for(response: Dict[str, Any]) -> Dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error")
    if error == "overloaded":
        raise Overloaded(int(response.get("retry_after_ms", 1)))
    if error == "unavailable":
        raise Unavailable(int(response.get("retry_after_ms", 1)))
    if error == "timeout":
        raise EvaluationTimeout(float(response.get("timeout_s", 0.0)))
    raise ServeError(str(error or "unknown server error"))


def _retry_delay_s(
    exc: "Overloaded | Unavailable",
    rng: random.Random,
    jitter: float,
    started: float,
    deadline_s: Optional[float],
    now: float,
) -> Optional[float]:
    """The jittered sleep before the next attempt, or None to give up.

    Jitter decorrelates a fleet of clients that all received the same
    ``retry_after_ms`` hint — without it they stampede back in lockstep and
    re-trip the very admission control that rejected them.  A retry that
    could not complete before the total deadline is not attempted at all.
    """
    delay = (exc.retry_after_ms / 1000.0) * (1.0 + jitter * (2.0 * rng.random() - 1.0))
    delay = max(0.0, delay)
    if deadline_s is not None and (now - started) + delay >= deadline_s:
        return None
    return delay


class ServeClient:
    """Blocking JSON-lines client (one request outstanding at a time)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7571, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def connect(self) -> "ServeClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and block for its response."""
        self.connect()
        assert self._sock is not None and self._file is not None
        self._next_id += 1
        message = {"id": self._next_id, "verb": verb, **fields}
        self._sock.sendall(encode(message))
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_line(line)
        if response.get("id") != message["id"]:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match request {message['id']}"
            )
        return response

    def evaluate(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Evaluate one point spec; returns the result payload."""
        return _raise_for(self.request("evaluate", point=point))["result"]

    def evaluate_retry(
        self,
        point: Dict[str, Any],
        max_attempts: int = 8,
        deadline_s: Optional[float] = 30.0,
        jitter: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> Dict[str, Any]:
        """Evaluate with backoff-aware retry on overload/unavailable.

        Sleeps the server's ``retry_after_ms`` hint with ±``jitter``
        randomization, bounded by ``max_attempts`` and a total
        ``deadline_s`` (None waits as long as the attempts allow) — the
        last rejection is re-raised when either budget runs out.
        """
        # repro: allow[determinism] client-side retry jitter — desynchronises peers, never reaches canonical output
        rng = rng if rng is not None else random.Random()
        started = time.monotonic()
        for attempt in range(max_attempts):
            try:
                return self.evaluate(point)
            except (Overloaded, Unavailable) as exc:
                if attempt + 1 == max_attempts:
                    raise
                delay = _retry_delay_s(
                    exc, rng, jitter, started, deadline_s, time.monotonic()
                )
                if delay is None:
                    raise
                time.sleep(delay)
        raise AssertionError("unreachable")

    def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` snapshot."""
        return _raise_for(self.request("stats"))["result"]

    def ping(self) -> bool:
        """True when the server answers (and speaks our protocol)."""
        return _raise_for(self.request("ping"))["result"] == "pong"


class AsyncServeClient:
    """Pipelining asyncio client: many requests in flight on one connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7571) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._next_id = 0
        self._write_lock: Optional[asyncio.Lock] = None

    # ------------------------------------------------------------------ #
    async def connect(self) -> "AsyncServeClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
            self._write_lock = asyncio.Lock()
            self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
            self._reader = None
        self._fail_pending(ConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncServeClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = decode_line(line.strip())
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — fan out to every waiter
            self._fail_pending(exc)

    async def request(self, verb: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; awaits its (id-matched) response."""
        await self.connect()
        assert self._writer is not None and self._write_lock is not None
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "verb": verb, **fields}
        future: "asyncio.Future[Dict[str, Any]]" = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._write_lock:
                self._writer.write(encode(message))
                await self._writer.drain()
            return await future
        finally:
            self._pending.pop(request_id, None)

    async def evaluate(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Evaluate one point spec; returns the result payload."""
        return _raise_for(await self.request("evaluate", point=point))["result"]

    async def evaluate_retry(
        self,
        point: Dict[str, Any],
        max_attempts: int = 8,
        deadline_s: Optional[float] = 30.0,
        jitter: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> Dict[str, Any]:
        """Evaluate with backoff-aware retry on overload/unavailable.

        The async twin of :meth:`ServeClient.evaluate_retry`: jittered
        hint-length sleeps, bounded by ``max_attempts`` and a total
        ``deadline_s``; the last rejection is re-raised when either budget
        runs out.
        """
        # repro: allow[determinism] client-side retry jitter — desynchronises peers, never reaches canonical output
        rng = rng if rng is not None else random.Random()
        started = time.monotonic()
        for attempt in range(max_attempts):
            try:
                return await self.evaluate(point)
            except (Overloaded, Unavailable) as exc:
                if attempt + 1 == max_attempts:
                    raise
                delay = _retry_delay_s(
                    exc, rng, jitter, started, deadline_s, time.monotonic()
                )
                if delay is None:
                    raise
                await asyncio.sleep(delay)
        raise AssertionError("unreachable")

    async def evaluate_full(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Evaluate, returning the whole response envelope (``served_by`` etc.)."""
        return _raise_for(await self.request("evaluate", point=point))

    async def stats(self) -> Dict[str, Any]:
        """The server's ``/stats`` snapshot."""
        return _raise_for(await self.request("stats"))["result"]

    async def ping(self) -> bool:
        """True when the server answers (and speaks our protocol)."""
        return _raise_for(await self.request("ping"))["result"] == "pong"
