"""Content-keyed response memo: identical repeat queries skip the engine.

A bounded, lock-protected LRU from the stable point key
(:func:`repro.serve.protocol.point_key` — the same content hash the sweep
layer's checkpoints use) to the already-built response payload.  Interactive
traffic is heavy on repeats — dashboards refreshing the same design point,
many users asking about the same corner of a space — and a memo hit costs a
dict lookup instead of a trip through batching and the pricing engine.

Payloads are treated as immutable once stored; the service hands the stored
dict straight to the encoder and never mutates it.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock
from typing import Any, Dict, Optional

from repro.pipeline.cache import CacheInfo


class ResponseMemo:
    """Bounded LRU of response payloads keyed by stable point key."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The memoized payload for ``key``, refreshing LRU order, or None."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting the LRU tail if full."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within ``max_entries``."""
        with self._lock:
            return self._evictions

    def cache_info(self) -> CacheInfo:
        """``functools``-style counters, same shape as the plan cache's."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.max_entries,
                currsize=len(self._entries),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
