"""Serving telemetry: throughput, latency percentiles, batch-size histogram.

Everything the ``/stats`` verb reports lives here.  Counters are plain ints
behind a lock (the service is touched from the event loop and, for
in-process callers, arbitrary threads), latencies go into a bounded
reservoir of the most recent observations (percentiles of *recent* traffic,
not of the whole uptime), and flush sizes land in an exact histogram —
batch-size distribution is the single most interpretable signal of whether
micro-batching is doing anything.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from threading import Lock
from typing import Any, Dict, Optional


def percentile(sorted_values, fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


class LatencyReservoir:
    """The last ``maxlen`` request latencies, queryable for percentiles."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._window: "deque[float]" = deque(maxlen=maxlen)
        self._lock = Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._window.append(seconds)

    def snapshot_ms(self) -> Dict[str, float]:
        """p50/p99/max over the retained window, in milliseconds."""
        with self._lock:
            values = sorted(self._window)
        return {
            "count": len(values),
            "p50_ms": round(percentile(values, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(values, 0.99) * 1e3, 3),
            "max_ms": round(values[-1] * 1e3, 3) if values else 0.0,
        }


class ServerMetrics:
    """Counters + reservoirs backing the ``/stats`` verb."""

    def __init__(self) -> None:
        self._lock = Lock()
        self._started = time.monotonic()
        self.latency = LatencyReservoir()
        self._accepted = 0
        self._completed = 0
        self._rejected = 0
        self._errors = 0
        self._timeouts = 0
        self._sheds = 0
        self._batch_sizes: Counter = Counter()

    # ------------------------------------------------------------------ #
    def record_accepted(self) -> None:
        with self._lock:
            self._accepted += 1

    def record_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self._completed += 1
        self.latency.record(latency_seconds)

    def record_rejected(self) -> None:
        with self._lock:
            self._rejected += 1

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_timeout(self) -> None:
        """An admitted evaluation exceeded the per-batch timeout."""
        with self._lock:
            self._timeouts += 1

    def record_shed(self) -> None:
        """The circuit breaker refused an evaluation while open."""
        with self._lock:
            self._sheds += 1

    def record_batch(self, size: int) -> None:
        with self._lock:
            self._batch_sizes[size] += 1

    # ------------------------------------------------------------------ #
    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def rejected(self) -> int:
        with self._lock:
            return self._rejected

    @property
    def timeouts(self) -> int:
        with self._lock:
            return self._timeouts

    @property
    def sheds(self) -> int:
        with self._lock:
            return self._sheds

    def snapshot(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The ``/stats`` payload body (JSON-able)."""
        uptime = max(time.monotonic() - self._started, 1e-9)
        with self._lock:
            batches = dict(sorted(self._batch_sizes.items()))
            total_batches = sum(batches.values())
            total_batched = sum(size * count for size, count in batches.items())
            body: Dict[str, Any] = {
                "uptime_s": round(uptime, 3),
                "requests": {
                    "accepted": self._accepted,
                    "completed": self._completed,
                    "rejected": self._rejected,
                    "errors": self._errors,
                },
                "throughput_rps": round(self._completed / uptime, 2),
            }
        body["latency"] = self.latency.snapshot_ms()
        body["batches"] = {
            "flushes": total_batches,
            "mean_size": round(total_batched / total_batches, 2) if total_batches else 0.0,
            # JSON object keys are strings; keep the histogram readable.
            "histogram": {str(size): count for size, count in batches.items()},
        }
        if extra:
            body.update(extra)
        return body
