"""The evaluation service's wire protocol: JSON lines over TCP.

One request per line, one response per line, stdlib ``json`` only.  The
encoding is **canonical** (sorted keys, compact separators, ``\\n``
terminated) so two servers answering the same question produce *byte
identical* lines — the property the scalar-parity suite and the benchmark's
bitwise verification lean on.

Requests::

    {"id": 7, "verb": "evaluate", "point": {"grid": [11, 11], "iterations": 5}}
    {"id": 8, "verb": "stats"}
    {"id": 9, "verb": "ping"}

Responses::

    {"id": 7, "ok": true, "served_by": "engine", "result": {"cycles": ..., ...}}
    {"id": 7, "ok": false, "error": "overloaded", "retry_after_ms": 4}

A *point spec* is a plain dict describing one evaluation — the problem knobs
the sweep layer exposes plus the request knobs — and :func:`parse_point`
lowers it deterministically onto the exact :class:`StencilProblem` /
:class:`EvaluationRequest` pair the offline pipeline uses.  Determinism
matters twice: the server's response memo keys on the same stable content
key the sweep checkpoints use (:func:`point_key`), and a client can compute
the scalar reference for any spec and compare bytes.

Unknown spec fields are an error, not a warning: a typo'd knob silently
falling back to a default would produce a *cached* wrong answer.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

from repro.core.partition import StreamBufferMode
from repro.memory.dram import DRAMTiming
from repro.pipeline.backends import SYSTEMS, EvaluationRequest, EvaluationResult
from repro.pipeline.problem import StencilProblem
from repro.sweep.spec import SweepPoint

#: Protocol version, echoed by ``ping`` so clients can detect skew.
PROTOCOL_VERSION = 1

#: Every key a point spec may carry.
POINT_FIELDS = frozenset(
    {
        "grid",
        "word_bytes",
        "mode",
        "max_stream_reach",
        "max_total_bits",
        "name",
        "system",
        "iterations",
        "write_through",
        "dram_timing",
    }
)

_TIMING_FIELDS = frozenset(
    {
        "stream_word_cycles",
        "random_access_cycles",
        "read_latency",
        "row_words",
        "row_miss_penalty",
    }
)

_MODES = {mode.value: mode for mode in StreamBufferMode}


class ProtocolError(ValueError):
    """A malformed request or point spec (reported to the client, not fatal)."""


def encode(message: Dict[str, Any]) -> bytes:
    """One canonical JSON line: sorted keys, compact, newline-terminated."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a message dict."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


# --------------------------------------------------------------------------- #
# point specs
# --------------------------------------------------------------------------- #
def parse_point(spec: Dict[str, Any]) -> Tuple[StencilProblem, EvaluationRequest]:
    """Lower a wire point spec onto the pipeline's (problem, request) pair.

    The mapping is total and deterministic: every field has a default (the
    paper's 11x11 validation case, one smache iteration), identical specs
    produce problems with identical :meth:`~StencilProblem.cache_key`\\ s,
    and unknown fields raise :class:`ProtocolError`.
    """
    if not isinstance(spec, dict):
        raise ProtocolError("point must be a JSON object")
    unknown = set(spec) - POINT_FIELDS
    if unknown:
        raise ProtocolError(f"unknown point field(s): {sorted(unknown)}")

    grid = spec.get("grid", (11, 11))
    if not isinstance(grid, (list, tuple)) or len(grid) != 2:
        raise ProtocolError(f"grid must be [rows, cols], got {grid!r}")
    try:
        rows, cols = int(grid[0]), int(grid[1])
    except (TypeError, ValueError):
        raise ProtocolError(f"grid must hold integers, got {grid!r}") from None

    try:
        problem = StencilProblem.paper_example(rows, cols)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid grid {grid!r}: {exc}") from None

    overrides: Dict[str, Any] = {}
    if "word_bytes" in spec:
        overrides["grid"] = type(problem.grid)(
            shape=problem.grid.shape, word_bytes=int(spec["word_bytes"])
        )
    if "mode" in spec:
        mode = spec["mode"]
        if mode not in _MODES:
            raise ProtocolError(f"unknown mode {mode!r}; expected one of {sorted(_MODES)}")
        overrides["mode"] = _MODES[mode]
    if "max_stream_reach" in spec:
        reach = spec["max_stream_reach"]
        overrides["max_stream_reach"] = None if reach is None else int(reach)
    if "max_total_bits" in spec:
        bits = spec["max_total_bits"]
        overrides["max_total_bits"] = None if bits is None else int(bits)
    if "name" in spec:
        overrides["name"] = str(spec["name"])
    if overrides:
        problem = replace(problem, **overrides)

    timing: Optional[DRAMTiming] = None
    if spec.get("dram_timing") is not None:
        raw = spec["dram_timing"]
        if not isinstance(raw, dict):
            raise ProtocolError("dram_timing must be a JSON object")
        unknown = set(raw) - _TIMING_FIELDS
        if unknown:
            raise ProtocolError(f"unknown dram_timing field(s): {sorted(unknown)}")
        try:
            timing = DRAMTiming(**{key: int(value) for key, value in raw.items()})
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"invalid dram_timing: {exc}") from None

    system = spec.get("system", "smache")
    if system not in SYSTEMS:
        raise ProtocolError(f"unknown system {system!r}; expected one of {SYSTEMS}")
    try:
        request = EvaluationRequest(
            system=system,
            iterations=int(spec.get("iterations", 1)),
            write_through=bool(spec.get("write_through", True)),
            dram_timing=timing,
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid request knobs: {exc}") from None
    return problem, request


def point_key(problem: StencilProblem, request: EvaluationRequest) -> str:
    """The stable content key of one evaluation — the response memo's key.

    Exactly the key the sweep layer stamps on checkpoint records
    (:meth:`repro.sweep.spec.SweepPoint.key`), so a served point and the
    same point in an offline campaign are recognisably the *same work*.
    """
    return SweepPoint(problem=problem, backend="analytic", request=request).key()


def result_payload(result: EvaluationResult) -> Dict[str, Any]:
    """The JSON-able body of an ``evaluate`` response.

    Carries everything the analytic backend computes — counters plus the
    model's ``extra`` detail — with native int/float types, so a canonical
    encode of this dict is bitwise-comparable against one built from the
    scalar reference path.
    """
    return {
        "system": result.system,
        "iterations": result.iterations,
        "cycles": result.cycles,
        "dram_words_read": result.dram_words_read,
        "dram_words_written": result.dram_words_written,
        "dram_bytes": result.dram_bytes,
        "operations": result.operations,
        "extra": dict(result.extra),
    }


#: Sentinel distinguishing "field not supplied" from an explicit ``None``.
_UNSET: Any = object()


def make_point(
    grid: Tuple[int, int] = (11, 11),
    *,
    system: str = "smache",
    iterations: int = 1,
    write_through: bool = True,
    max_stream_reach: Optional[int] = _UNSET,
    dram_timing: Optional[Dict[str, int]] = None,
    **extra: Any,
) -> Dict[str, Any]:
    """Convenience builder for point specs (clients, benchmarks, tests)."""
    spec: Dict[str, Any] = {
        "grid": [int(grid[0]), int(grid[1])],
        "system": system,
        "iterations": iterations,
        "write_through": write_through,
    }
    if max_stream_reach is not _UNSET:
        spec["max_stream_reach"] = max_stream_reach
    if dram_timing is not None:
        spec["dram_timing"] = dict(dram_timing)
    spec.update(extra)
    return spec
