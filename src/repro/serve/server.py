"""The always-on evaluation service over the vectorized pricing engine.

Two layers:

* :class:`EvaluationService` — the protocol-independent core: point-spec
  parsing, the content-keyed response memo, problem interning, admission
  control with backpressure, the adaptive micro-batcher, and the pricing
  flush (vectorized :meth:`AnalyticBatchEngine.price_batch` by default, the
  scalar reference loop when ``REPRO_ANALYTIC_BATCH=0`` or the service is
  built with ``scalar=True`` — byte-identical responses either way).
  In-process callers (``Workbench.evaluate_async``, tests) use it directly.

* :class:`EvaluationServer` — the stdlib asyncio TCP front: JSON lines in,
  JSON lines out (:mod:`repro.serve.protocol`), one task per request so a
  pipelining client keeps many evaluations in flight on one connection —
  which is exactly what gives the batcher something to batch.

Bounded memory is a design rule, not an aspiration: the admission counter
rejects beyond ``queue_limit`` (clients get ``retry_after_ms`` instead of
the server growing an unbounded queue), the memo, the problem intern table,
the engine's session LRU and the metrics reservoir are all bounded, and a
disconnected client's pending futures are cancelled, priced results dropped
on the floor, never retained.

Resilience: every admitted evaluation runs under ``batch_timeout_s`` (a
hung flush fails that request with a structured ``timeout`` response rather
than pinning the slot), and consecutive engine failures trip a circuit
breaker (:class:`repro.faults.breaker.CircuitBreaker`) that sheds new
evaluations with an ``unavailable`` + ``retry_after_ms`` response until a
cooldown probe succeeds; memo hits bypass the breaker.  ``/stats`` reports
the breaker state, trips, sheds and timeouts.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.api.workbench import Workbench
from repro.faults.breaker import CircuitBreaker
from repro.pipeline.analytic_batch import batching_enabled
from repro.pipeline.backends import EvaluationRequest, EvaluationResult, evaluate
from repro.pipeline.problem import StencilProblem
from repro.serve.batcher import AdaptiveBatcher
from repro.serve.memo import ResponseMemo
from repro.serve.metrics import ServerMetrics
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    parse_point,
    point_key,
    result_payload,
)


class OverloadedError(RuntimeError):
    """Raised (and reported to clients) when admission is over the watermark."""

    def __init__(self, retry_after_ms: int) -> None:
        super().__init__(f"service overloaded; retry after {retry_after_ms} ms")
        self.retry_after_ms = retry_after_ms


class ServiceUnavailableError(RuntimeError):
    """The circuit breaker is open: the engine has been failing; back off."""

    def __init__(self, retry_after_ms: int) -> None:
        super().__init__(f"service unavailable; retry after {retry_after_ms} ms")
        self.retry_after_ms = retry_after_ms


class EvaluationTimeoutError(RuntimeError):
    """An admitted evaluation did not come back within the batch timeout."""

    def __init__(self, timeout_s: float) -> None:
        super().__init__(f"evaluation timed out after {timeout_s:g} s")
        self.timeout_s = timeout_s


class EvaluationService:
    """Micro-batched analytic evaluation behind one shared Workbench session.

    Parameters
    ----------
    workbench:
        The session whose plan cache and pricing engine this service shares;
        a fresh one is created when omitted.  Sharing matters: an in-process
        ``evaluate_async`` caller and the TCP front then hit the same packed
        sessions and memoized folds.
    max_batch / window_ms / min_window_ms / max_window_ms:
        Micro-batcher shape (see :class:`~repro.serve.batcher.AdaptiveBatcher`).
    queue_limit:
        Admission high-watermark: evaluations in flight beyond this are
        rejected with a ``retry_after_ms`` hint instead of queued.
    memo_entries:
        Bound of the content-keyed response memo (0 disables memoization).
    scalar:
        Force the per-request scalar reference path (no vectorized folds,
        no memo) — the benchmark's baseline serving mode.
    batch_timeout_s:
        Per-evaluation deadline once admitted: an engine flush that hangs
        past it fails that request with a structured timeout instead of
        pinning the connection (and its admission slot) forever.
    breaker_threshold / breaker_cooldown_ms:
        Circuit breaker shape: after ``breaker_threshold`` consecutive
        engine failures the breaker opens and evaluations are shed with a
        ``retry_after_ms`` hint for ``breaker_cooldown_ms``, then a single
        probe decides between closing and re-opening.
    """

    def __init__(
        self,
        workbench: Optional[Workbench] = None,
        *,
        max_batch: int = 64,
        window_ms: float = 2.0,
        min_window_ms: float = 0.2,
        max_window_ms: float = 25.0,
        queue_limit: int = 1024,
        memo_entries: int = 4096,
        scalar: bool = False,
        batch_timeout_s: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown_ms: float = 1000.0,
    ) -> None:
        if queue_limit < 1:
            raise ValueError("queue_limit must be positive")
        if batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive")
        self.workbench = workbench if workbench is not None else Workbench()
        self.engine = self.workbench.analytic_engine
        self.cache = self.workbench.cache
        self.queue_limit = queue_limit
        self.scalar = scalar
        self.memo: Optional[ResponseMemo] = (
            ResponseMemo(memo_entries) if memo_entries > 0 and not scalar else None
        )
        self.metrics = ServerMetrics()
        self.batcher = AdaptiveBatcher(
            self._price,
            max_batch=1 if scalar else max_batch,
            window_ms=min_window_ms if scalar else window_ms,
            min_window_ms=min_window_ms,
            max_window_ms=max_window_ms,
            on_flush=lambda size, why: self.metrics.record_batch(size),
        )
        self.batch_timeout_s = batch_timeout_s
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_ms=breaker_cooldown_ms
        )
        self._inflight = 0
        #: Bounded intern table: problem cache-key -> the one instance the
        #: engine sees.  Identity matters downstream — the packed-session
        #: cache keys on object ids — and interning also bounds how many
        #: problem objects the session cache can pin.
        self._interned: "OrderedDict[tuple, StencilProblem]" = OrderedDict()
        self._max_interned = 4096

    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        """Evaluations admitted and not yet answered."""
        return self._inflight

    def _intern(self, problem: StencilProblem) -> StencilProblem:
        key = problem.cache_key()
        known = self._interned.get(key)
        if known is not None:
            self._interned.move_to_end(key)
            return known
        self._interned[key] = problem
        while len(self._interned) > self._max_interned:
            self._interned.popitem(last=False)
        return problem

    def _price(
        self, problems: List[StencilProblem], request: EvaluationRequest
    ) -> List[EvaluationResult]:
        """One bucket flush.  The scalar loop is the byte-exact reference."""
        if self.scalar or not batching_enabled():
            return [
                evaluate(problem, backend="analytic", request=request, cache=self.cache)
                for problem in problems
            ]
        return self.engine.price_batch(
            problems, request, cache=self.cache, with_artifacts=False
        )

    # ------------------------------------------------------------------ #
    async def submit(self, spec: Dict[str, Any]) -> Tuple[Dict[str, Any], str]:
        """Admit, evaluate and answer one point spec.

        Returns ``(payload, served_by)`` with ``served_by`` one of ``memo``
        or ``engine``.  Raises :class:`OverloadedError` past the admission
        watermark, :class:`ServiceUnavailableError` while the circuit
        breaker is open, and :class:`~repro.serve.protocol.ProtocolError` on
        a bad spec — all before any state is queued.  An admitted evaluation
        that outlives ``batch_timeout_s`` raises
        :class:`EvaluationTimeoutError` (and counts as a breaker failure).
        """
        problem, request = parse_point(spec)
        if self._inflight >= self.queue_limit:
            self.metrics.record_rejected()
            # Two windows is the honest hint: one for the queue to flush,
            # one for the retry to ride a fresh batch.
            raise OverloadedError(max(1, int(self.batcher.window_ms * 2)))
        started = time.perf_counter()
        key = point_key(problem, request)
        if self.memo is not None:
            payload = self.memo.get(key)
            if payload is not None:
                # Memo hits never touch the engine, so a tripped breaker
                # does not shed them — cached answers stay cheap and safe.
                self.metrics.record_accepted()
                self.metrics.record_completed(time.perf_counter() - started)
                return payload, "memo"
        if not self.breaker.allow():
            self.metrics.record_shed()
            raise ServiceUnavailableError(self.breaker.retry_after_ms())
        self.metrics.record_accepted()
        self._inflight += 1
        try:
            result = await asyncio.wait_for(
                self.batcher.submit(self._intern(problem), request),
                timeout=self.batch_timeout_s,
            )
        except asyncio.TimeoutError:
            self.breaker.record_failure()
            self.metrics.record_timeout()
            raise EvaluationTimeoutError(self.batch_timeout_s) from None
        except asyncio.CancelledError:
            raise  # a disconnecting client is not an engine failure
        except Exception:
            self.breaker.record_failure()
            raise
        finally:
            self._inflight -= 1
        self.breaker.record_success()
        payload = result_payload(result)
        if self.memo is not None:
            self.memo.put(key, payload)
        self.metrics.record_completed(time.perf_counter() - started)
        return payload, "engine"

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` payload: throughput, latency, batching, caches."""
        engine_info = self.engine.cache_info()
        extra: Dict[str, Any] = {
            "inflight": self._inflight,
            "queue_limit": self.queue_limit,
            "window_ms": round(self.batcher.window_ms, 3),
            "scalar": self.scalar,
            "batching_enabled": not self.scalar and batching_enabled(),
            "memo": (
                self.memo.cache_info()._asdict() if self.memo is not None else None
            ),
            "engine": engine_info._asdict(),
            "engine_hit_rates": {
                "packed_session": round(engine_info.session_hit_rate, 4),
                "fold_memo": round(engine_info.fold_hit_rate, 4),
            },
            "plan_cache": self.workbench.cache_info()._asdict(),
        }
        breaker = self.breaker.snapshot()
        breaker["shed"] = self.metrics.sheds
        breaker["timeouts"] = self.metrics.timeouts
        extra["breaker"] = breaker
        extra["batch_timeout_s"] = self.batch_timeout_s
        return self.metrics.snapshot(extra)


class EvaluationServer:
    """Asyncio TCP front for an :class:`EvaluationService` (JSON lines)."""

    def __init__(
        self,
        service: Optional[EvaluationService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        **service_kwargs: Any,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError("pass either a service or service kwargs, not both")
        self.service = service if service is not None else EvaluationService(**service_kwargs)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: "set[asyncio.Task]" = set()

    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Stop accepting, close the listener, and tear down live connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's main loop)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        write_lock = asyncio.Lock()
        tasks: "set[asyncio.Task]" = set()

        async def respond(message: Dict[str, Any]) -> None:
            async with write_lock:
                writer.write(encode(message))
                await writer.drain()

        async def handle_request(message: Dict[str, Any]) -> None:
            request_id = message.get("id")
            try:
                verb = message.get("verb", "evaluate")
                if verb == "ping":
                    await respond(
                        {"id": request_id, "ok": True, "result": "pong",
                         "protocol": PROTOCOL_VERSION}
                    )
                elif verb == "stats":
                    await respond({"id": request_id, "ok": True, "result": self.service.stats()})
                elif verb == "evaluate":
                    payload, served_by = await self.service.submit(message.get("point", {}))
                    await respond(
                        {"id": request_id, "ok": True, "served_by": served_by,
                         "result": payload}
                    )
                else:
                    await respond(
                        {"id": request_id, "ok": False, "error": f"unknown verb {verb!r}"}
                    )
            except OverloadedError as exc:
                await respond(
                    {"id": request_id, "ok": False, "error": "overloaded",
                     "retry_after_ms": exc.retry_after_ms}
                )
            except ServiceUnavailableError as exc:
                await respond(
                    {"id": request_id, "ok": False, "error": "unavailable",
                     "retry_after_ms": exc.retry_after_ms}
                )
            except EvaluationTimeoutError as exc:
                await respond(
                    {"id": request_id, "ok": False, "error": "timeout",
                     "timeout_s": exc.timeout_s}
                )
            except ProtocolError as exc:
                self.service.metrics.record_error()
                await respond({"id": request_id, "ok": False, "error": str(exc)})
            except asyncio.CancelledError:
                raise
            except ConnectionError:
                pass  # client went away while we were writing
            except Exception as exc:  # noqa: BLE001 — report, don't kill the connection
                self.service.metrics.record_error()
                try:
                    await respond(
                        {"id": request_id, "ok": False,
                         "error": f"internal error: {type(exc).__name__}: {exc}"}
                    )
                except ConnectionError:
                    pass

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    message = decode_line(stripped)
                except ProtocolError as exc:
                    self.service.metrics.record_error()
                    await respond({"id": None, "ok": False, "error": str(exc)})
                    continue
                # One task per request: later requests on the same connection
                # are admitted while earlier ones wait in the batcher —
                # pipelining is what fills buckets.
                task = asyncio.ensure_future(handle_request(message))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # Cancel whatever this connection still has in flight; the
            # batcher skips cancelled waiters, so no future outlives us.
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # CancelledError here is the loop (or stop()) tearing the
                # handler down mid-close; the transport is gone either way.
                pass
            if me is not None:
                self._connections.discard(me)


async def run_server(
    host: str = "127.0.0.1", port: int = 0, **service_kwargs: Any
) -> EvaluationServer:
    """Start a server (mostly for interactive / notebook use)."""
    server = EvaluationServer(host=host, port=port, **service_kwargs)
    await server.start()
    return server
