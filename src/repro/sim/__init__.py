"""Cycle-accurate simulation engine.

This is the substrate on which the hardware models in :mod:`repro.arch` and
:mod:`repro.memory` are built.  It provides:

* :class:`~repro.sim.engine.Simulator` — a clock-driven scheduler that ticks
  every registered component once per cycle and then commits all channels,
  so results are independent of component registration order;
* :class:`~repro.sim.engine.Component` — base class for clocked hardware
  blocks;
* :class:`~repro.sim.channel.Channel` — a two-phase (stage/commit) FIFO used
  for all inter-component communication, modelling registered valid/ready
  links (one cycle of latency per hop, full throughput with capacity >= 2);
* :class:`~repro.sim.fsm.FSM` — a small finite-state-machine helper with
  occupancy statistics;
* :class:`~repro.sim.stats.StatsCollector` and
  :class:`~repro.sim.trace.TraceLog` — counters and event tracing.
"""

from repro.sim.channel import Channel
from repro.sim.engine import (
    ENGINE_MODES,
    Component,
    SimulationError,
    Simulator,
    default_engine,
    set_default_engine,
)
from repro.sim.fsm import FSM
from repro.sim.stats import StatsCollector
from repro.sim.trace import TraceLog

__all__ = [
    "Channel",
    "Component",
    "Simulator",
    "SimulationError",
    "ENGINE_MODES",
    "default_engine",
    "set_default_engine",
    "FSM",
    "StatsCollector",
    "TraceLog",
]
