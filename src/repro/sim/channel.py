"""Two-phase FIFO channels: the wiring of the simulated hardware.

A :class:`Channel` models a registered point-to-point link (an AXI4-Stream
style valid/ready connection with a skid buffer).  Pushes performed during a
cycle become visible to the consumer only on the *next* cycle, which makes
simulation results independent of the order in which components are ticked.

Throughput: because a push performed in cycle ``n`` frees no space until the
commit at the end of cycle ``n``, a channel needs ``capacity >= 2`` to sustain
one transfer per cycle (exactly like a two-entry skid buffer in RTL).

This is the hottest data structure of the whole simulator, so the commit path
is written to do no work for untouched links: a channel (or wire) reports
itself to its owning simulator's *dirty worklist* the first time a cycle
stages an update, and only dirty links commit.  Standalone channels (built
without a simulator, as the unit tests do) simply have no dirty hook and are
committed explicitly by their caller, exactly as before.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Iterable, List, Optional

from repro.utils.validation import check_positive


class Channel:
    """A registered FIFO link between two components."""

    __slots__ = (
        "name",
        "capacity",
        "_queue",
        "_staged_pushes",
        "_staged_pops",
        "_on_dirty",
        "_dirty",
        "mutations",
        "total_pushes",
        "total_pops",
        "push_stall_cycles",
        "pop_stall_cycles",
        "max_occupancy",
    )

    def __init__(
        self,
        name: str,
        capacity: int = 2,
        on_dirty: Optional[Callable[["Channel"], None]] = None,
    ) -> None:
        check_positive("capacity", capacity)
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Any] = deque()
        self._staged_pushes: List[Any] = []
        self._staged_pops = 0
        self._on_dirty = on_dirty
        self._dirty = False
        #: Monotone count of state-changing operations (pushes + pops), used
        #: by the debug engine to prove a skipped region was dead.  Stall
        #: notes are bookkeeping, not activity, and do not count.
        self.mutations = 0
        # statistics
        self.total_pushes = 0
        self.total_pops = 0
        self.push_stall_cycles = 0
        self.pop_stall_cycles = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------ #
    def _mark_dirty(self) -> None:
        if not self._dirty and self._on_dirty is not None:
            self._dirty = True
            self._on_dirty(self)

    # ------------------------------------------------------------------ #
    # producer side
    # ------------------------------------------------------------------ #
    def can_push(self, n: int = 1) -> bool:
        """True if ``n`` more items can be staged this cycle.

        Space freed by pops staged in the same cycle does *not* count: the
        producer sees the occupancy as it was at the last clock edge.
        """
        return len(self._queue) + len(self._staged_pushes) + n <= self.capacity

    def push(self, item: Any) -> None:
        """Stage one item for delivery at the end of the current cycle."""
        if not self.can_push():
            raise SimulationChannelError(
                f"push on full channel '{self.name}' "
                f"(capacity {self.capacity}); call can_push() first"
            )
        self._staged_pushes.append(item)
        self.total_pushes += 1
        self.mutations += 1
        self._mark_dirty()

    def note_push_stall(self, cycles: int = 1) -> None:
        """Record ``cycles`` cycles where the producer had data but the
        channel was full (batched by the fast engine's skip accounting)."""
        self.push_stall_cycles += cycles

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def can_pop(self, n: int = 1) -> bool:
        """True if ``n`` items are available to pop this cycle."""
        return len(self._queue) - self._staged_pops >= n

    def peek(self, offset: int = 0) -> Any:
        """Look at an available item without consuming it."""
        idx = self._staged_pops + offset
        if idx >= len(self._queue):
            raise SimulationChannelError(f"peek past the end of channel '{self.name}'")
        return self._queue[idx]

    def pop(self) -> Any:
        """Consume one item (the removal is applied at the end of the cycle)."""
        if not self.can_pop():
            raise SimulationChannelError(
                f"pop on empty channel '{self.name}'; call can_pop() first"
            )
        item = self._queue[self._staged_pops]
        self._staged_pops += 1
        self.total_pops += 1
        self.mutations += 1
        self._mark_dirty()
        return item

    def note_pop_stall(self, cycles: int = 1) -> None:
        """Record ``cycles`` cycles where the consumer was ready but the
        channel was empty (batched by the fast engine's skip accounting)."""
        self.pop_stall_cycles += cycles

    # ------------------------------------------------------------------ #
    # simulator interface
    # ------------------------------------------------------------------ #
    def commit(self) -> None:
        """Apply the cycle's staged pops and pushes (called by the simulator)."""
        self._dirty = False
        if self._staged_pops:
            queue = self._queue
            for _ in range(self._staged_pops):
                queue.popleft()
            self._staged_pops = 0
        if self._staged_pushes:
            self._queue.extend(self._staged_pushes)
            self._staged_pushes.clear()
            occupancy = len(self._queue)
            if occupancy > self.max_occupancy:
                if occupancy > self.capacity:
                    raise SimulationChannelError(
                        f"channel '{self.name}' exceeded its capacity after commit"
                    )
                self.max_occupancy = occupancy

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._queue.clear()
        self._staged_pushes.clear()
        self._staged_pops = 0
        self._dirty = False
        self.mutations = 0
        self.total_pushes = 0
        self.total_pops = 0
        self.push_stall_cycles = 0
        self.pop_stall_cycles = 0
        self.max_occupancy = 0

    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of committed items currently in the channel."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True when the channel holds no committed or staged items."""
        return not self._queue and not self._staged_pushes

    def drain(self) -> List[Any]:
        """Pop everything currently available (test helper)."""
        out = []
        while self.can_pop():
            out.append(self.pop())
        return out

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.name!r}, {len(self._queue)}/{self.capacity})"


class Wire:
    """A registered single-value signal (level, not a queue).

    Writes become visible at the next cycle; reads always return the value
    latched at the previous clock edge.  Used for stall/valid side-band
    signals where a FIFO would be overkill.
    """

    __slots__ = ("name", "_initial", "_current", "_next", "_on_dirty", "_dirty", "mutations")

    def __init__(
        self,
        name: str,
        initial: Any = 0,
        on_dirty: Optional[Callable[["Wire"], None]] = None,
    ) -> None:
        self.name = name
        self._initial = initial
        self._current = initial
        self._next: Optional[Any] = None
        self._on_dirty = on_dirty
        self._dirty = False
        #: Monotone count of scheduled writes (see :attr:`Channel.mutations`).
        self.mutations = 0

    def get(self) -> Any:
        """Value latched at the previous clock edge."""
        return self._current

    def set(self, value: Any) -> None:
        """Schedule a new value for the next clock edge."""
        self._next = value
        self.mutations += 1
        if not self._dirty and self._on_dirty is not None:
            self._dirty = True
            self._on_dirty(self)

    def commit(self) -> None:
        """Latch the scheduled value (called by the simulator)."""
        self._dirty = False
        if self._next is not None:
            self._current = self._next
            self._next = None

    def reset(self) -> None:
        """Return to the initial value."""
        self._current = self._initial
        self._next = None
        self._dirty = False
        self.mutations = 0


class SimulationChannelError(RuntimeError):
    """Protocol violation on a channel (push-when-full / pop-when-empty)."""


def connect_all(channels: Iterable[Channel]) -> None:
    """Reset a collection of channels (helper used by system builders)."""
    for ch in channels:
        ch.reset()
