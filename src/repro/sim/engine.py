"""The clock-driven simulation kernel.

Every hardware block is a :class:`Component`; the :class:`Simulator` owns the
clock.  Each cycle has two phases:

1. **tick** — every component's :meth:`Component.tick` runs exactly once.  A
   component reads the *committed* state of its input channels/wires and
   stages pushes/pops/writes.
2. **commit** — every channel and wire latches its staged updates.

Because a component never observes another component's same-cycle writes, the
result of a simulation does not depend on the order in which components were
registered, exactly like synchronous RTL.

The idle-horizon fast path
--------------------------
Ticking every component on every cycle is exact but wasteful: most ticks are
provable no-ops — DRAM latency waits, pipeline drains, prefetch stalls, and
the long tails of a memory-bound stream where only one component has work.
Components therefore publish an **idle horizon** through
:meth:`Component.next_activity`: the earliest future cycle at which their
``tick`` could have any effect, assuming their inputs do not change.  The
fast scheduler uses it to batch-advance over **dead regions**: when *every*
component's horizon lies in the future, no component can act, so no channel
or wire can change, so the assumption holds inductively across the whole
region and the simulator jumps the clock to the minimum horizon without
executing any cycle at all.  Active cycles run exactly like the naive
scheduler — the fast path adds a single branch to them: horizons are only
evaluated after a *quiet* cycle (one that committed no channel or wire),
because a cycle that moved data cannot be followed by a dead region the
horizon pass would miss.

Per-cycle statistics that the region's no-op ticks would still have
recorded (stall counters, FSM occupancy) are reproduced exactly through
:meth:`Component.skip`.

Three engine modes are available (see :func:`set_default_engine` and the
``REPRO_SIM_ENGINE`` environment variable):

* ``"fast"``  — idle-horizon cycle skipping (the default);
* ``"naive"`` — tick every component on every cycle (the reference
  scheduler);
* ``"debug"`` — take the fast path's skip decisions but *execute* every
  skipped region naively, asserting it really was dead: no channel or wire
  activity at all, and no drift of any component's
  :meth:`Component.skip_digest`.  Use this to validate the
  ``next_activity`` implementation of a new component.

The fast path is bit-identical to naive ticking: cycle counts, traffic
counters, stall statistics and outputs all match, which the parity suite in
``tests/arch/test_parity.py`` enforces across grids, reaches, partitions and
boundary kinds.

The idle-horizon contract for component authors
-----------------------------------------------
``next_activity()`` is called *between* cycles (all staged channel state is
committed) and must return:

* ``self.sim.cycle`` when the next ``tick()`` may change any state at all —
  pushing/popping a channel, mutating internal state, or raising;
* a future cycle ``c`` when the component is dormant until a *self-scheduled*
  event at ``c`` (a pipeline retire time, a DRAM ready time).  Any
  cycle-dependent change of *observable* state counts as an event — in
  particular, if :meth:`Component.finished` flips purely because the clock
  reaches some cycle (a port draining), that cycle must be reported, or
  :meth:`Simulator.run_until_idle` could sleep through the transition;
* ``None`` when the component has no self-scheduled work and can only be
  woken by an input change (another component's push/pop).

Per-cycle bookkeeping that a no-op tick would still perform (stall counters,
FSM occupancy) must not be declared as activity; implement :meth:`skip`
instead, which receives the number of skipped cycles and batch-accrues
exactly what the naive ticks would have.  Components that do not override
``next_activity`` are conservatively treated as active every cycle and stay
correct (the system simply never skips).  Cross-component *direct* state
(a control method call, or reading another component's counters live during
a tick) needs no special handling: executed cycles tick every component in
registration order exactly like the naive scheduler, and inside a skipped
region no component acts, so no such state can move.
The condition passed to :meth:`Simulator.run_until` must be a function of
simulation *state* (not of the raw cycle counter): a dead region cannot
change state, so the fast path does not re-sample the condition inside one.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.channel import Channel, Wire
from repro.utils.validation import check_positive

#: Recognised scheduler implementations.
ENGINE_MODES = ("fast", "naive", "debug")

_default_engine = os.environ.get("REPRO_SIM_ENGINE", "fast")
if _default_engine not in ENGINE_MODES:
    # A typo here must not silently run a different scheduler than the user
    # asked for (e.g. believing debug cross-checks ran when they did not).
    warnings.warn(
        f"REPRO_SIM_ENGINE={_default_engine!r} is not one of {ENGINE_MODES}; "
        "falling back to 'fast'",
        RuntimeWarning,
        stacklevel=2,
    )
    _default_engine = "fast"


def default_engine() -> str:
    """The engine mode used by simulators constructed without an override."""
    return _default_engine


def set_default_engine(mode: str) -> str:
    """Set the process-wide default engine mode; returns the previous mode.

    Used by parity tests and benchmarks to run the same workload under
    ``"fast"`` and ``"naive"`` scheduling without threading a parameter
    through every construction site.
    """
    global _default_engine
    if mode not in ENGINE_MODES:
        raise ValueError(f"unknown engine mode {mode!r}; expected one of {ENGINE_MODES}")
    previous = _default_engine
    _default_engine = mode
    return previous


class SimulationError(RuntimeError):
    """Raised for protocol violations or runaway simulations."""


class Component:
    """Base class for clocked hardware blocks.

    Subclasses implement :meth:`tick` (mandatory) and may override
    :meth:`reset` (call ``super().reset()``), :meth:`finished`, and the
    idle-horizon hooks :meth:`next_activity` / :meth:`skip` (see the module
    docstring for the contract).
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        sim.register_component(self)

    # ------------------------------------------------------------------ #
    def channel(self, suffix: str, capacity: int = 2) -> Channel:
        """Create a channel owned by (named after) this component."""
        return self.sim.create_channel(f"{self.name}.{suffix}", capacity)

    def wire(self, suffix: str, initial=0) -> Wire:
        """Create a wire owned by this component."""
        return self.sim.create_wire(f"{self.name}.{suffix}", initial)

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return the component to its power-on state."""

    def tick(self) -> None:
        """Advance one clock cycle (must be overridden)."""
        raise NotImplementedError

    def finished(self) -> bool:
        """True when the component has no more work to do (used by run_until_idle)."""
        return True

    # ------------------------------------------------------------------ #
    # idle-horizon protocol
    # ------------------------------------------------------------------ #
    def next_activity(self) -> Optional[int]:
        """Earliest cycle at which ``tick()`` may have an effect.

        The conservative default declares the component active every cycle,
        which keeps components that predate the fast path exactly correct
        (they are simply never skipped over).
        """
        return self.sim.cycle

    def skip(self, cycles: int) -> None:
        """Account ``cycles`` consecutive no-op ticks that were not executed.

        Override to batch-accrue per-cycle bookkeeping (stall counters, FSM
        occupancy) that the naive scheduler would have recorded during the
        skipped region.  Must not change any state an input-driven ``tick``
        depends on.
        """

    def skip_digest(self) -> Optional[Tuple]:
        """State that must not drift across a dead region (debug engine).

        Return a tuple of load-bearing state (FSM states, progress counters)
        *excluding* the per-cycle statistics that :meth:`skip` reproduces.
        The debug engine compares digests before and after naively executing
        a region the fast path would have skipped.
        """
        return None

    @property
    def cycle(self) -> int:
        """The current cycle number."""
        return self.sim.cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Simulator:
    """Owns the clock, the components and the channels."""

    def __init__(self, name: str = "sim", engine: Optional[str] = None) -> None:
        self.name = name
        self.cycle = 0
        if engine is not None and engine not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {engine!r}; expected one of {ENGINE_MODES}")
        self.engine = engine or default_engine()
        self._components: List[Component] = []
        self._channels: Dict[str, Channel] = {}
        self._wires: Dict[str, Wire] = {}
        # commit worklists: only channels/wires with staged updates commit
        self._dirty_channels: List[Channel] = []
        self._dirty_wires: List[Wire] = []
        # efficiency counters (surfaced through run_stats())
        self.ticks_executed = 0
        self.cycles_skipped = 0
        self.skip_regions = 0
        self.component_ticks = 0
        # True when the last executed cycle committed no channel or wire: the
        # trigger for evaluating idle horizons (a cycle that moved data can
        # never be the *second* cycle of a dead region, so active phases pay
        # no horizon overhead at all).
        self._quiet = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def register_component(self, component: Component) -> None:
        """Add a component to the tick list (called by Component.__init__)."""
        self._components.append(component)

    def create_channel(self, name: str, capacity: int = 2) -> Channel:
        """Create and register a channel."""
        if name in self._channels:
            raise SimulationError(f"duplicate channel name {name!r}")
        ch = Channel(name, capacity, on_dirty=self._dirty_channels.append)
        self._channels[name] = ch
        return ch

    def create_wire(self, name: str, initial=0) -> Wire:
        """Create and register a wire."""
        if name in self._wires:
            raise SimulationError(f"duplicate wire name {name!r}")
        w = Wire(name, initial, on_dirty=self._dirty_wires.append)
        self._wires[name] = w
        return w

    @property
    def components(self) -> List[Component]:
        """The registered components, in registration order."""
        return list(self._components)

    @property
    def channels(self) -> Dict[str, Channel]:
        """All channels by name."""
        return dict(self._channels)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reset the clock, all components, channels and wires."""
        self.cycle = 0
        self.ticks_executed = 0
        self.cycles_skipped = 0
        self.skip_regions = 0
        self.component_ticks = 0
        self._quiet = False
        self._dirty_channels.clear()
        self._dirty_wires.clear()
        for comp in self._components:
            comp.reset()
        for ch in self._channels.values():
            ch.reset()
        for w in self._wires.values():
            w.reset()

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles (naive ticking).

        This is the reference scheduler: every component ticks on every
        cycle.  The commit phase only visits channels and wires that staged
        an update this cycle (the dirty worklists), which is an observable
        no-op — untouched channels have nothing to latch.
        """
        check_positive("cycles", cycles)
        components = self._components
        dirty_channels = self._dirty_channels
        dirty_wires = self._dirty_wires
        for _ in range(cycles):
            for comp in components:
                comp.tick()
            if dirty_channels or dirty_wires:
                self._quiet = False
                if dirty_channels:
                    for ch in dirty_channels:
                        ch.commit()
                    dirty_channels.clear()
                if dirty_wires:
                    for w in dirty_wires:
                        w.commit()
                    dirty_wires.clear()
            else:
                self._quiet = True
            self.cycle += 1
            self.ticks_executed += 1
            self.component_ticks += len(components)

    # ------------------------------------------------------------------ #
    # idle-horizon machinery
    # ------------------------------------------------------------------ #
    def _advance_event(self, limit: int) -> None:
        """Advance the simulation by one scheduling event, never past ``limit``.

        One event is either a single executed cycle (ticking every component,
        exactly like the naive scheduler) or a batch advance over a fully
        dead region up to the minimum future horizon.  Horizons are only
        evaluated after a *quiet* executed cycle — one that committed no
        channel or wire — so active phases run at full naive speed with a
        single extra branch per cycle.  Simulation state — and therefore any
        state-dependent run condition — can only change across executed
        cycles, so callers re-check their condition after every call.
        """
        if not self._quiet or self._dirty_channels or self._dirty_wires:
            # Either the last cycle moved data (so this one cannot be part of
            # a missed dead region) or a testbench staged updates from
            # outside a tick: execute normally.
            self.step(1)
            return
        components = self._components
        now = self.cycle
        horizon: Optional[int] = None
        for comp in components:
            c = comp.next_activity()
            if c is None:
                continue
            if c <= now:
                self.step(1)
                return
            if horizon is None or c < horizon:
                horizon = c
        # Fully dead region: nothing can happen until the earliest
        # self-scheduled wake-up (or ever, if there is none — then the
        # caller's budget check fires, exactly like naive ticking).
        target = min(horizon, limit) if horizon is not None else limit
        cycles = target - now
        if cycles <= 0:
            self.step(1)
            return
        if self.engine == "debug":
            self._cross_check_region(cycles)
            return
        for comp in components:
            comp.skip(cycles)
        self.cycle = target
        self.cycles_skipped += cycles
        self.skip_regions += 1
        # The wake-up cycle at the region's end must execute.
        self._quiet = False

    def _cross_check_region(self, cycles: int) -> None:
        """Debug engine: naively execute a would-be-skipped region and verify
        it was dead."""
        mutations_before = sum(ch.mutations for ch in self._channels.values()) + sum(
            w.mutations for w in self._wires.values()
        )
        digests_before = [comp.skip_digest() for comp in self._components]
        start = self.cycle
        self.step(cycles)
        mutations_after = sum(ch.mutations for ch in self._channels.values()) + sum(
            w.mutations for w in self._wires.values()
        )
        if mutations_after != mutations_before:
            raise SimulationError(
                f"simulation '{self.name}': channel/wire activity inside the dead "
                f"region [{start}, {start + cycles}) — some component's "
                "next_activity() under-reported its wake-up cycle"
            )
        for comp, before in zip(self._components, digests_before):
            after = comp.skip_digest()
            if after != before:
                raise SimulationError(
                    f"simulation '{self.name}': component '{comp.name}' state "
                    f"drifted inside the dead region [{start}, {start + cycles}): "
                    f"{before!r} -> {after!r}"
                )
        self.skip_regions += 1

    # ------------------------------------------------------------------ #
    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000_000,
        check_every: int = 1,
    ) -> int:
        """Run until ``condition()`` is true; returns the cycle count.

        Raises :class:`SimulationError` if the condition is not met within
        ``max_cycles`` (runaway / deadlock protection).  The budget is
        respected exactly even when ``check_every > 1``: the last batch is
        clipped so the simulation never silently runs past ``max_cycles``.

        With the fast engine (and ``check_every == 1``) dead regions are
        batch-skipped; the condition is re-evaluated after every executed
        cycle, and never *inside* a dead region — state cannot change there,
        so the condition (which must depend on simulation state only)
        cannot either.  ``check_every > 1`` keeps the historical naive
        batching semantics: the condition is literally sampled every
        ``check_every`` cycles.
        """
        check_positive("max_cycles", max_cycles)
        check_positive("check_every", check_every)
        if self.engine == "naive" or check_every != 1:
            while not condition():
                if self.cycle >= max_cycles:
                    raise SimulationError(
                        f"simulation '{self.name}' exceeded {max_cycles} cycles "
                        "without meeting its termination condition"
                    )
                self.step(min(check_every, max_cycles - self.cycle))
            return self.cycle

        while not condition():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation '{self.name}' exceeded {max_cycles} cycles "
                    "without meeting its termination condition"
                )
            self._advance_event(max_cycles)
        return self.cycle

    def run_until_idle(self, max_cycles: int = 10_000_000, settle: int = 4) -> int:
        """Run until every component reports finished and channels are empty.

        ``settle`` extra cycles are required to be idle consecutively before
        stopping, so that single-cycle bubbles do not end the run early.
        """
        idle_streak = 0

        def all_idle() -> bool:
            if not all(c.finished() for c in self._components):
                return False
            return all(ch.is_idle for ch in self._channels.values())

        if self.engine == "naive":
            while idle_streak < settle:
                if self.cycle >= max_cycles:
                    raise SimulationError(
                        f"simulation '{self.name}' exceeded {max_cycles} cycles without idling"
                    )
                self.step(1)
                idle_streak = idle_streak + 1 if all_idle() else 0
            return self.cycle

        while idle_streak < settle:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation '{self.name}' exceeded {max_cycles} cycles without idling"
                )
            idle_before = all_idle()
            # While already idle, a dead region only needs to cover the rest
            # of the settle window; clip so the final cycle count matches
            # naive ticking exactly.
            limit = max_cycles
            if idle_before:
                limit = min(max_cycles, self.cycle + (settle - idle_streak))
            before = self.cycle
            self._advance_event(limit)
            advanced = self.cycle - before
            # Naive ticking evaluates the predicate at every cycle boundary.
            # Inside an advanced region the *intermediate* boundaries all see
            # the frozen pre-region state (cycle-dependent flips like a port
            # draining are horizon events, so they land exactly on the
            # region's end) — credit them from idle_before, then evaluate the
            # end boundary fresh.
            if advanced > 1:
                idle_streak = idle_streak + (advanced - 1) if idle_before else 0
            idle_streak = idle_streak + 1 if all_idle() else 0
        return self.cycle

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def run_stats(self) -> Dict[str, object]:
        """Scheduler efficiency counters for the run so far.

        ``ticks_executed`` counts cycles that were actually executed,
        ``cycles_skipped`` counts cycles batch-advanced over dead regions
        (in ``skip_regions`` batches), ``component_ticks`` counts individual
        ``tick()`` calls, and ``skip_ratio`` is the fraction of simulated
        time that was skipped.  Under the naive engine the ratio is 0 by
        construction.
        """
        total = self.ticks_executed + self.cycles_skipped
        return {
            "engine": self.engine,
            "cycles": self.cycle,
            "ticks_executed": self.ticks_executed,
            "cycles_skipped": self.cycles_skipped,
            "skip_regions": self.skip_regions,
            "skip_ratio": self.cycles_skipped / total if total else 0.0,
            "component_ticks": self.component_ticks,
        }

    def channel_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel transfer and stall statistics."""
        return {
            name: {
                "pushes": ch.total_pushes,
                "pops": ch.total_pops,
                "push_stalls": ch.push_stall_cycles,
                "pop_stalls": ch.pop_stall_cycles,
                "max_occupancy": ch.max_occupancy,
            }
            for name, ch in self._channels.items()
        }
