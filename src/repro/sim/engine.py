"""The clock-driven simulation kernel.

Every hardware block is a :class:`Component`; the :class:`Simulator` owns the
clock.  Each cycle has two phases:

1. **tick** — every component's :meth:`Component.tick` runs exactly once.  A
   component reads the *committed* state of its input channels/wires and
   stages pushes/pops/writes.
2. **commit** — every channel and wire latches its staged updates.

Because a component never observes another component's same-cycle writes, the
result of a simulation does not depend on the order in which components were
registered, exactly like synchronous RTL.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.sim.channel import Channel, Wire
from repro.utils.validation import check_positive


class SimulationError(RuntimeError):
    """Raised for protocol violations or runaway simulations."""


class Component:
    """Base class for clocked hardware blocks.

    Subclasses implement :meth:`tick` (mandatory) and may override
    :meth:`reset` (call ``super().reset()``) and :meth:`finished`.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        sim.register_component(self)

    # ------------------------------------------------------------------ #
    def channel(self, suffix: str, capacity: int = 2) -> Channel:
        """Create a channel owned by (named after) this component."""
        return self.sim.create_channel(f"{self.name}.{suffix}", capacity)

    def wire(self, suffix: str, initial=0) -> Wire:
        """Create a wire owned by this component."""
        return self.sim.create_wire(f"{self.name}.{suffix}", initial)

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return the component to its power-on state."""

    def tick(self) -> None:
        """Advance one clock cycle (must be overridden)."""
        raise NotImplementedError

    def finished(self) -> bool:
        """True when the component has no more work to do (used by run_until_idle)."""
        return True

    @property
    def cycle(self) -> int:
        """The current cycle number."""
        return self.sim.cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class Simulator:
    """Owns the clock, the components and the channels."""

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.cycle = 0
        self._components: List[Component] = []
        self._channels: Dict[str, Channel] = {}
        self._wires: Dict[str, Wire] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def register_component(self, component: Component) -> None:
        """Add a component to the tick list (called by Component.__init__)."""
        self._components.append(component)

    def create_channel(self, name: str, capacity: int = 2) -> Channel:
        """Create and register a channel."""
        if name in self._channels:
            raise SimulationError(f"duplicate channel name {name!r}")
        ch = Channel(name, capacity)
        self._channels[name] = ch
        return ch

    def create_wire(self, name: str, initial=0) -> Wire:
        """Create and register a wire."""
        if name in self._wires:
            raise SimulationError(f"duplicate wire name {name!r}")
        w = Wire(name, initial)
        self._wires[name] = w
        return w

    @property
    def components(self) -> List[Component]:
        """The registered components, in registration order."""
        return list(self._components)

    @property
    def channels(self) -> Dict[str, Channel]:
        """All channels by name."""
        return dict(self._channels)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reset the clock, all components, channels and wires."""
        self.cycle = 0
        for comp in self._components:
            comp.reset()
        for ch in self._channels.values():
            ch.reset()
        for w in self._wires.values():
            w.reset()

    def step(self, cycles: int = 1) -> None:
        """Advance the simulation by ``cycles`` clock cycles."""
        check_positive("cycles", cycles)
        for _ in range(cycles):
            for comp in self._components:
                comp.tick()
            for ch in self._channels.values():
                ch.commit()
            for w in self._wires.values():
                w.commit()
            self.cycle += 1

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000_000,
        check_every: int = 1,
    ) -> int:
        """Run until ``condition()`` is true; returns the cycle count.

        Raises :class:`SimulationError` if the condition is not met within
        ``max_cycles`` (runaway / deadlock protection).  The budget is
        respected exactly even when ``check_every > 1``: the last batch is
        clipped so the simulation never silently runs past ``max_cycles``.
        """
        check_positive("max_cycles", max_cycles)
        check_positive("check_every", check_every)
        while not condition():
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation '{self.name}' exceeded {max_cycles} cycles "
                    "without meeting its termination condition"
                )
            self.step(min(check_every, max_cycles - self.cycle))
        return self.cycle

    def run_until_idle(self, max_cycles: int = 10_000_000, settle: int = 4) -> int:
        """Run until every component reports finished and channels are empty.

        ``settle`` extra cycles are required to be idle consecutively before
        stopping, so that single-cycle bubbles do not end the run early.
        """
        idle_streak = 0

        def all_idle() -> bool:
            if not all(c.finished() for c in self._components):
                return False
            return all(ch.is_idle for ch in self._channels.values())

        while idle_streak < settle:
            if self.cycle >= max_cycles:
                raise SimulationError(
                    f"simulation '{self.name}' exceeded {max_cycles} cycles without idling"
                )
            self.step(1)
            idle_streak = idle_streak + 1 if all_idle() else 0
        return self.cycle

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def channel_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel transfer and stall statistics."""
        return {
            name: {
                "pushes": ch.total_pushes,
                "pops": ch.total_pops,
                "push_stalls": ch.push_stall_cycles,
                "pop_stalls": ch.pop_stall_cycles,
                "max_occupancy": ch.max_occupancy,
            }
            for name, ch in self._channels.items()
        }
