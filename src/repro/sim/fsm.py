"""A small finite-state-machine helper.

The Smache controller is specified in the paper as three concurrent FSMs
(prefetch, gather/emit, write-back).  This helper gives the architecture
models named states, guarded transitions and per-state occupancy statistics
— and gives the synthesis model something structural to cost (state registers
and transition decode logic).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class FSM:
    """A named finite state machine with occupancy counters."""

    def __init__(self, name: str, states: Iterable[str], initial: str) -> None:
        self.name = name
        self.states: Tuple[str, ...] = tuple(states)
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"FSM '{name}' has duplicate states")
        if initial not in self.states:
            raise ValueError(f"initial state {initial!r} not among states {self.states}")
        self.initial = initial
        self.state = initial
        self.cycles_in_state: Dict[str, int] = {s: 0 for s in self.states}
        self.transition_count = 0
        self.history: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return to the initial state and clear statistics."""
        self.state = self.initial
        self.cycles_in_state = {s: 0 for s in self.states}
        self.transition_count = 0
        self.history.clear()

    def is_in(self, *states: str) -> bool:
        """True if the FSM is currently in any of the given states."""
        for s in states:
            if s not in self.states:
                raise ValueError(f"unknown state {s!r} for FSM '{self.name}'")
        return self.state in states

    def go(self, state: str, cycle: Optional[int] = None) -> None:
        """Transition to ``state`` (recording the cycle if provided)."""
        if state not in self.states:
            raise ValueError(f"unknown state {state!r} for FSM '{self.name}'")
        if state != self.state:
            self.transition_count += 1
            if cycle is not None:
                self.history.append((cycle, state))
        self.state = state

    def tick(self) -> None:
        """Account one cycle spent in the current state."""
        self.cycles_in_state[self.state] += 1

    def skip(self, cycles: int) -> None:
        """Account ``cycles`` consecutive cycles spent in the current state.

        Called by components from their :meth:`repro.sim.engine.Component.skip`
        hook when the fast engine batch-advances over a dead region: the FSM
        cannot transition inside such a region, so its occupancy statistics
        accrue in one step and stay identical to naive per-cycle ticking.
        """
        self.cycles_in_state[self.state] += cycles

    # ------------------------------------------------------------------ #
    @property
    def n_states(self) -> int:
        """Number of states (used by the synthesis resource model)."""
        return len(self.states)

    @property
    def state_register_bits(self) -> int:
        """Bits needed to encode the state (binary encoding)."""
        n = max(1, self.n_states - 1)
        return max(1, n.bit_length())

    def occupancy(self) -> Dict[str, int]:
        """Cycles spent per state."""
        return dict(self.cycles_in_state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FSM({self.name!r}, state={self.state!r})"
