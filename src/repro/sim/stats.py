"""Named counters and simple histograms for simulation statistics."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Mapping


class StatsCollector:
    """A bag of named counters shared by the components of one system."""

    def __init__(self, name: str = "stats") -> None:
        self.name = name
        self._counters: Dict[str, float] = defaultdict(float)
        self._histograms: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))

    # ------------------------------------------------------------------ #
    def incr(self, key: str, amount: float = 1) -> None:
        """Increment counter ``key`` by ``amount``."""
        self._counters[key] += amount

    def set(self, key: str, value: float) -> None:
        """Set counter ``key`` to ``value``."""
        self._counters[key] = value

    def get(self, key: str, default: float = 0) -> float:
        """Read counter ``key`` (0 if never written)."""
        return self._counters.get(key, default)

    def observe(self, key: str, value: int) -> None:
        """Add an observation to histogram ``key``."""
        self._histograms[key][value] += 1

    def histogram(self, key: str) -> Mapping[int, int]:
        """Return histogram ``key`` as a value -> count mapping."""
        return dict(self._histograms.get(key, {}))

    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, float]:
        """All counters as a plain dict."""
        return dict(self._counters)

    def reset(self) -> None:
        """Clear all counters and histograms."""
        self._counters.clear()
        self._histograms.clear()

    def merge(self, other: "StatsCollector") -> None:
        """Add another collector's counters into this one."""
        for key, value in other.counters().items():
            self._counters[key] += value
        for key, hist in other._histograms.items():
            for value, count in hist.items():
                self._histograms[key][value] += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsCollector({self.name!r}, {len(self._counters)} counters)"
