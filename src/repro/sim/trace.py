"""Lightweight event tracing for the simulated hardware.

A :class:`TraceLog` records ``(cycle, source, event, payload)`` tuples.  It is
disabled by default (tracing every cycle of a hundred work-instances would be
slow and unnecessary); tests and the examples enable it to inspect controller
behaviour, warm-up sequencing and buffer swaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    cycle: int
    source: str
    event: str
    payload: Any = None


class TraceLog:
    """An append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True, max_events: int = 1_000_000) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------ #
    def record(self, cycle: int, source: str, event: str, payload: Any = None) -> None:
        """Record one event (no-op when disabled or full)."""
        if not self.enabled:
            return
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(TraceEvent(cycle=cycle, source=source, event=event, payload=payload))

    # ------------------------------------------------------------------ #
    def events(
        self,
        source: Optional[str] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Filtered view of the recorded events."""
        out = []
        for e in self._events:
            if source is not None and e.source != source:
                continue
            if event is not None and e.event != event:
                continue
            if predicate is not None and not predicate(e):
                continue
            out.append(e)
        return out

    def first(self, event: str) -> Optional[TraceEvent]:
        """The first event with the given name, if any."""
        for e in self._events:
            if e.event == event:
                return e
        return None

    def count(self, event: str) -> int:
        """Number of events with the given name."""
        return sum(1 for e in self._events if e.event == event)

    def cycles_of(self, event: str) -> List[int]:
        """Cycle numbers of every occurrence of ``event``."""
        return [e.cycle for e in self._events if e.event == event]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self.dropped = 0

    def format(self, limit: int = 100) -> str:
        """Human-readable dump of (up to ``limit``) events."""
        lines = []
        for e in self._events[:limit]:
            payload = "" if e.payload is None else f" {e.payload!r}"
            lines.append(f"[{e.cycle:>8}] {e.source:<24} {e.event}{payload}")
        if len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)
