"""The parallel sweep engine: declarative, resumable evaluation campaigns.

Where :mod:`repro.pipeline` makes *one* evaluation cheap, this package makes
*many* evaluations scale: describe the problem space once, let a runner
execute it on 1..N cores, checkpoint every completed point, and aggregate
the records into a report.

* :class:`SweepSpec` — the declarative space (grid sizes × stencils ×
  partitions × reaches × backends × systems) expanding to
  :class:`SweepPoint`\\ s with stable content keys;
* :mod:`repro.sweep.runners` — the executor layer: :class:`SerialRunner`
  and the chunk-sharded :class:`ProcessPoolRunner` (warm per-worker plan
  caches, cost-balanced chunks);
* :mod:`repro.sweep.events` — the typed :class:`RunEvent` stream every
  campaign publishes (``PointStarted`` … ``CampaignFinished``), consumed by
  pluggable observers: the live :class:`ProgressReporter`, the JSONL
  :class:`CheckpointObserver` and the result aggregator;
* :mod:`repro.sweep.checkpoint` — append-only JSONL checkpoints with
  compaction; a killed campaign resumes without re-evaluating completed
  points, and ``--follow`` tails the file live (:mod:`repro.sweep.follow`);
* :mod:`repro.sweep.eventlog` — durable event-stream persistence: an
  :class:`EventLogObserver` serialises every event (schema-versioned,
  fingerprint-guarded, with worker attribution) to a JSONL sidecar, and
  :class:`CampaignReplay` re-drives any observer from it deterministically
  (``python -m repro.sweep replay``);
* :mod:`repro.sweep.strategies` — grid, seeded-random and
  successive-halving (price analytically, re-simulate survivors) search;
* :func:`execute_campaign` / :class:`CampaignResult` — orchestration and the
  aggregation/report API, with a byte-stable canonical serialisation so a
  parallel campaign is provably identical to a serial one, and
  :meth:`CampaignResult.diff` for regression tracking across PRs.

Prefer driving campaigns through :class:`repro.api.Workbench`;
:func:`run_campaign` remains as a deprecated one-shot shim.

Command line: ``python -m repro.sweep --help`` (subcommands: ``compact``,
``diff``, ``follow``, ``replay``).
"""

from repro.sweep.spec import SweepPoint, SweepSpec, smoke_spec
from repro.sweep.record import PointRecord, canonical_json
from repro.sweep.runners import (
    ProcessPoolRunner,
    Runner,
    SerialRunner,
    cost_balanced_chunks,
    make_runner,
    point_cost_weight,
)
from repro.sweep.checkpoint import (
    CampaignCheckpoint,
    CheckpointMismatch,
    CompactionStats,
)
from repro.sweep.events import (
    CampaignFinished,
    CampaignStarted,
    CheckpointFlushed,
    CheckpointObserver,
    EventBus,
    EventLog,
    ObserverError,
    PointCompleted,
    PointResumed,
    PointStarted,
    ProgressReporter,
    RunEvent,
    RunObserver,
)
from repro.sweep.eventlog import (
    EVENT_LOG_FORMAT,
    CampaignReplay,
    EventLogMismatch,
    EventLogObserver,
    ReplayStats,
    default_event_log_path,
)
from repro.sweep.follow import follow_campaign, follow_checkpoint, follow_event_log
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    get_strategy,
)
from repro.sweep.campaign import (
    CampaignDiff,
    CampaignResult,
    diff_canonical_rows,
    execute_campaign,
    pareto_front_records,
    run_campaign,
)

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "smoke_spec",
    "PointRecord",
    "canonical_json",
    "Runner",
    "SerialRunner",
    "ProcessPoolRunner",
    "make_runner",
    "cost_balanced_chunks",
    "point_cost_weight",
    "CampaignCheckpoint",
    "CheckpointMismatch",
    "CompactionStats",
    "RunEvent",
    "CampaignStarted",
    "PointStarted",
    "PointCompleted",
    "PointResumed",
    "CheckpointFlushed",
    "CampaignFinished",
    "EventBus",
    "EventLog",
    "ObserverError",
    "RunObserver",
    "ProgressReporter",
    "CheckpointObserver",
    "EVENT_LOG_FORMAT",
    "EventLogObserver",
    "EventLogMismatch",
    "CampaignReplay",
    "ReplayStats",
    "default_event_log_path",
    "follow_campaign",
    "follow_checkpoint",
    "follow_event_log",
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "SuccessiveHalving",
    "get_strategy",
    "CampaignDiff",
    "CampaignResult",
    "diff_canonical_rows",
    "execute_campaign",
    "pareto_front_records",
    "run_campaign",
]
