"""The parallel sweep engine: declarative, resumable evaluation campaigns.

Where :mod:`repro.pipeline` makes *one* evaluation cheap, this package makes
*many* evaluations scale: describe the problem space once, let a runner
execute it on 1..N cores, checkpoint every completed point, and aggregate
the records into a report.

* :class:`SweepSpec` — the declarative space (grid sizes × stencils ×
  partitions × reaches × backends × systems) expanding to
  :class:`SweepPoint`\\ s with stable content keys;
* :mod:`repro.sweep.runners` — the executor layer: :class:`SerialRunner`
  and the chunk-sharded :class:`ProcessPoolRunner` (warm per-worker plan
  caches), also backing ``evaluate_batch(..., jobs=N)``;
* :mod:`repro.sweep.checkpoint` — append-only JSONL checkpoints; a killed
  campaign resumes without re-evaluating completed points;
* :mod:`repro.sweep.strategies` — grid, seeded-random and
  successive-halving (price analytically, re-simulate survivors) search;
* :func:`run_campaign` / :class:`CampaignResult` — orchestration and the
  aggregation/report API, with a byte-stable canonical serialisation so a
  parallel campaign is provably identical to a serial one.

Command line: ``python -m repro.sweep --help``.
"""

from repro.sweep.spec import SweepPoint, SweepSpec, smoke_spec
from repro.sweep.record import PointRecord, canonical_json
from repro.sweep.runners import ProcessPoolRunner, Runner, SerialRunner, make_runner
from repro.sweep.checkpoint import CampaignCheckpoint, CheckpointMismatch
from repro.sweep.strategies import (
    GridSearch,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    get_strategy,
)
from repro.sweep.campaign import CampaignResult, pareto_front_records, run_campaign

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "smoke_spec",
    "PointRecord",
    "canonical_json",
    "Runner",
    "SerialRunner",
    "ProcessPoolRunner",
    "make_runner",
    "CampaignCheckpoint",
    "CheckpointMismatch",
    "SearchStrategy",
    "GridSearch",
    "RandomSearch",
    "SuccessiveHalving",
    "get_strategy",
    "CampaignResult",
    "pareto_front_records",
    "run_campaign",
]
