"""Command-line campaign driver: ``python -m repro.sweep``.

Without arguments a small built-in smoke campaign runs serially; axes,
parallelism, search strategy and the checkpoint file are all flags.  Re-run
the same command to resume: completed points load from the checkpoint and
are not re-evaluated (the report counts them as *resumed*).

Examples
--------
Run the smoke campaign on two workers with a resumable checkpoint::

    python -m repro.sweep --jobs 2 --checkpoint campaign-smoke.jsonl

A bigger declarative space with successive halving::

    python -m repro.sweep --grids 24x24,48x48,96x96 --reaches 0,8,none \\
        --modes hybrid,register_only --strategy halving --jobs 4
"""

from __future__ import annotations

import argparse
import sys

from repro.core.partition import StreamBufferMode
from repro.pipeline.problem import StencilProblem
from repro.sweep.campaign import run_campaign
from repro.sweep.spec import SweepSpec, _parse_grid_list, _parse_reach_list, smoke_spec
from repro.sweep.strategies import get_strategy


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """The campaign spec described by the CLI flags."""
    if not (args.grids or args.reaches or args.modes or args.backends != "analytic"):
        return smoke_spec(name=args.name, iterations=args.iterations)
    modes = None
    if args.modes:
        modes = tuple(
            StreamBufferMode[m.strip().upper()]  # accept names: hybrid, register_only
            for m in args.modes.split(",")
            if m.strip()
        )
    return SweepSpec(
        name=args.name,
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=_parse_grid_list(args.grids) if args.grids else None,
        max_stream_reaches=_parse_reach_list(args.reaches) if args.reaches else None,
        modes=modes,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        iterations=args.iterations,
    )


def main(argv=None) -> int:
    """CLI driver; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a declarative, resumable evaluation campaign.",
    )
    parser.add_argument("--name", default="smoke", help="campaign name (default: smoke)")
    parser.add_argument("--grids", help='grid sizes, e.g. "11x11,24x24" (default: smoke set)')
    parser.add_argument("--reaches", help='max stream reaches, e.g. "0,4,none"')
    parser.add_argument("--modes", help='buffer modes, e.g. "hybrid,register_only"')
    parser.add_argument("--backends", default="analytic", help="backends (default: analytic)")
    parser.add_argument("--iterations", type=int, default=2, help="work-instances per point")
    parser.add_argument("--jobs", "-j", type=int, default=1, help="parallel workers")
    parser.add_argument("--checkpoint", help="JSONL checkpoint path (enables resume)")
    parser.add_argument(
        "--strategy",
        default="grid",
        choices=("grid", "random", "halving"),
        help="search strategy (default: grid)",
    )
    parser.add_argument("--samples", type=int, default=16, help="random-strategy sample count")
    parser.add_argument("--seed", type=int, default=0, help="random-strategy seed")
    parser.add_argument("--eta", type=int, default=2, help="successive-halving reduction factor")
    args = parser.parse_args(argv)

    spec = build_spec(args)
    strategy = get_strategy(args.strategy, samples=args.samples, seed=args.seed, eta=args.eta)
    result = run_campaign(
        spec, jobs=args.jobs, checkpoint=args.checkpoint, strategy=strategy
    )
    print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
