"""Command-line campaign driver: ``python -m repro.sweep``.

Without arguments a small built-in smoke campaign runs serially; axes,
parallelism, search strategy and the checkpoint file are all flags.  Re-run
the same command to resume: completed points load from the checkpoint and
are not re-evaluated (the report counts them as *resumed*).

Examples
--------
Run the smoke campaign on two workers with a resumable checkpoint and live
progress (points/sec, ETA on stderr)::

    python -m repro.sweep --jobs 2 --checkpoint campaign-smoke.jsonl --progress

Tail that campaign from another terminal (works across processes/hosts that
share the file)::

    python -m repro.sweep --follow campaign-smoke.jsonl

A bigger declarative space with successive halving::

    python -m repro.sweep --grids 24x24,48x48,96x96 --reaches 0,8,none \\
        --modes hybrid,register_only --strategy halving --jobs 4

Maintenance subcommands::

    python -m repro.sweep compact campaign.jsonl     # drop superseded records
    python -m repro.sweep diff new.jsonl old.jsonl   # regression tracking
    python -m repro.sweep follow campaign.jsonl      # same as --follow
    python -m repro.sweep replay campaign.events.jsonl  # re-drive observers
    python -m repro.sweep chaos --crash 'smoke-24x24-h-*@1' --jobs 2  # fault drill

Fault tolerance: ``--max-attempts``/``--retry-delay``/``--point-deadline``
enable the retry policy (exponential backoff, straggler re-issue, worker
crash recovery); ``--retry-failed`` re-attempts points a previous session
recorded as permanently failed.  The ``chaos`` subcommand runs a campaign
under the deterministic fault-injection harness (:mod:`repro.faults`) to
drill exactly that machinery.

Exit codes of ``follow``/``replay`` (and of a campaign run itself): 0 for a
clean completion, 1 when the campaign finished but points permanently
failed, 2 when the stream ends on an incomplete campaign.

Event logs: add ``--event-log`` to persist the full typed event stream
(starts with worker attribution, completions, checkpoint flushes) to a JSONL
sidecar next to the checkpoint.  ``--follow`` prefers the event log when one
exists (per-point starts, in-flight counts, per-worker rates) and falls back
to checkpoint tailing for legacy files; ``replay`` reconstructs the stream
from disk and re-drives the progress reporter deterministically.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Workbench
from repro.core.partition import StreamBufferMode
from repro.faults import FaultPlan, FaultSpec, RetryPolicy, inject_faults
from repro.pipeline.problem import StencilProblem
from repro.sweep.campaign import diff_canonical_rows
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.eventlog import CampaignReplay, default_event_log_path
from repro.sweep.events import ProgressReporter
from repro.sweep.follow import follow_campaign
from repro.sweep.spec import SweepSpec, _parse_grid_list, _parse_reach_list, smoke_spec
from repro.sweep.strategies import get_strategy

#: Maintenance subcommands dispatched before flag parsing.
SUBCOMMANDS = ("compact", "diff", "follow", "replay", "chaos")


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """The campaign spec described by the CLI flags."""
    if not (args.grids or args.reaches or args.modes or args.backends != "analytic"):
        return smoke_spec(name=args.name, iterations=args.iterations)
    modes = None
    if args.modes:
        modes = tuple(
            StreamBufferMode[m.strip().upper()]  # accept names: hybrid, register_only
            for m in args.modes.split(",")
            if m.strip()
        )
    return SweepSpec(
        name=args.name,
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=_parse_grid_list(args.grids) if args.grids else None,
        max_stream_reaches=_parse_reach_list(args.reaches) if args.reaches else None,
        modes=modes,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        iterations=args.iterations,
    )


# --------------------------------------------------------------------------- #
# maintenance subcommands
# --------------------------------------------------------------------------- #
def _compact_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep compact",
        description="Rewrite a JSONL checkpoint keeping only the latest record "
        "per point key (header and fingerprint preserved).",
    )
    parser.add_argument("checkpoint", help="JSONL checkpoint path")
    args = parser.parse_args(argv)
    stats = CampaignCheckpoint(args.checkpoint).compact()
    print(f"compacted {args.checkpoint}: {stats.format()}")
    return 0


def _checkpoint_rows(path: str):
    """Canonical rows of a checkpoint, sorted by (rung, key).

    Failure records carry no metrics, so they are excluded — ``diff``
    compares only what both campaigns actually evaluated (the same contract
    as :meth:`CampaignResult.canonical_rows`).
    """
    records = CampaignCheckpoint(path).load()
    ordered = sorted(
        (r for r in records.values() if not r.failed), key=lambda r: (r.rung, r.key)
    )
    return [r.canonical() for r in ordered]


def _diff_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep diff",
        description="Diff two campaign checkpoints on their canonical rows "
        "(regression tracking across PRs).  Exit code 0 when identical, "
        "1 when they differ.",
    )
    parser.add_argument("new", help="the newer checkpoint (e.g. this PR's run)")
    parser.add_argument("old", help="the older checkpoint to compare against")
    args = parser.parse_args(argv)
    diff = diff_canonical_rows(_checkpoint_rows(args.new), _checkpoint_rows(args.old))
    print(diff.format())
    return 0 if diff.identical else 1


def _follow_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep follow",
        description="Tail a live campaign (event log when available, legacy "
        "checkpoint otherwise), printing per-point starts, points/sec and ETA "
        "until the campaign completes.",
    )
    parser.add_argument(
        "path", help="JSONL checkpoint or event-log path (may not exist yet)"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="give up after this many seconds without new data (default: 60)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.25, help="seconds between file polls"
    )
    args = parser.parse_args(argv)
    return follow_campaign(args.path, poll_seconds=args.poll, idle_timeout=args.timeout)


def _replay_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep replay",
        description="Reconstruct a campaign's typed event stream from a JSONL "
        "event log and re-drive the progress reporter deterministically "
        "(rates and ETAs reflect the original run's logged timestamps).  "
        "Exit code 0 when the log ends in a cleanly finished campaign, 1 when "
        "it finished with permanently failed points, 2 when it ends "
        "mid-campaign.",
    )
    parser.add_argument("log", help="JSONL event-log path")
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the replayed progress lines, print only the summary",
    )
    args = parser.parse_args(argv)
    replay = CampaignReplay(args.log)
    observers = []
    if not args.quiet:
        observers.append(
            ProgressReporter(stream=sys.stdout, min_interval=0.0, clock=replay.clock)
        )
    stats = replay.replay(*observers)
    print(f"replay of {args.log}: {stats.format()}")
    if not stats.finished:
        return 2
    return 1 if stats.failed else 0


# --------------------------------------------------------------------------- #
# chaos: run a campaign under deterministic fault injection
# --------------------------------------------------------------------------- #
def _add_campaign_arguments(parser, name_default: str = "smoke") -> None:
    """Flags shared by the main driver and the ``chaos`` subcommand."""
    parser.add_argument(
        "--name", default=name_default, help=f"campaign name (default: {name_default})"
    )
    parser.add_argument("--grids", help='grid sizes, e.g. "11x11,24x24" (default: smoke set)')
    parser.add_argument("--reaches", help='max stream reaches, e.g. "0,4,none"')
    parser.add_argument("--modes", help='buffer modes, e.g. "hybrid,register_only"')
    parser.add_argument("--backends", default="analytic", help="backends (default: analytic)")
    parser.add_argument("--iterations", type=int, default=2, help="work-instances per point")
    parser.add_argument("--jobs", "-j", type=int, default=1, help="parallel workers")
    parser.add_argument("--checkpoint", help="JSONL checkpoint path (enables resume)")
    parser.add_argument(
        "--event-log",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="persist the full event stream to a JSONL sidecar (default path: "
        "the checkpoint's with an .events.jsonl suffix when PATH is omitted); "
        "enables rich --follow and the replay subcommand",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream live progress (points/sec, ETA) to stderr while running",
    )


def _resolve_event_log(args, parser) -> "str | None":
    """The event-log path implied by ``--event-log`` (sidecar when bare)."""
    event_log = args.event_log
    if event_log == "":  # bare --event-log: sidecar next to the checkpoint
        if not args.checkpoint:
            parser.error("--event-log without a PATH requires --checkpoint")
        event_log = default_event_log_path(args.checkpoint)
    return event_log


def _parse_fault(text: str, action: str) -> FaultSpec:
    """Parse a CLI fault spec: ``GLOB[@N][:SECONDS]``.

    ``GLOB`` matches point labels (fnmatch).  ``@N`` limits the fault to the
    first N attempts (so retries succeed); without it the fault is a poison
    that fires on every attempt.  ``:SECONDS`` sets the hang duration.
    """
    seconds = 1.0
    if action == "hang" and ":" in text:
        text, _, tail = text.rpartition(":")
        seconds = float(tail)
    attempts_below = None
    if "@" in text:
        text, _, tail = text.rpartition("@")
        attempts_below = int(tail) + 1
    return FaultSpec(
        action=action,
        label=text,
        attempts_below=attempts_below,
        seconds=seconds,
        message=f"injected {action}",
    )


def _chaos_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep chaos",
        description="Run a campaign under the deterministic fault-injection "
        "harness: registered backends are wrapped so points matching the "
        "fault specs fail, hang or crash their worker on schedule, drilling "
        "the retry/recovery machinery end to end.  Completed points stay "
        "byte-identical to a fault-free run.  Exit code 0 when the outcome "
        "matches --expect-failed (or no point failed), 1 otherwise.",
    )
    _add_campaign_arguments(parser, name_default="smoke")
    faults = parser.add_argument_group("fault injection")
    faults.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="GLOB[@N]",
        help="raise an injected error on points whose label matches GLOB "
        "(first N attempts only with @N; every attempt — a poison — without)",
    )
    faults.add_argument(
        "--hang",
        action="append",
        default=[],
        metavar="GLOB[@N][:SECONDS]",
        help="stall matching points for SECONDS (default 1.0) before evaluating",
    )
    faults.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="GLOB[@N]",
        help="kill the evaluating worker process on matching points",
    )
    faults.add_argument(
        "--flaky",
        type=float,
        default=None,
        metavar="PROB",
        help="additionally fail every attempt of every point with this "
        "probability (deterministic per --fault-seed)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0, help="seed for fault coin flips"
    )
    policy = parser.add_argument_group("retry policy")
    policy.add_argument(
        "--max-attempts", type=int, default=3, help="attempts per point (default: 3)"
    )
    policy.add_argument(
        "--retry-delay",
        type=float,
        default=0.05,
        help="base backoff delay in seconds (default: 0.05)",
    )
    policy.add_argument(
        "--point-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point deadline; pooled stragglers past it are re-issued",
    )
    policy.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-attempt points recorded as permanently failed in the checkpoint",
    )
    parser.add_argument(
        "--expect-failed",
        type=int,
        default=None,
        metavar="N",
        help="exit 0 only when exactly N points permanently failed",
    )
    args = parser.parse_args(argv)

    specs = [_parse_fault(text, "fail") for text in args.fail]
    specs += [_parse_fault(text, "hang") for text in args.hang]
    specs += [_parse_fault(text, "crash") for text in args.crash]
    if args.flaky is not None:
        specs.append(
            FaultSpec(action="fail", probability=args.flaky, message="injected flake")
        )
    plan = FaultPlan(faults=tuple(specs), seed=args.fault_seed)
    retry_policy = RetryPolicy(
        max_attempts=args.max_attempts,
        base_delay_s=args.retry_delay,
        deadline_s=args.point_deadline,
    )

    event_log = _resolve_event_log(args, parser)
    spec = build_spec(args)
    workbench = Workbench(jobs=args.jobs)
    # The plan is installed before the campaign starts, so pool workers
    # (forked at run time) inherit the wrapped backend registry.
    with inject_faults(plan):
        result = workbench.run(
            spec,
            checkpoint=args.checkpoint,
            progress=args.progress,
            event_log=event_log,
            retry_policy=retry_policy,
            retry_failed=args.retry_failed,
        )
    print(result.format())
    if args.expect_failed is not None:
        if result.failed != args.expect_failed:
            print(
                f"chaos: expected {args.expect_failed} permanently failed "
                f"point(s), got {result.failed}",
                file=sys.stderr,
            )
            return 1
        return 0
    return 1 if result.failed else 0


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    """CLI driver; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return {
            "compact": _compact_main,
            "diff": _diff_main,
            "follow": _follow_main,
            "replay": _replay_main,
            "chaos": _chaos_main,
        }[argv[0]](argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a declarative, resumable evaluation campaign "
        "(subcommands: compact, diff, follow, replay, chaos).",
    )
    _add_campaign_arguments(parser)
    parser.add_argument(
        "--follow",
        metavar="PATH",
        help="do not run anything; tail the given checkpoint until the "
        "campaign completes (points/sec, ETA)",
    )
    parser.add_argument(
        "--follow-timeout",
        type=float,
        default=60.0,
        help="with --follow: give up after this many idle seconds (default: 60)",
    )
    parser.add_argument(
        "--strategy",
        default="grid",
        choices=("grid", "random", "halving"),
        help="search strategy (default: grid)",
    )
    parser.add_argument("--samples", type=int, default=16, help="random-strategy sample count")
    parser.add_argument("--seed", type=int, default=0, help="random-strategy seed")
    parser.add_argument("--eta", type=int, default=2, help="successive-halving reduction factor")
    tolerance = parser.add_argument_group("fault tolerance")
    tolerance.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="enable the retry policy: attempt each point up to N times with "
        "exponential backoff before recording it as permanently failed",
    )
    tolerance.add_argument(
        "--retry-delay",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base backoff delay between attempts (default: 0.05)",
    )
    tolerance.add_argument(
        "--point-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point deadline (enables the retry policy); pooled "
        "stragglers past it are re-issued to another worker",
    )
    tolerance.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-attempt points recorded as permanently failed in the checkpoint",
    )
    args = parser.parse_args(argv)

    if args.follow:
        return follow_campaign(args.follow, idle_timeout=args.follow_timeout)

    event_log = _resolve_event_log(args, parser)
    retry_policy = None
    if args.max_attempts is not None or args.point_deadline is not None:
        retry_policy = RetryPolicy(
            max_attempts=args.max_attempts if args.max_attempts is not None else 3,
            base_delay_s=args.retry_delay,
            deadline_s=args.point_deadline,
        )

    spec = build_spec(args)
    strategy = get_strategy(args.strategy, samples=args.samples, seed=args.seed, eta=args.eta)
    workbench = Workbench(jobs=args.jobs)
    result = workbench.run(
        spec,
        checkpoint=args.checkpoint,
        strategy=strategy,
        progress=args.progress,
        event_log=event_log,
        retry_policy=retry_policy,
        retry_failed=args.retry_failed,
    )
    print(result.format())
    return 1 if result.failed else 0


if __name__ == "__main__":
    sys.exit(main())
