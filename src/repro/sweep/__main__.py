"""Command-line campaign driver: ``python -m repro.sweep``.

Without arguments a small built-in smoke campaign runs serially; axes,
parallelism, search strategy and the checkpoint file are all flags.  Re-run
the same command to resume: completed points load from the checkpoint and
are not re-evaluated (the report counts them as *resumed*).

Examples
--------
Run the smoke campaign on two workers with a resumable checkpoint and live
progress (points/sec, ETA on stderr)::

    python -m repro.sweep --jobs 2 --checkpoint campaign-smoke.jsonl --progress

Tail that campaign from another terminal (works across processes/hosts that
share the file)::

    python -m repro.sweep --follow campaign-smoke.jsonl

A bigger declarative space with successive halving::

    python -m repro.sweep --grids 24x24,48x48,96x96 --reaches 0,8,none \\
        --modes hybrid,register_only --strategy halving --jobs 4

Maintenance subcommands::

    python -m repro.sweep compact campaign.jsonl     # drop superseded records
    python -m repro.sweep diff new.jsonl old.jsonl   # regression tracking
    python -m repro.sweep follow campaign.jsonl      # same as --follow
    python -m repro.sweep replay campaign.events.jsonl  # re-drive observers

Event logs: add ``--event-log`` to persist the full typed event stream
(starts with worker attribution, completions, checkpoint flushes) to a JSONL
sidecar next to the checkpoint.  ``--follow`` prefers the event log when one
exists (per-point starts, in-flight counts, per-worker rates) and falls back
to checkpoint tailing for legacy files; ``replay`` reconstructs the stream
from disk and re-drives the progress reporter deterministically.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import Workbench
from repro.core.partition import StreamBufferMode
from repro.pipeline.problem import StencilProblem
from repro.sweep.campaign import diff_canonical_rows
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.eventlog import CampaignReplay, default_event_log_path
from repro.sweep.events import ProgressReporter
from repro.sweep.follow import follow_campaign
from repro.sweep.spec import SweepSpec, _parse_grid_list, _parse_reach_list, smoke_spec
from repro.sweep.strategies import get_strategy

#: Maintenance subcommands dispatched before flag parsing.
SUBCOMMANDS = ("compact", "diff", "follow", "replay")


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """The campaign spec described by the CLI flags."""
    if not (args.grids or args.reaches or args.modes or args.backends != "analytic"):
        return smoke_spec(name=args.name, iterations=args.iterations)
    modes = None
    if args.modes:
        modes = tuple(
            StreamBufferMode[m.strip().upper()]  # accept names: hybrid, register_only
            for m in args.modes.split(",")
            if m.strip()
        )
    return SweepSpec(
        name=args.name,
        base=StencilProblem.paper_example(11, 11),
        grid_sizes=_parse_grid_list(args.grids) if args.grids else None,
        max_stream_reaches=_parse_reach_list(args.reaches) if args.reaches else None,
        modes=modes,
        backends=tuple(b.strip() for b in args.backends.split(",") if b.strip()),
        iterations=args.iterations,
    )


# --------------------------------------------------------------------------- #
# maintenance subcommands
# --------------------------------------------------------------------------- #
def _compact_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep compact",
        description="Rewrite a JSONL checkpoint keeping only the latest record "
        "per point key (header and fingerprint preserved).",
    )
    parser.add_argument("checkpoint", help="JSONL checkpoint path")
    args = parser.parse_args(argv)
    stats = CampaignCheckpoint(args.checkpoint).compact()
    print(f"compacted {args.checkpoint}: {stats.format()}")
    return 0


def _checkpoint_rows(path: str):
    """Canonical rows of a checkpoint, sorted by (rung, key)."""
    records = CampaignCheckpoint(path).load()
    ordered = sorted(records.values(), key=lambda r: (r.rung, r.key))
    return [r.canonical() for r in ordered]


def _diff_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep diff",
        description="Diff two campaign checkpoints on their canonical rows "
        "(regression tracking across PRs).  Exit code 0 when identical, "
        "1 when they differ.",
    )
    parser.add_argument("new", help="the newer checkpoint (e.g. this PR's run)")
    parser.add_argument("old", help="the older checkpoint to compare against")
    args = parser.parse_args(argv)
    diff = diff_canonical_rows(_checkpoint_rows(args.new), _checkpoint_rows(args.old))
    print(diff.format())
    return 0 if diff.identical else 1


def _follow_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep follow",
        description="Tail a live campaign (event log when available, legacy "
        "checkpoint otherwise), printing per-point starts, points/sec and ETA "
        "until the campaign completes.",
    )
    parser.add_argument(
        "path", help="JSONL checkpoint or event-log path (may not exist yet)"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="give up after this many seconds without new data (default: 60)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.25, help="seconds between file polls"
    )
    args = parser.parse_args(argv)
    return follow_campaign(args.path, poll_seconds=args.poll, idle_timeout=args.timeout)


def _replay_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep replay",
        description="Reconstruct a campaign's typed event stream from a JSONL "
        "event log and re-drive the progress reporter deterministically "
        "(rates and ETAs reflect the original run's logged timestamps).  "
        "Exit code 0 when the log ends in a finished campaign, 1 otherwise.",
    )
    parser.add_argument("log", help="JSONL event-log path")
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the replayed progress lines, print only the summary",
    )
    args = parser.parse_args(argv)
    replay = CampaignReplay(args.log)
    observers = []
    if not args.quiet:
        observers.append(
            ProgressReporter(stream=sys.stdout, min_interval=0.0, clock=replay.clock)
        )
    stats = replay.replay(*observers)
    print(f"replay of {args.log}: {stats.format()}")
    return 0 if stats.finished else 1


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    """CLI driver; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return {
            "compact": _compact_main,
            "diff": _diff_main,
            "follow": _follow_main,
            "replay": _replay_main,
        }[argv[0]](argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description="Run a declarative, resumable evaluation campaign "
        "(subcommands: compact, diff, follow).",
    )
    parser.add_argument("--name", default="smoke", help="campaign name (default: smoke)")
    parser.add_argument("--grids", help='grid sizes, e.g. "11x11,24x24" (default: smoke set)')
    parser.add_argument("--reaches", help='max stream reaches, e.g. "0,4,none"')
    parser.add_argument("--modes", help='buffer modes, e.g. "hybrid,register_only"')
    parser.add_argument("--backends", default="analytic", help="backends (default: analytic)")
    parser.add_argument("--iterations", type=int, default=2, help="work-instances per point")
    parser.add_argument("--jobs", "-j", type=int, default=1, help="parallel workers")
    parser.add_argument("--checkpoint", help="JSONL checkpoint path (enables resume)")
    parser.add_argument(
        "--event-log",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="persist the full event stream to a JSONL sidecar (default path: "
        "the checkpoint's with an .events.jsonl suffix when PATH is omitted); "
        "enables rich --follow and the replay subcommand",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream live progress (points/sec, ETA) to stderr while running",
    )
    parser.add_argument(
        "--follow",
        metavar="PATH",
        help="do not run anything; tail the given checkpoint until the "
        "campaign completes (points/sec, ETA)",
    )
    parser.add_argument(
        "--follow-timeout",
        type=float,
        default=60.0,
        help="with --follow: give up after this many idle seconds (default: 60)",
    )
    parser.add_argument(
        "--strategy",
        default="grid",
        choices=("grid", "random", "halving"),
        help="search strategy (default: grid)",
    )
    parser.add_argument("--samples", type=int, default=16, help="random-strategy sample count")
    parser.add_argument("--seed", type=int, default=0, help="random-strategy seed")
    parser.add_argument("--eta", type=int, default=2, help="successive-halving reduction factor")
    args = parser.parse_args(argv)

    if args.follow:
        return follow_campaign(args.follow, idle_timeout=args.follow_timeout)

    event_log = args.event_log
    if event_log == "":  # bare --event-log: sidecar next to the checkpoint
        if not args.checkpoint:
            parser.error("--event-log without a PATH requires --checkpoint")
        event_log = default_event_log_path(args.checkpoint)

    spec = build_spec(args)
    strategy = get_strategy(args.strategy, samples=args.samples, seed=args.seed, eta=args.eta)
    workbench = Workbench(jobs=args.jobs)
    result = workbench.run(
        spec,
        checkpoint=args.checkpoint,
        strategy=strategy,
        progress=args.progress,
        event_log=event_log,
    )
    print(result.format())
    return 0


if __name__ == "__main__":
    sys.exit(main())
