"""Campaign orchestration: spec → runner → checkpoint → aggregated result.

:func:`run_campaign` is the one entry point: it expands a
:class:`~repro.sweep.spec.SweepSpec`, lets a search strategy decide which
points to evaluate, shards the work over the chosen runner, appends every
completed point to an optional JSONL checkpoint, and aggregates everything
into a :class:`CampaignResult`.  The same call scales from one core
(``jobs=1``) to many (``jobs=N``) and from a fresh run to a resumed one
(same ``checkpoint`` path) without changing the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.pipeline.cache import CacheInfo
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.record import PointRecord, canonical_json
from repro.sweep.runners import Runner, make_runner
from repro.sweep.spec import SweepPoint, SweepSpec, fingerprint_points
from repro.sweep.strategies import GridSearch, SearchStrategy, ranking_metric
from repro.utils.pareto import pareto_front
from repro.utils.tables import format_table


def pareto_front_records(records: Sequence[PointRecord]) -> List[PointRecord]:
    """The cycles / on-chip-memory Pareto front of a set of records.

    A record survives unless some other record is at least as good on both
    axes and strictly better on one — so exact ties survive together, and the
    returned front preserves the input order (sort beforehand for a
    deterministic report).  Timing-free records (no cycle count) are excluded.
    """
    candidates = [r for r in records if r.cycles is not None and r.total_bits is not None]
    return pareto_front(candidates, key=lambda r: (r.cycles, r.total_bits))


@dataclass
class CampaignResult:
    """Everything one campaign produced, with reporting helpers."""

    spec: SweepSpec
    records: List[PointRecord] = field(default_factory=list)
    evaluated: int = 0
    resumed: int = 0
    jobs: int = 1
    strategy: str = "grid"
    wall_seconds: float = 0.0
    checkpoint_path: Optional[str] = None
    #: Plan-cache counters of the freshly evaluated points, keyed by
    #: (worker pid, runner invocation): counters are cumulative within one
    #: ``Runner.run()`` call, and a multi-rung strategy triggers several.
    worker_cache_info: Dict[Tuple[int, int], CacheInfo] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of records (evaluated + resumed)."""
        return len(self.records)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters summed across every worker of this run."""
        hits = sum(info.hits for info in self.worker_cache_info.values())
        misses = sum(info.misses for info in self.worker_cache_info.values())
        maxsize = sum(info.maxsize for info in self.worker_cache_info.values())
        currsize = sum(info.currsize for info in self.worker_cache_info.values())
        return CacheInfo(hits=hits, misses=misses, maxsize=maxsize, currsize=currsize)

    @property
    def worker_count(self) -> int:
        """Distinct worker processes that evaluated fresh points."""
        return len({worker for worker, _run in self.worker_cache_info})

    def final_rung(self) -> List[PointRecord]:
        """Records of the highest rung (the trusted stage of adaptive runs)."""
        if not self.records:
            return []
        top = max(r.rung for r in self.records)
        return [r for r in self.records if r.rung == top]

    def best(
        self, objective: Optional[Callable[[PointRecord], Tuple]] = None
    ) -> Optional[PointRecord]:
        """The winning record of the final rung (ties broken by point key)."""
        candidates = [r for r in self.final_rung() if r.cycles is not None]
        if not candidates:
            return None
        metric = objective or ranking_metric
        return min(candidates, key=lambda r: (metric(r), r.key))

    def pareto_front(self) -> List[PointRecord]:
        """Cycles/memory Pareto front of the final rung, sorted for reports."""
        front = pareto_front_records(self.final_rung())
        return sorted(front, key=ranking_metric)

    # ------------------------------------------------------------------ #
    # determinism contract
    # ------------------------------------------------------------------ #
    def canonical_rows(self) -> List[dict]:
        """Deterministic rows sorted by (rung, key) — no timing, no pids."""
        ordered = sorted(self.records, key=lambda r: (r.rung, r.key))
        return [r.canonical() for r in ordered]

    def to_json(self) -> str:
        """Byte-stable JSON: identical for serial and parallel runs."""
        return canonical_json(self.records)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def format(self, max_rows: int = 20) -> str:
        """Human-readable campaign report (used by the CLI and examples)."""
        info = self.cache_info()
        lines = [
            f"campaign {self.spec.name!r}: {self.size} points "
            f"({self.evaluated} evaluated, {self.resumed} resumed from checkpoint), "
            f"strategy={self.strategy}, jobs={self.jobs}, "
            f"{self.wall_seconds:.2f}s wall",
            f"plan cache: {info.hits} hits / {info.misses} misses "
            f"(hit rate {info.hit_rate:.1%}) across "
            f"{max(1, self.worker_count)} worker(s)",
        ]
        if self.checkpoint_path:
            lines.append(f"checkpoint: {self.checkpoint_path}")
        front = {id(r) for r in self.pareto_front()}
        best = self.best()
        headers = ["point", "backend", "rung", "cycles", "DRAM KiB", "mem bits", "front", "best"]
        shown = sorted(self.records, key=lambda r: (r.rung, ranking_metric(r)))
        rows = [
            [
                r.label,
                r.backend,
                r.rung,
                r.cycles if r.cycles is not None else "-",
                f"{r.dram_traffic_kib:.1f}" if r.dram_traffic_kib is not None else "-",
                r.total_bits if r.total_bits is not None else "-",
                "*" if id(r) in front else "",
                "<==" if best is not None and r is best else "",
            ]
            for r in shown[:max_rows]
        ]
        lines.append(format_table(headers, rows))
        if len(shown) > max_rows:
            lines.append(f"... and {len(shown) - max_rows} more rows")
        return "\n".join(lines)


def _aggregate_worker_caches(
    fresh: Sequence[PointRecord],
) -> Dict[Tuple[int, int], CacheInfo]:
    """Last-seen cumulative plan-cache counters per (worker pid, run index).

    Counters reset at the start of each ``Runner.run()`` invocation, so the
    per-invocation maxima are disjoint contributions that sum to the
    campaign total — even when a serial multi-rung strategy reuses one pid.
    """
    per_worker: Dict[Tuple[int, int], CacheInfo] = {}
    for record in fresh:
        meta = record.meta
        worker = meta.get("worker")
        if worker is None or "cache_hits" not in meta:
            continue
        key = (worker, meta.get("run", 0))
        info = CacheInfo(
            hits=int(meta.get("cache_hits", 0)),
            misses=int(meta.get("cache_misses", 0)),
            maxsize=0,
            currsize=int(meta.get("cache_size", 0)),
        )
        seen = per_worker.get(key)
        if seen is None or (info.hits + info.misses) > (seen.hits + seen.misses):
            per_worker[key] = info
    return per_worker


def run_campaign(
    spec: SweepSpec,
    jobs: int = 1,
    checkpoint: Optional[Union[str, CampaignCheckpoint]] = None,
    strategy: Optional[SearchStrategy] = None,
    runner: Optional[Runner] = None,
    chunksize: Optional[int] = None,
) -> CampaignResult:
    """Run (or resume) a campaign and aggregate it into a result.

    Parameters
    ----------
    spec:
        The declarative problem space.
    jobs:
        Parallelism degree; ``jobs > 1`` shards points over a process pool.
        Ignored when an explicit ``runner`` is given.
    checkpoint:
        JSONL path (or prepared :class:`CampaignCheckpoint`).  Completed
        points found there are *not* re-evaluated; fresh completions are
        appended as they finish, so a killed run resumes where it stopped.
    strategy:
        Search strategy; defaults to exhaustive :class:`GridSearch`.
    runner:
        Explicit executor, overriding ``jobs`` (used by tests).
    """
    t0 = time.perf_counter()
    strategy = strategy or GridSearch()
    runner = runner or make_runner(jobs, chunksize=chunksize)
    points = spec.expand()  # expanded and fingerprinted exactly once per run
    fingerprint = fingerprint_points(spec.name, points)
    store = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, CampaignCheckpoint)
            else CampaignCheckpoint(checkpoint)
        )
    done: Dict[str, PointRecord] = (
        store.load(fingerprint=fingerprint) if store is not None else {}
    )
    if store is not None:
        store.open_for_append(spec, fingerprint=fingerprint, total_points=len(points))
    fresh: List[PointRecord] = []
    resumed_keys = set()

    def run_points(points: Sequence[SweepPoint]) -> List[PointRecord]:
        todo, keys, queued = [], [], set()
        for point in points:
            key = point.key()
            keys.append(key)
            if key in done:
                resumed_keys.add(key)
            elif key not in queued:  # identical points evaluate once
                queued.add(key)
                todo.append(point)
        on_result = store.append if store is not None else None
        for record in runner.run(todo, on_result=on_result):
            done[record.key] = record
            fresh.append(record)
        return [done[key] for key in keys]

    try:
        records = strategy.execute(points, run_points)
    finally:
        if store is not None:
            store.close()
    return CampaignResult(
        spec=spec,
        records=records,
        evaluated=len(fresh),
        resumed=len(resumed_keys),
        jobs=runner.jobs,
        strategy=strategy.name,
        wall_seconds=time.perf_counter() - t0,
        checkpoint_path=store.path if store is not None else None,
        worker_cache_info=_aggregate_worker_caches(fresh),
    )
