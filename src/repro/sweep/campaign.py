"""Campaign orchestration: spec → runner → event stream → aggregated result.

:func:`execute_campaign` is the engine: it expands a
:class:`~repro.sweep.spec.SweepSpec`, lets a search strategy decide which
points to evaluate, shards the work over the chosen runner, and pushes every
lifecycle step through an :class:`~repro.sweep.events.EventBus` — the JSONL
checkpointer, the in-memory result aggregator and any caller-supplied
observers (e.g. a live :class:`~repro.sweep.events.ProgressReporter`) all
consume the same typed :class:`~repro.sweep.events.RunEvent` stream.  The
same call scales from one core (``jobs=1``) to many (``jobs=N``) and from a
fresh run to a resumed one (same ``checkpoint`` path) without changing the
canonical result.

:func:`run_campaign` remains as a thin deprecated shim; new code should go
through :class:`repro.api.Workbench`, the session facade that owns the plan
cache, runner policy and observers.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.faults.policy import RetryPolicy
from repro.pipeline.cache import CacheInfo
from repro.sweep.checkpoint import CampaignCheckpoint
from repro.sweep.eventlog import EventLogObserver
from repro.sweep.events import (
    CampaignFinished,
    CampaignStarted,
    CheckpointObserver,
    EventBus,
    ObserverError,
    PointCompleted,
    PointFailed,
    PointResumed,
    RunObserver,
)
from repro.sweep.record import PointRecord, canonical_json
from repro.sweep.runners import Runner, make_runner
from repro.sweep.spec import SweepPoint, SweepSpec, fingerprint_points
from repro.sweep.strategies import GridSearch, SearchStrategy, ranking_metric
from repro.utils.pareto import pareto_front
from repro.utils.tables import format_table


def pareto_front_records(records: Sequence[PointRecord]) -> List[PointRecord]:
    """The cycles / on-chip-memory Pareto front of a set of records.

    A record survives unless some other record is at least as good on both
    axes and strictly better on one — so exact ties survive together, and the
    returned front preserves the input order (sort beforehand for a
    deterministic report).  Timing-free records (no cycle count) are excluded.
    """
    candidates = [r for r in records if r.cycles is not None and r.total_bits is not None]
    return pareto_front(candidates, key=lambda r: (r.cycles, r.total_bits))


# --------------------------------------------------------------------------- #
# campaign diffing (regression tracking across PRs)
# --------------------------------------------------------------------------- #
def _row_key(row: Dict[str, Any]) -> Tuple[int, str]:
    return (row.get("rung", 0), row["key"])


@dataclass
class CampaignDiff:
    """Difference between two canonical row sets, keyed by (rung, key).

    ``added``/``removed`` are rows present only on the newer/older side;
    ``changed`` pairs rows that share a key but disagree on some canonical
    field.  Built from :meth:`CampaignResult.canonical_rows`, so timing and
    worker meta never produce spurious diffs.
    """

    added: List[Dict[str, Any]] = field(default_factory=list)
    removed: List[Dict[str, Any]] = field(default_factory=list)
    changed: List[Tuple[Dict[str, Any], Dict[str, Any]]] = field(default_factory=list)
    unchanged: int = 0

    @property
    def identical(self) -> bool:
        """True when both campaigns produced byte-identical canonical rows."""
        return not (self.added or self.removed or self.changed)

    def changed_fields(self, new_row: Dict[str, Any], old_row: Dict[str, Any]) -> List[str]:
        """The canonical field names on which a changed pair disagrees."""
        return sorted(
            name
            for name in set(new_row) | set(old_row)
            if new_row.get(name) != old_row.get(name)
        )

    def format(self, max_rows: int = 20) -> str:
        """Human-readable diff report (used by ``python -m repro.sweep diff``)."""
        if self.identical:
            return f"campaigns are identical ({self.unchanged} points)"
        lines = [
            f"campaign diff: {len(self.added)} added, {len(self.removed)} removed, "
            f"{len(self.changed)} changed, {self.unchanged} unchanged"
        ]
        for row in self.added[:max_rows]:
            lines.append(f"  + {row['label']} [{row['key']}]")
        for row in self.removed[:max_rows]:
            lines.append(f"  - {row['label']} [{row['key']}]")
        for new_row, old_row in self.changed[:max_rows]:
            deltas = ", ".join(
                f"{name}: {old_row.get(name)!r} -> {new_row.get(name)!r}"
                for name in self.changed_fields(new_row, old_row)
            )
            lines.append(f"  ~ {new_row['label']} [{new_row['key']}] {deltas}")
        shown = min(max_rows, len(self.added)) + min(max_rows, len(self.removed)) + min(
            max_rows, len(self.changed)
        )
        hidden = len(self.added) + len(self.removed) + len(self.changed) - shown
        if hidden > 0:
            lines.append(f"  ... and {hidden} more differences")
        return "\n".join(lines)


def diff_canonical_rows(
    new_rows: Iterable[Dict[str, Any]], old_rows: Iterable[Dict[str, Any]]
) -> CampaignDiff:
    """Diff two canonical row sets (new vs old), keyed by (rung, key)."""
    new_by_key = {_row_key(row): row for row in new_rows}
    old_by_key = {_row_key(row): row for row in old_rows}
    diff = CampaignDiff()
    for key in sorted(new_by_key.keys() | old_by_key.keys()):
        new_row, old_row = new_by_key.get(key), old_by_key.get(key)
        if old_row is None:
            diff.added.append(new_row)
        elif new_row is None:
            diff.removed.append(old_row)
        elif new_row != old_row:
            diff.changed.append((new_row, old_row))
        else:
            diff.unchanged += 1
    return diff


@dataclass
class CampaignResult:
    """Everything one campaign produced, with reporting helpers."""

    spec: SweepSpec
    records: List[PointRecord] = field(default_factory=list)
    evaluated: int = 0
    resumed: int = 0
    #: Points permanently failed (retries exhausted or quarantined poison),
    #: including failures resumed from the checkpoint.
    failed: int = 0
    jobs: int = 1
    strategy: str = "grid"
    wall_seconds: float = 0.0
    checkpoint_path: Optional[str] = None
    #: JSONL event-log sidecar this campaign appended to (None without one).
    #: Purely informational: the canonical determinism contract
    #: (:meth:`canonical_rows`, :meth:`to_json`) never includes it.
    event_log_path: Optional[str] = None
    #: Plan-cache counters of the freshly evaluated points, keyed by
    #: (worker pid, runner invocation): counters are cumulative within one
    #: ``Runner.run()`` call, and a multi-rung strategy triggers several.
    worker_cache_info: Dict[Tuple[int, int], CacheInfo] = field(default_factory=dict)
    #: Isolated failures of non-critical observers (empty on a clean run).
    observer_errors: List[ObserverError] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of records (evaluated + resumed)."""
        return len(self.records)

    def cache_info(self) -> CacheInfo:
        """Plan-cache counters summed across every worker of this run."""
        hits = sum(info.hits for info in self.worker_cache_info.values())
        misses = sum(info.misses for info in self.worker_cache_info.values())
        maxsize = sum(info.maxsize for info in self.worker_cache_info.values())
        currsize = sum(info.currsize for info in self.worker_cache_info.values())
        return CacheInfo(hits=hits, misses=misses, maxsize=maxsize, currsize=currsize)

    @property
    def worker_count(self) -> int:
        """Distinct worker processes that evaluated fresh points."""
        return len({worker for worker, _run in self.worker_cache_info})

    def final_rung(self) -> List[PointRecord]:
        """Records of the highest rung (the trusted stage of adaptive runs)."""
        if not self.records:
            return []
        top = max(r.rung for r in self.records)
        return [r for r in self.records if r.rung == top]

    def best(
        self, objective: Optional[Callable[[PointRecord], Tuple]] = None
    ) -> Optional[PointRecord]:
        """The winning record of the final rung (ties broken by point key)."""
        candidates = [r for r in self.final_rung() if r.cycles is not None]
        if not candidates:
            return None
        metric = objective or ranking_metric
        return min(candidates, key=lambda r: (metric(r), r.key))

    def pareto_front(self) -> List[PointRecord]:
        """Cycles/memory Pareto front of the final rung, sorted for reports."""
        front = pareto_front_records(self.final_rung())
        return sorted(front, key=ranking_metric)

    # ------------------------------------------------------------------ #
    # determinism contract
    # ------------------------------------------------------------------ #
    def canonical_rows(self) -> List[dict]:
        """Deterministic rows sorted by (rung, key) — no timing, no pids.

        Failure records are excluded, matching :func:`canonical_json`: the
        contract covers successfully evaluated points only.
        """
        ordered = sorted(
            (r for r in self.records if not r.failed), key=lambda r: (r.rung, r.key)
        )
        return [r.canonical() for r in ordered]

    def to_json(self) -> str:
        """Byte-stable JSON: identical for serial and parallel runs."""
        return canonical_json(self.records)

    def diff(
        self, other: Union["CampaignResult", Iterable[Dict[str, Any]]]
    ) -> CampaignDiff:
        """Compare this campaign (new) against ``other`` (old).

        ``other`` may be another :class:`CampaignResult` or a pre-serialised
        canonical row list (e.g. loaded from a checkpoint of a previous PR's
        run).  The comparison is built on :meth:`canonical_rows`, so only
        deterministic fields can differ.
        """
        other_rows = (
            other.canonical_rows() if isinstance(other, CampaignResult) else list(other)
        )
        return diff_canonical_rows(self.canonical_rows(), other_rows)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def format(self, max_rows: int = 20) -> str:
        """Human-readable campaign report (used by the CLI and examples)."""
        info = self.cache_info()
        failures = f", {self.failed} FAILED" if self.failed else ""
        lines = [
            f"campaign {self.spec.name!r}: {self.size} points "
            f"({self.evaluated} evaluated, {self.resumed} resumed from checkpoint"
            f"{failures}), "
            f"strategy={self.strategy}, jobs={self.jobs}, "
            f"{self.wall_seconds:.2f}s wall",
            f"plan cache: {info.hits} hits / {info.misses} misses "
            f"(hit rate {info.hit_rate:.1%}) across "
            f"{max(1, self.worker_count)} worker(s)",
        ]
        if self.checkpoint_path:
            lines.append(f"checkpoint: {self.checkpoint_path}")
        if self.event_log_path:
            lines.append(f"event log: {self.event_log_path}")
        if self.observer_errors:
            lines.append(
                f"observer errors: {len(self.observer_errors)} isolated "
                "(see result.observer_errors)"
            )
        front = {id(r) for r in self.pareto_front()}
        best = self.best()
        headers = ["point", "backend", "rung", "cycles", "DRAM KiB", "mem bits", "front", "best"]
        shown = sorted(self.records, key=lambda r: (r.rung, ranking_metric(r)))
        rows = [
            [
                r.label,
                r.backend,
                r.rung,
                r.cycles if r.cycles is not None else "-",
                f"{r.dram_traffic_kib:.1f}" if r.dram_traffic_kib is not None else "-",
                r.total_bits if r.total_bits is not None else "-",
                "*" if id(r) in front else "",
                "<==" if best is not None and r is best else "",
            ]
            for r in shown[:max_rows]
        ]
        lines.append(format_table(headers, rows))
        if len(shown) > max_rows:
            lines.append(f"... and {len(shown) - max_rows} more rows")
        return "\n".join(lines)


def _aggregate_worker_caches(
    fresh: Sequence[PointRecord],
) -> Dict[Tuple[int, int], CacheInfo]:
    """Last-seen cumulative plan-cache counters per (worker pid, run index).

    Counters reset at the start of each ``Runner.run()`` invocation, so the
    per-invocation maxima are disjoint contributions that sum to the
    campaign total — even when a serial multi-rung strategy reuses one pid.
    """
    per_worker: Dict[Tuple[int, int], CacheInfo] = {}
    for record in fresh:
        meta = record.meta
        worker = meta.get("worker")
        if worker is None or "cache_hits" not in meta:
            continue
        key = (worker, meta.get("run", 0))
        info = CacheInfo(
            hits=int(meta.get("cache_hits", 0)),
            misses=int(meta.get("cache_misses", 0)),
            maxsize=0,
            currsize=int(meta.get("cache_size", 0)),
        )
        seen = per_worker.get(key)
        if seen is None or (info.hits + info.misses) > (seen.hits + seen.misses):
            per_worker[key] = info
    return per_worker


class _CampaignAggregator(RunObserver):
    """The critical observer folding the event stream into campaign state.

    Owns the authoritative ``done`` map (checkpoint-preloaded records plus
    everything completed so far); the engine's stage executor reads records
    back out of it, so the aggregator *is* the result — not a shadow copy.
    """

    def __init__(self, preloaded: Dict[str, PointRecord]) -> None:
        self.done: Dict[str, PointRecord] = preloaded
        self.fresh: List[PointRecord] = []
        self.resumed_keys: set = set()

    def on_point_completed(self, event) -> None:
        record = event.record
        self.done[record.key] = record
        self.fresh.append(record)

    def on_point_failed(self, event) -> None:
        # A failure record is authoritative state too: the stage executor
        # reads it back out of ``done`` and resume skips the point — but it
        # is *not* fresh, so evaluated counts and cache stats cover
        # successful evaluations only.
        self.done[event.record.key] = event.record

    def on_point_resumed(self, event) -> None:
        self.resumed_keys.add(event.record.key)


def execute_campaign(
    spec: SweepSpec,
    jobs: int = 1,
    checkpoint: Optional[Union[str, CampaignCheckpoint]] = None,
    strategy: Optional[SearchStrategy] = None,
    runner: Optional[Runner] = None,
    chunksize: Optional[int] = None,
    observers: Sequence[Any] = (),
    event_log: Optional[Union[str, EventLogObserver]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    retry_failed: bool = False,
) -> CampaignResult:
    """Run (or resume) a campaign through the event-streaming engine.

    Parameters
    ----------
    spec:
        The declarative problem space.
    jobs:
        Parallelism degree; ``jobs > 1`` shards points over a process pool.
        Ignored when an explicit ``runner`` is given.
    checkpoint:
        JSONL path (or prepared :class:`CampaignCheckpoint`).  Completed
        points found there are *not* re-evaluated; fresh completions are
        appended as they finish, so a killed run resumes where it stopped.
    strategy:
        Search strategy; defaults to exhaustive :class:`GridSearch`.
    runner:
        Explicit executor, overriding ``jobs`` (used by tests).
    observers:
        Extra event consumers (objects with ``on_event`` or callables).
        Their failures are isolated: an observer that raises is recorded on
        ``result.observer_errors`` and the campaign carries on.
    event_log:
        JSONL path (or prepared :class:`EventLogObserver`): every event of
        this run is persisted there, fingerprint-guarded like the
        checkpoint, for ``--follow`` and ``python -m repro.sweep replay``.
        Attaching one never changes the canonical result.
    retry_policy:
        A :class:`~repro.faults.policy.RetryPolicy` enabling fault-tolerant
        execution: failed attempts are retried with deterministic backoff,
        stragglers re-issued, broken pools respawned, and exhausted points
        recorded as *failed* instead of aborting the campaign.  ``None``
        (the default) keeps fail-fast semantics.
    retry_failed:
        Re-evaluate points whose checkpoint record says they permanently
        failed in an earlier session.  By default a resume skips them,
        exactly like successful points.
    """
    t0 = time.perf_counter()
    strategy = strategy or GridSearch()
    runner = runner or make_runner(jobs, chunksize=chunksize)
    points = spec.expand()  # expanded and fingerprinted exactly once per run
    fingerprint = fingerprint_points(spec.name, points)
    store = None
    if checkpoint is not None:
        store = (
            checkpoint
            if isinstance(checkpoint, CampaignCheckpoint)
            else CampaignCheckpoint(checkpoint)
        )
    preloaded: Dict[str, PointRecord] = (
        store.load(fingerprint=fingerprint) if store is not None else {}
    )
    if retry_failed:
        # Forget persisted failure verdicts: the points re-enter the todo
        # set and, on success, their fresh records supersede the failures
        # in the checkpoint (last record wins on load).
        preloaded = {k: r for k, r in preloaded.items() if not r.failed}
    if store is not None:
        store.open_for_append(
            spec,
            fingerprint=fingerprint,
            total_points=len(points),
            strategy=strategy.name,
        )
    elog: Optional[EventLogObserver] = None
    # From here on the checkpoint's append lock is held: every further
    # failure — an event-log fingerprint mismatch, a critical observer
    # raising on an event — must release it (and the event-log handle), or
    # a long-lived session that catches the error would wedge the files.
    try:
        if event_log is not None:
            elog = (
                event_log
                if isinstance(event_log, EventLogObserver)
                else EventLogObserver(event_log)
            )
            # Opened eagerly — before any event publishes or point runs —
            # so a fingerprint mismatch refuses the whole campaign up
            # front, exactly like a mismatched checkpoint.
            elog.open(
                name=spec.name,
                fingerprint=fingerprint,
                total_points=len(points),
                strategy=strategy.name,
                jobs=runner.jobs,
            )

        bus = EventBus()
        aggregator = _CampaignAggregator(preloaded)
        bus.subscribe(aggregator, critical=True)
        if store is not None:
            # The checkpointer appends on PointCompleted and re-publishes
            # CheckpointFlushed; it is critical — losing appends silently
            # would corrupt resume semantics.
            bus.subscribe(CheckpointObserver(store, bus), critical=True)
        if elog is not None:
            # Critical too: a silently lossy event log would make replay lie.
            bus.subscribe(elog, critical=True)
        for observer in observers:
            bus.subscribe(observer)

        bus.publish(
            CampaignStarted(
                name=spec.name,
                fingerprint=fingerprint,
                total_points=len(points),
                jobs=runner.jobs,
                strategy=strategy.name,
                checkpoint_path=store.path if store is not None else None,
            )
        )

        announced: set = set()

        def run_points(stage_points: Sequence[SweepPoint]) -> List[PointRecord]:
            todo, keys, queued = [], [], set()
            for point in stage_points:
                key = point.key()
                keys.append(key)
                if key in aggregator.done:
                    if key not in announced:  # one PointResumed per unique key
                        announced.add(key)
                        bus.publish(PointResumed(record=aggregator.done[key]))
                elif key not in queued:  # identical points evaluate once
                    queued.add(key)
                    todo.append(point)
            returned = runner.run(todo)
            # Built-in runners deliver records through PointCompleted events
            # via their event_sink; a fully custom runner (PR-2-era
            # contract: just return the records) may not publish at all, so
            # fold anything the events did not deliver into the stream here
            # — checkpointing and observers then work identically for both
            # contracts.
            for record in returned or []:
                if record.key not in aggregator.done:
                    if record.failed:
                        bus.publish(PointFailed(record=record))
                    else:
                        bus.publish(PointCompleted(record=record))
            return [aggregator.done[key] for key in keys]

        previous_sink = runner.event_sink
        previous_policy = runner.retry_policy
        runner.event_sink = bus.publish
        if retry_policy is not None:
            runner.retry_policy = retry_policy
        try:
            records = strategy.execute(points, run_points)
            wall_seconds = time.perf_counter() - t0
            failed = len({r.key for r in records if r.failed})
            # Published while the store is still open: the checkpointer
            # reacts by writing the durable finished marker.  A crashed
            # campaign never gets one, so --follow keeps (correctly)
            # reporting it incomplete.
            bus.publish(
                CampaignFinished(
                    name=spec.name,
                    total_points=len(points),
                    evaluated=len(aggregator.fresh),
                    resumed=len(aggregator.resumed_keys),
                    wall_seconds=wall_seconds,
                    failed=failed,
                )
            )
        finally:
            runner.event_sink = previous_sink
            runner.retry_policy = previous_policy
    finally:
        if store is not None:
            store.close()
        if elog is not None:
            elog.close()
    return CampaignResult(
        spec=spec,
        records=records,
        evaluated=len(aggregator.fresh),
        resumed=len(aggregator.resumed_keys),
        failed=failed,
        jobs=runner.jobs,
        strategy=strategy.name,
        wall_seconds=wall_seconds,
        checkpoint_path=store.path if store is not None else None,
        event_log_path=elog.path if elog is not None else None,
        worker_cache_info=_aggregate_worker_caches(aggregator.fresh),
        observer_errors=list(bus.errors),
    )


def run_campaign(
    spec: SweepSpec,
    jobs: int = 1,
    checkpoint: Optional[Union[str, CampaignCheckpoint]] = None,
    strategy: Optional[SearchStrategy] = None,
    runner: Optional[Runner] = None,
    chunksize: Optional[int] = None,
    observers: Sequence[Any] = (),
    event_log: Optional[Union[str, EventLogObserver]] = None,
) -> CampaignResult:
    """Deprecated shim over :func:`execute_campaign`.

    .. deprecated::
        Use :class:`repro.api.Workbench` — ``Workbench(jobs=...).run(spec)``
        — which owns the plan cache, runner policy and observers for a whole
        session.  This shim keeps the historical one-shot signature working
        and produces byte-identical results.
    """
    warnings.warn(
        "run_campaign() is deprecated; use repro.api.Workbench().run(spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_campaign(
        spec,
        jobs=jobs,
        checkpoint=checkpoint,
        strategy=strategy,
        runner=runner,
        chunksize=chunksize,
        observers=observers,
        event_log=event_log,
    )
