"""Resumable JSONL campaign checkpoints.

One file per campaign.  The first line is a header carrying the spec's
fingerprint; every later line is one completed
:class:`~repro.sweep.record.PointRecord`.  Appends are flushed line-by-line,
so a killed campaign leaves a valid prefix: on restart the campaign loads the
completed keys, skips them, and only evaluates what is missing.

A half-written trailing line (the likely artefact of a hard kill) is
tolerated and dropped; a header whose fingerprint does not match the spec
being resumed raises :class:`CheckpointMismatch` rather than silently mixing
two campaigns in one file.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, TextIO

from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepSpec

#: Version tag of the checkpoint file format.
CHECKPOINT_FORMAT = 1


class CheckpointMismatch(RuntimeError):
    """The checkpoint on disk belongs to a different campaign spec."""


class CampaignCheckpoint:
    """Append-only JSONL store of completed sweep points."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[TextIO] = None
        self.dropped_lines = 0

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(
        self,
        spec: Optional[SweepSpec] = None,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, PointRecord]:
        """Completed records keyed by point key (empty when no file yet).

        When ``spec`` (or a precomputed ``fingerprint``) is given, the header
        fingerprint is verified against it.
        """
        expected = fingerprint if fingerprint is not None else (
            spec.fingerprint() if spec is not None else None
        )
        records: Dict[str, PointRecord] = {}
        self.dropped_lines = 0
        if not os.path.exists(self.path):
            return records
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    # A truncated tail from a killed run; everything before it
                    # is intact, so drop the fragment and carry on.
                    self.dropped_lines += 1
                    continue
                kind = payload.get("kind")
                if kind == "header":
                    found = payload.get("fingerprint")
                    if expected is not None and found != expected:
                        raise CheckpointMismatch(
                            f"checkpoint {self.path!r} was written for campaign "
                            f"{payload.get('name')!r} (fingerprint {found}); "
                            "refusing to resume a campaign with fingerprint "
                            f"{expected} from it"
                        )
                elif kind == "record":
                    record = PointRecord.from_json_dict(payload)
                    records[record.key] = record
        return records

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def open_for_append(
        self,
        spec: SweepSpec,
        fingerprint: Optional[str] = None,
        total_points: Optional[int] = None,
    ) -> None:
        """Open the file, writing the header when the file is new.

        ``fingerprint``/``total_points`` may be passed precomputed to avoid
        re-expanding the spec.  A hard kill can leave a truncated trailing
        line without a newline; terminate it first so the next append starts
        a fresh line instead of gluing onto the fragment (which would lose
        that record on reload).
        """
        is_new = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        needs_newline = False
        if not is_new:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._fh = open(self.path, "a", encoding="utf-8")
        if needs_newline:
            self._fh.write("\n")
            self._fh.flush()
        if is_new:
            header = {
                "kind": "header",
                "format": CHECKPOINT_FORMAT,
                "name": spec.name,
                "fingerprint": fingerprint if fingerprint is not None else spec.fingerprint(),
                "total_points": (
                    total_points if total_points is not None else len(spec.expand())
                ),
            }
            self._write_line(header)

    def append(self, record: PointRecord) -> None:
        """Persist one completed point (flushed immediately)."""
        if self._fh is None:
            raise RuntimeError("checkpoint is not open; call open_for_append() first")
        payload = record.to_json_dict()
        payload["kind"] = "record"
        self._write_line(payload)

    def _write_line(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
