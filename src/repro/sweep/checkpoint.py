"""Resumable JSONL campaign checkpoints.

One file per campaign.  The first line is a header carrying the spec's
fingerprint (and the search strategy); every later line is one completed
:class:`~repro.sweep.record.PointRecord`, except a ``finished`` marker
appended when a campaign runs to completion (what ``--follow`` trusts for
adaptive strategies).  Appends are flushed line-by-line, so a killed
campaign leaves a valid prefix: on restart the campaign loads the completed
keys, skips them, and only evaluates what is missing.

A half-written trailing line (the likely artefact of a hard kill) is
tolerated and dropped; a header whose fingerprint does not match the spec
being resumed raises :class:`CheckpointMismatch` rather than silently mixing
two campaigns in one file.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, Optional, TextIO

try:
    import fcntl
except ImportError:  # non-POSIX platforms: advisory locking degrades to none
    fcntl = None

from repro.sweep.record import PointRecord
from repro.sweep.spec import SweepSpec

#: Version tag of the checkpoint file format.
CHECKPOINT_FORMAT = 1


def iter_jsonl(path: str, on_corrupt=None):
    """Yield the parsed payload of every intact JSONL line of ``path``.

    Blank lines are skipped; unparseable lines (the truncated tail of a
    killed writer) are passed to ``on_corrupt`` (when given) and dropped —
    the shared tolerance contract of every campaign sidecar file: the
    checkpoint, its compactor and the event log all read through here.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if on_corrupt is not None:
                    on_corrupt(line)


@dataclass(frozen=True)
class CompactionStats:
    """Outcome of :meth:`CampaignCheckpoint.compact`."""

    kept: int  #: records surviving compaction (latest per point key)
    dropped_records: int  #: superseded records removed
    dropped_lines: int  #: unparseable fragments removed

    def format(self) -> str:
        """One-line summary for the ``compact`` CLI subcommand."""
        return (
            f"kept {self.kept} record(s), dropped {self.dropped_records} "
            f"superseded record(s) and {self.dropped_lines} corrupt line(s)"
        )


class CheckpointMismatch(RuntimeError):
    """The checkpoint on disk belongs to a different campaign spec."""


class CampaignCheckpoint:
    """Append-only JSONL store of completed sweep points."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[TextIO] = None
        self.dropped_lines = 0

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(
        self,
        spec: Optional[SweepSpec] = None,
        fingerprint: Optional[str] = None,
    ) -> Dict[str, PointRecord]:
        """Completed records keyed by point key (empty when no file yet).

        When ``spec`` (or a precomputed ``fingerprint``) is given, the header
        fingerprint is verified against it.
        """
        expected = fingerprint if fingerprint is not None else (
            spec.fingerprint() if spec is not None else None
        )
        records: Dict[str, PointRecord] = {}
        self.dropped_lines = 0
        if not os.path.exists(self.path):
            return records

        def corrupt(_line):
            # A truncated tail from a killed run; everything before it is
            # intact, so drop the fragment and carry on.
            self.dropped_lines += 1

        for payload in iter_jsonl(self.path, on_corrupt=corrupt):
            kind = payload.get("kind")
            if kind == "header":
                found = payload.get("fingerprint")
                if expected is not None and found != expected:
                    raise CheckpointMismatch(
                        f"checkpoint {self.path!r} was written for campaign "
                        f"{payload.get('name')!r} (fingerprint {found}); "
                        "refusing to resume a campaign with fingerprint "
                        f"{expected} from it"
                    )
            elif kind == "record":
                record = PointRecord.from_json_dict(payload)
                records[record.key] = record
        return records

    def read_header(self) -> Optional[dict]:
        """The header payload of the file on disk (None when absent).

        An introspection helper (tests, tooling): it reads the name,
        fingerprint, strategy and total point count without loading every
        record.  The ``--follow`` tailer does *not* use it — it parses the
        header inline while streaming the file incrementally
        (:class:`repro.sweep.follow._CheckpointTailer`).
        """
        if not os.path.exists(self.path):
            return None
        for payload in iter_jsonl(self.path):
            if payload.get("kind") == "header":
                return payload
        return None

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def compact(self) -> CompactionStats:
        """Rewrite the file keeping only the latest record per point key.

        JSONL checkpoints are append-only, so a campaign that re-evaluates a
        point (e.g. after a compaction-free history of crashes and retries)
        accumulates superseded lines.  Compaction preserves the header —
        fingerprint included, so resume still recognises the campaign — and,
        per key, the *last* record written, plus the latest ``finished``
        marker so ``--follow`` still recognises a completed campaign.
        First-seen key order is kept, so compacting an already-compact file
        is a byte-stable no-op.  The rewrite lands via an atomic rename; a
        crash mid-compaction leaves the original file untouched.

        A checkpoint that a live campaign holds open — in this process or
        (via the advisory file lock) any other — is refused: replacing the
        file under an active appender would silently divert its appends to
        an unlinked inode.
        """
        if self._fh is not None:
            raise RuntimeError("cannot compact a checkpoint that is open for append")
        if not os.path.exists(self.path):
            return CompactionStats(kept=0, dropped_records=0, dropped_lines=0)
        header: Optional[dict] = None
        finished: Optional[dict] = None
        latest: Dict[str, dict] = {}
        order: list = []
        dropped_lines = 0
        total_records = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            self._guard_not_locked(fh)

        def corrupt(_line):
            nonlocal dropped_lines
            dropped_lines += 1

        for payload in iter_jsonl(self.path, on_corrupt=corrupt):
            kind = payload.get("kind")
            if kind == "header":
                if header is None:
                    header = payload
            elif kind == "record":
                total_records += 1
                key = payload.get("key")
                if key not in latest:
                    order.append(key)
                latest[key] = payload
            elif kind == "finished":
                finished = payload
        directory = os.path.dirname(self.path) or "."
        fd, tmp_path = tempfile.mkstemp(
            prefix=os.path.basename(self.path) + ".", suffix=".compact", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as out:
                if header is not None:
                    out.write(json.dumps(header, sort_keys=True) + "\n")
                for key in order:
                    out.write(json.dumps(latest[key], sort_keys=True) + "\n")
                if finished is not None:
                    out.write(json.dumps(finished, sort_keys=True) + "\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            os.unlink(tmp_path)
            raise
        return CompactionStats(
            kept=len(order),
            dropped_records=total_records - len(order),
            dropped_lines=dropped_lines,
        )

    @staticmethod
    def _guard_not_locked(fh) -> None:
        """Raise when another process holds the checkpoint's append lock."""
        if fcntl is None:
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_SH | fcntl.LOCK_NB)
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
        except OSError:
            raise RuntimeError(
                "cannot compact a checkpoint that a running campaign holds "
                "open for append"
            ) from None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def open_for_append(
        self,
        spec: SweepSpec,
        fingerprint: Optional[str] = None,
        total_points: Optional[int] = None,
        strategy: Optional[str] = None,
    ) -> None:
        """Open the file, writing the header when the file is new.

        ``fingerprint``/``total_points`` may be passed precomputed to avoid
        re-expanding the spec; ``strategy`` is recorded in the header so a
        ``--follow`` tailer knows whether the record count can be compared
        against ``total_points`` (only exhaustive grids guarantee that).
        A hard kill can leave a truncated trailing line without a newline;
        terminate it first so the next append starts a fresh line instead of
        gluing onto the fragment (which would lose that record on reload).

        While open, the file carries an advisory exclusive lock so a
        concurrent :meth:`compact` (or a second campaign on the same path)
        fails fast instead of corrupting the append stream.
        """
        is_new = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        needs_newline = False
        if not is_new:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock_append_handle()
        if needs_newline:
            self._fh.write("\n")
            self._fh.flush()
        if is_new:
            header = {
                "kind": "header",
                "format": CHECKPOINT_FORMAT,
                "name": spec.name,
                "fingerprint": fingerprint if fingerprint is not None else spec.fingerprint(),
                "total_points": (
                    total_points if total_points is not None else len(spec.expand())
                ),
            }
            if strategy is not None:
                header["strategy"] = strategy
            self._write_line(header)

    def _lock_append_handle(self) -> None:
        if fcntl is None:
            return
        try:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._fh.close()
            self._fh = None
            raise RuntimeError(
                f"checkpoint {self.path!r} is already open for append by "
                "another campaign"
            ) from None

    def append(self, record: PointRecord) -> None:
        """Persist one completed point (flushed immediately)."""
        if self._fh is None:
            raise RuntimeError("checkpoint is not open; call open_for_append() first")
        payload = record.to_json_dict()
        payload["kind"] = "record"
        self._write_line(payload)

    def write_finished(self, evaluated: int, resumed: int, failed: int = 0) -> None:
        """Append the campaign-finished marker (flushed immediately).

        The marker is what tells a ``--follow`` tailer that an *adaptive*
        campaign (halving evaluates more records than ``total_points``,
        random fewer) is genuinely done, independent of record counts.
        ``failed`` counts permanently failed points; the key is written only
        when non-zero, so markers from clean campaigns are unchanged.
        """
        if self._fh is None:
            raise RuntimeError("checkpoint is not open; call open_for_append() first")
        marker = {"kind": "finished", "evaluated": evaluated, "resumed": resumed}
        if failed:
            marker["failed"] = failed
        self._write_line(marker)

    def _write_line(self, payload: dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
