"""Durable event-log persistence and deterministic campaign replay.

The in-process :class:`~repro.sweep.events.EventBus` (PR 3) made campaign
execution observable; this module makes the stream *durable*.  An
:class:`EventLogObserver` serialises every :class:`RunEvent` — schema
version, wall-clock delivery timestamp and a log-wide sequence number per
line — to a JSONL sidecar next to the checkpoint, guarded by a fingerprint
header exactly like the checkpoint itself (appending a different campaign's
events to an existing log raises :class:`EventLogMismatch`).

Events that originate in pool workers keep their true attribution: the
worker stamps pid / begin timestamp / worker-local sequence into
``PointRecord.meta`` (see :mod:`repro.sweep.runners`), the runner re-emits
them as faithful ``PointStarted`` events, and the log records them verbatim
— so a cross-host reader can reconstruct who ran what, when.

:class:`CampaignReplay` is the read side: it reconstructs the typed event
stream from disk and re-drives any observer — the live
:class:`~repro.sweep.events.ProgressReporter`, custom debuggers —
**deterministically**: :attr:`CampaignReplay.clock` returns the logged
timestamp of the event currently being dispatched, so a reporter constructed
with ``clock=replay.clock`` prints byte-identical output on every replay,
and its final line matches the live run's (both derive from the same
``CampaignFinished`` payload).

File schema (one JSON object per line)::

    {"kind": "header", "log": "events", "format": 1, "name": ...,
     "fingerprint": ..., "total_points": ..., "strategy": ..., "jobs": ...}
    {"kind": "campaign_started", "seq": 1, "ts": 1699.5, "data": {...}}
    {"kind": "point_started",    "seq": 2, "ts": 1699.6, "data": {...}}
    ...

``seq`` is the log-wide delivery order (monotonic across appended sessions),
``ts`` the wall clock at delivery; point events additionally carry the
worker-side stamps inside ``data``.  Unknown kinds are skipped on replay, so
old readers survive new event types.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Iterator, List, NamedTuple, Optional, TextIO

try:
    import fcntl
except ImportError:  # non-POSIX platforms: advisory locking degrades to none
    fcntl = None

from repro.sweep.checkpoint import iter_jsonl
from repro.sweep.events import (
    CampaignFinished,
    CampaignStarted,
    CheckpointFlushed,
    EventBus,
    ObserverError,
    PointCompleted,
    PointFailed,
    PointResumed,
    PointRetried,
    PointStarted,
    PoolRestarted,
    RunEvent,
    RunObserver,
    WorkerLost,
)
from repro.sweep.record import PointRecord

#: Version tag of the event-log file format.
EVENT_LOG_FORMAT = 1


class EventLogMismatch(RuntimeError):
    """The event log on disk belongs to a different campaign spec."""


def default_event_log_path(checkpoint_path: str) -> str:
    """The sidecar event-log path for a checkpoint: ``c.jsonl → c.events.jsonl``."""
    path = os.fspath(checkpoint_path)
    root, ext = os.path.splitext(path)
    if ext == ".jsonl":
        return root + ".events.jsonl"
    return path + ".events.jsonl"


# --------------------------------------------------------------------------- #
# serialisation
# --------------------------------------------------------------------------- #
#: Events carrying a full PointRecord under ``data["record"]``.
_RECORD_EVENTS = {
    "point_completed": PointCompleted,
    "point_resumed": PointResumed,
    "point_failed": PointFailed,
}

#: Events whose dataclass fields serialise as plain JSON scalars.
_FLAT_EVENTS = {
    "campaign_started": CampaignStarted,
    "point_started": PointStarted,
    "point_retried": PointRetried,
    "checkpoint_flushed": CheckpointFlushed,
    "campaign_finished": CampaignFinished,
    "worker_lost": WorkerLost,
    "pool_restarted": PoolRestarted,
}


def event_to_payload(event: RunEvent, seq: int, ts: float) -> Dict[str, Any]:
    """One JSONL line for ``event``: kind + log stamps + event data."""
    if event.kind in _RECORD_EVENTS:
        data: Dict[str, Any] = {"record": event.record.to_json_dict()}
    else:
        # Flat events serialise their dataclass fields directly; an unknown
        # RunEvent subclass degrades to whatever public scalars it exposes.
        data = {
            name: value
            for name, value in vars(event).items()
            if not name.startswith("_")
        }
    return {"kind": event.kind, "seq": seq, "ts": ts, "data": data}


def event_from_payload(payload: Dict[str, Any]) -> Optional[RunEvent]:
    """Rebuild the typed event of one log line (None for unknown kinds)."""
    kind = payload.get("kind")
    data = payload.get("data") or {}
    if kind in _RECORD_EVENTS:
        record = PointRecord.from_json_dict(data.get("record") or {})
        return _RECORD_EVENTS[kind](record=record)
    cls = _FLAT_EVENTS.get(kind)
    if cls is None:
        return None
    fields = {name for name in cls.__dataclass_fields__}
    return cls(**{name: value for name, value in data.items() if name in fields})


# --------------------------------------------------------------------------- #
# write side
# --------------------------------------------------------------------------- #
class EventLogObserver(RunObserver):
    """Serialises every campaign event to a JSONL sidecar, as it happens.

    Subscribe it (critical) to a campaign's bus — or pass ``event_log=`` to
    :func:`~repro.sweep.campaign.execute_campaign`, which also opens it
    eagerly so a fingerprint mismatch refuses *before* any work runs.  The
    log is append-only: resuming a campaign appends a fresh
    ``campaign_started`` session to the same file (the replay side resets
    per session, exactly like a live :class:`ProgressReporter`).
    """

    # repro: allow[determinism] injected clock seam — tests pass a fake; ts is advisory metadata
    def __init__(self, path: str, clock: Callable[[], float] = time.time) -> None:
        self.path = os.fspath(path)
        self._clock = clock
        self._fh: Optional[TextIO] = None
        self.seq = 0  #: last log-wide sequence number written

    # ------------------------------------------------------------------ #
    def open(
        self,
        name: str,
        fingerprint: str,
        total_points: Optional[int] = None,
        strategy: Optional[str] = None,
        jobs: Optional[int] = None,
    ) -> None:
        """Open for append, writing (or fingerprint-checking) the header."""
        if self._fh is not None:
            return
        existing = self.read_header(self.path)
        if existing is not None:
            found = existing.get("fingerprint")
            if found != fingerprint:
                raise EventLogMismatch(
                    f"event log {self.path!r} was written for campaign "
                    f"{existing.get('name')!r} (fingerprint {found}); refusing "
                    f"to append a campaign with fingerprint {fingerprint} to it"
                )
            self.seq = self._last_seq()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        needs_newline = False
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                needs_newline = fh.read(1) != b"\n"
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock_append_handle()
        if needs_newline:
            # A killed writer's torn tail: terminate it so the next line
            # starts clean (the torn fragment is dropped on read).
            self._fh.write("\n")
            self._fh.flush()
        if existing is None:
            self._write(
                {
                    "kind": "header",
                    "log": "events",
                    "format": EVENT_LOG_FORMAT,
                    "name": name,
                    "fingerprint": fingerprint,
                    "total_points": total_points,
                    "strategy": strategy,
                    "jobs": jobs,
                }
            )

    def _lock_append_handle(self) -> None:
        """Hold an advisory exclusive lock while open, like the checkpoint.

        Two campaigns appending to one log would interleave sessions with
        colliding sequence numbers — replay and the follower would then see
        garbage.  Fail fast instead.
        """
        if fcntl is None:
            return
        try:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._fh.close()
            self._fh = None
            raise RuntimeError(
                f"event log {self.path!r} is already open for append by "
                "another campaign"
            ) from None

    @staticmethod
    def read_header(path: str) -> Optional[dict]:
        """The event-log header on disk (None when the file is absent)."""
        if not os.path.exists(path):
            return None
        for payload in iter_jsonl(path):
            if payload.get("kind") == "header":
                return payload
            break  # the header is always the first intact line
        return None

    def _last_seq(self) -> int:
        """Highest sequence number already in the file (append resumes it)."""
        last = 0
        for payload in iter_jsonl(self.path):
            last = payload.get("seq", last) or last
        return last

    # ------------------------------------------------------------------ #
    def on_event(self, event: RunEvent) -> None:
        if self._fh is None:
            if not isinstance(event, CampaignStarted):
                return  # standalone use: nothing to log before a session opens
            self.open(
                name=event.name,
                fingerprint=event.fingerprint,
                total_points=event.total_points,
                strategy=event.strategy,
                jobs=event.jobs,
            )
        self.seq += 1
        self._write(event_to_payload(event, seq=self.seq, ts=self._clock()))

    def _write(self, payload: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the underlying file handle."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLogObserver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# read side
# --------------------------------------------------------------------------- #
class ReplayStats(NamedTuple):
    """Outcome of one :meth:`CampaignReplay.replay` pass."""

    events: int  #: typed events delivered to the observers
    skipped: int  #: unknown-kind lines skipped (forward compatibility)
    campaigns: int  #: campaign sessions in the log
    finished: bool  #: the last session reached CampaignFinished
    errors: List[ObserverError]  #: isolated observer failures
    failed: int = 0  #: permanently failed points in the last session

    def format(self) -> str:
        """One-line summary for the ``replay`` CLI subcommand."""
        if self.finished and self.failed:
            state = f"finished with {self.failed} failed point(s)"
        elif self.finished:
            state = "finished"
        else:
            state = "INCOMPLETE"
        extra = f", {self.skipped} unknown line(s) skipped" if self.skipped else ""
        return (
            f"replayed {self.events} event(s) across {self.campaigns} "
            f"session(s){extra}; campaign {state}"
        )


class CampaignReplay:
    """Reconstruct a persisted event stream and re-drive observers from it.

    Replay is deterministic: observers that need a clock should use
    :attr:`clock`, which returns the logged delivery timestamp of the event
    currently in flight — two replays of one log produce byte-identical
    output, and rates/ETAs reflect the *original* run's timing, not the
    replay's.

    ::

        replay = CampaignReplay("campaign.events.jsonl")
        reporter = ProgressReporter(stream=sys.stdout, min_interval=0.0,
                                    clock=replay.clock)
        stats = replay.replay(reporter)
    """

    def __init__(self, path: str, fingerprint: Optional[str] = None) -> None:
        self.path = os.fspath(path)
        if not os.path.exists(self.path):
            raise FileNotFoundError(f"no event log at {self.path!r}")
        self.header = EventLogObserver.read_header(self.path)
        if self.header is None or self.header.get("log") != "events":
            raise EventLogMismatch(
                f"{self.path!r} is not an event log (no event-log header); "
                "was a checkpoint path passed by mistake?"
            )
        if fingerprint is not None and self.header.get("fingerprint") != fingerprint:
            raise EventLogMismatch(
                f"event log {self.path!r} was written for campaign "
                f"{self.header.get('name')!r} (fingerprint "
                f"{self.header.get('fingerprint')}); refusing to replay it as "
                f"fingerprint {fingerprint}"
            )
        self._now: float = 0.0

    # ------------------------------------------------------------------ #
    def clock(self) -> float:
        """Logged timestamp of the event currently being dispatched."""
        return self._now

    def events(self) -> Iterator[RunEvent]:
        """The typed event stream, in logged order (unknown kinds skipped).

        Advances :meth:`clock` as a side effect, so observers driven by hand
        see the same deterministic time base as :meth:`replay`.
        """
        for payload in iter_jsonl(self.path):
            if payload.get("kind") == "header":
                continue
            event = event_from_payload(payload)
            if event is None:
                continue
            self._now = payload.get("ts", self._now) or self._now
            yield event

    def replay(self, *observers: Any) -> ReplayStats:
        """Publish every logged event to ``observers`` through a fresh bus.

        Observer failures are isolated exactly as in a live campaign and
        returned on :attr:`ReplayStats.errors`.
        """
        bus = EventBus()
        for observer in observers:
            bus.subscribe(observer)
        events = skipped = campaigns = failed = 0
        finished = False
        for payload in iter_jsonl(self.path):
            if payload.get("kind") == "header":
                continue
            event = event_from_payload(payload)
            if event is None:
                skipped += 1
                continue
            self._now = payload.get("ts", self._now) or self._now
            if isinstance(event, CampaignStarted):
                campaigns += 1
                finished = False
                failed = 0
            elif isinstance(event, PointFailed):
                failed += 1
            elif isinstance(event, CampaignFinished):
                finished = True
                # Trust the finish marker when present: a resumed session
                # inherits failures persisted by earlier sessions that this
                # session's PointFailed count would miss.
                failed = max(failed, getattr(event, "failed", 0) or 0)
            bus.publish(event)
            events += 1
        return ReplayStats(
            events=events,
            skipped=skipped,
            campaigns=campaigns,
            finished=finished,
            errors=list(bus.errors),
            failed=failed,
        )
