"""The event stream at the heart of campaign execution.

Runners and the campaign engine no longer report through ad-hoc callbacks:
they publish typed :class:`RunEvent`\\ s onto an :class:`EventBus`, and every
consumer — the live :class:`ProgressReporter`, the JSONL
:class:`CheckpointObserver`, the result aggregator inside
:func:`repro.sweep.campaign.execute_campaign` — is an observer on that bus.

The bus gives two guarantees the tests rely on:

* **total order** — events are delivered from a single queue in the main
  process, so every observer sees the same sequence; an event published
  *while* another is being delivered (e.g. :class:`CheckpointFlushed` from
  the checkpointer) is queued and delivered after the current event reaches
  every observer, never interleaved;
* **failure isolation** — an exception inside a non-critical observer is
  caught and recorded on :attr:`EventBus.errors`; the campaign and the other
  observers carry on.  Only observers subscribed with ``critical=True`` (the
  aggregator and the checkpointer, whose failures would corrupt the result)
  may abort the campaign.

Event counts are part of the determinism contract: a serial and a parallel
run of the same spec publish the same number of :class:`PointStarted` and
:class:`PointCompleted` events (delivery *order* of completions may differ —
chunks finish when they finish — but per point, ``PointStarted`` always
precedes its ``PointCompleted``).
"""

from __future__ import annotations

import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, List, NamedTuple, Optional, TextIO

from repro.sweep.record import PointRecord

# --------------------------------------------------------------------------- #
# events
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RunEvent:
    """Base class of every campaign event.

    ``kind`` is a stable snake_case tag used for observer dispatch
    (:class:`RunObserver` routes to ``on_<kind>``) and for serialising event
    streams to logs.
    """

    kind = "run_event"


@dataclass(frozen=True)
class CampaignStarted(RunEvent):
    """Published once, before any point runs."""

    kind = "campaign_started"

    name: str
    fingerprint: str
    total_points: int
    jobs: int = 1
    strategy: str = "grid"
    checkpoint_path: Optional[str] = None


@dataclass(frozen=True)
class PointStarted(RunEvent):
    """A point actually began evaluating in some worker process.

    Attribution fields are stamped by the evaluating process itself:
    ``worker`` is its pid, ``ts`` the wall-clock begin time and ``seq`` the
    worker-local evaluation sequence number.  Pool runners ship the stamps
    back inside :attr:`PointRecord.meta` and re-emit the event from the
    parent, so the stream reflects *actual* execution, not submission.
    """

    kind = "point_started"

    key: str
    label: str
    rung: int = 0
    worker: Optional[int] = None  #: pid of the evaluating process
    ts: Optional[float] = None  #: wall-clock begin time (``time.time()``)
    seq: Optional[int] = None  #: worker-local evaluation sequence number


@dataclass(frozen=True)
class PointCompleted(RunEvent):
    """A point finished evaluating; carries the completed record."""

    kind = "point_completed"

    record: PointRecord


@dataclass(frozen=True)
class PointResumed(RunEvent):
    """A point was satisfied from a checkpoint (or an earlier stage)."""

    kind = "point_resumed"

    record: PointRecord


@dataclass(frozen=True)
class PointRetried(RunEvent):
    """An attempt failed retryably; the point will be re-issued.

    ``reason`` distinguishes *why*: ``"error"`` (the backend raised),
    ``"deadline"`` (the watchdog abandoned a straggler) or
    ``"worker-lost"`` (the point was in flight when its pool broke).
    """

    kind = "point_retried"

    key: str
    label: str
    rung: int = 0
    attempt: int = 1  #: the attempt that just failed (1-based)
    error: str = ""
    delay_s: float = 0.0  #: backoff before the next attempt
    reason: str = "error"  #: "error" | "deadline" | "worker-lost"
    worker: Optional[int] = None  #: pid of the failing worker, when known


@dataclass(frozen=True)
class PointFailed(RunEvent):
    """A point exhausted its retry budget (or was quarantined as poison).

    Carries the failure :class:`~repro.sweep.record.PointRecord`
    (``record.failed`` is True) so checkpoints persist the verdict and a
    resume can skip the point.
    """

    kind = "point_failed"

    record: PointRecord


@dataclass(frozen=True)
class WorkerLost(RunEvent):
    """A pool worker died (the executor reported a broken pool)."""

    kind = "worker_lost"

    worker: Optional[int] = None  #: pid of the dead worker, when identifiable
    inflight: int = 0  #: points in flight when the pool broke
    error: str = ""


@dataclass(frozen=True)
class PoolRestarted(RunEvent):
    """The runner respawned its worker pool after losing it."""

    kind = "pool_restarted"

    restarts: int = 1  #: cumulative pool respawns this campaign
    jobs: int = 0
    reason: str = ""


@dataclass(frozen=True)
class CheckpointFlushed(RunEvent):
    """One record reached the JSONL checkpoint on disk."""

    kind = "checkpoint_flushed"

    path: str
    key: str
    flushed: int  #: cumulative records flushed by this campaign


@dataclass(frozen=True)
class CampaignFinished(RunEvent):
    """Published once, after the strategy finished every stage."""

    kind = "campaign_finished"

    name: str
    total_points: int
    evaluated: int
    resumed: int
    wall_seconds: float
    failed: int = 0  #: points recorded as permanently failed


#: A callable consuming events (what runners see as their ``event_sink``).
EventSink = Callable[[RunEvent], None]


# --------------------------------------------------------------------------- #
# observers and the bus
# --------------------------------------------------------------------------- #
class RunObserver:
    """Base observer: dispatches each event to ``on_<kind>`` when defined.

    Subclasses implement only the hooks they care about
    (``on_point_completed(event)``, ``on_campaign_finished(event)``, ...);
    unknown events fall through silently, so new event types never break old
    observers.
    """

    def on_event(self, event: RunEvent) -> None:
        handler = getattr(self, f"on_{event.kind}", None)
        if handler is not None:
            handler(event)


class ObserverError(NamedTuple):
    """One isolated observer failure, recorded on :attr:`EventBus.errors`."""

    observer: Any
    event: RunEvent
    error: BaseException


class EventBus:
    """Single-process fan-out of :class:`RunEvent`\\ s with queued dispatch."""

    def __init__(self) -> None:
        self._observers: List[tuple] = []  # (observer, critical)
        self._queue: "deque[RunEvent]" = deque()
        self._dispatching = False
        self.errors: List[ObserverError] = []

    def subscribe(self, observer: Any, critical: bool = False) -> None:
        """Attach an observer (an object with ``on_event`` or a callable).

        ``critical=True`` observers are load-bearing: their exceptions
        propagate and abort the campaign.  Everyone else is isolated.
        """
        self._observers.append((observer, critical))

    def publish(self, event: RunEvent) -> None:
        """Deliver an event to every observer, in subscription order.

        Reentrant publishes (an observer reacting to an event with another
        event) are queued, so the global event order stays total: event *n*
        reaches every observer before event *n+1* reaches any.
        """
        self._queue.append(event)
        if self._dispatching:
            return
        self._dispatching = True
        try:
            while self._queue:
                current = self._queue.popleft()
                for observer, critical in list(self._observers):
                    try:
                        if callable(observer) and not hasattr(observer, "on_event"):
                            observer(current)
                        else:
                            observer.on_event(current)
                    except Exception as exc:
                        if critical:
                            raise
                        self.errors.append(ObserverError(observer, current, exc))
        finally:
            self._dispatching = False


# --------------------------------------------------------------------------- #
# built-in observers
# --------------------------------------------------------------------------- #
class ProgressReporter(RunObserver):
    """Live campaign progress: completed counts, points/sec and ETA.

    Writes one line per update (append-friendly for CI log artifacts) to
    ``stream`` — standard error by default, so campaign reports on stdout
    stay machine-readable.  Updates are throttled to one per
    ``min_interval`` seconds; the start and finish lines always print.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._stream = stream
        self._min_interval = min_interval
        self._clock = clock
        self._t0: Optional[float] = None
        self._last_emit: Optional[float] = None
        self.name = ""
        self.total = 0
        self.completed = 0
        self.evaluated = 0
        self.resumed = 0
        self.failed = 0

    # ------------------------------------------------------------------ #
    def on_campaign_started(self, event: CampaignStarted) -> None:
        # A session-wide reporter sees many campaigns; every start resets
        # the counters so rates and ETAs never mix campaigns.
        self.name = event.name
        self.total = event.total_points
        self.completed = 0
        self.evaluated = 0
        self.resumed = 0
        self.failed = 0
        self._t0 = self._clock()
        self._last_emit = None
        self._write(
            f"[{event.name}] campaign started: {event.total_points} points, "
            f"jobs={event.jobs}, strategy={event.strategy}"
        )

    def on_point_resumed(self, event: PointResumed) -> None:
        self.completed += 1
        self.resumed += 1
        self._emit()

    def on_point_completed(self, event: PointCompleted) -> None:
        self.completed += 1
        self.evaluated += 1
        self._emit()

    def on_point_retried(self, event: PointRetried) -> None:
        self._write(
            f"[{self.name}] retrying {event.label} "
            f"(attempt {event.attempt} {event.reason}: {event.error or 'failed'})"
        )

    def on_point_failed(self, event: PointFailed) -> None:
        self.completed += 1
        self.failed += 1
        self._write(
            f"[{self.name}] FAILED {event.record.label}: "
            f"{event.record.error or 'unknown error'}"
        )
        self._emit()

    def on_worker_lost(self, event: WorkerLost) -> None:
        who = f"pid {event.worker}" if event.worker else "worker"
        self._write(
            f"[{self.name}] {who} lost with {event.inflight} point(s) in flight"
        )

    def on_pool_restarted(self, event: PoolRestarted) -> None:
        self._write(
            f"[{self.name}] worker pool restarted "
            f"(#{event.restarts}, jobs={event.jobs}): {event.reason}"
        )

    def on_campaign_finished(self, event: CampaignFinished) -> None:
        self._emit(force=True)
        # The failure clause is appended only when present, so the finish
        # line of a clean campaign stays byte-identical to older releases
        # (CI and the tests grep for it verbatim).
        failures = f", {event.failed} failed" if event.failed else ""
        self._write(
            f"[{event.name}] campaign finished: {event.evaluated} evaluated, "
            f"{event.resumed} resumed{failures} in {event.wall_seconds:.2f}s"
        )

    # ------------------------------------------------------------------ #
    def _rate(self) -> float:
        """Freshly evaluated points per second since the campaign started."""
        if self._t0 is None:
            return 0.0
        elapsed = self._clock() - self._t0
        return self.evaluated / elapsed if elapsed > 0 else 0.0

    def _emit(self, force: bool = False) -> None:
        now = self._clock()
        if not force and self._last_emit is not None:
            if now - self._last_emit < self._min_interval:
                return
        self._last_emit = now
        rate = self._rate()
        remaining = max(0, self.total - self.completed)
        eta = f"{remaining / rate:.1f}s" if rate > 0 else "-"
        # Adaptive strategies evaluate more (halving) or fewer (random)
        # points than the expanded total, so the percentage is clamped.
        pct = min(100.0, 100.0 * self.completed / self.total) if self.total else 100.0
        self._write(
            f"[{self.name}] {self.completed}/{self.total} points ({pct:.1f}%) | "
            f"{rate:.2f} points/s | ETA {eta}"
        )

    def _write(self, line: str) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        stream.write(line + "\n")
        stream.flush()


class CheckpointObserver(RunObserver):
    """Appends every completed point to a JSONL checkpoint as it lands.

    Re-publishes a :class:`CheckpointFlushed` event after each append when
    given the bus, so downstream observers (and ``--follow`` consumers of the
    file itself) can track durable progress rather than in-memory progress.
    """

    def __init__(self, store, bus: Optional[EventBus] = None) -> None:
        self.store = store
        self.bus = bus
        self.flushed = 0

    def on_point_completed(self, event: PointCompleted) -> None:
        self._append(event.record)

    def on_point_failed(self, event: PointFailed) -> None:
        # Failure records are durable too: a resume must know the point was
        # quarantined, not merely never attempted.
        self._append(event.record)

    def _append(self, record) -> None:
        self.store.append(record)
        self.flushed += 1
        if self.bus is not None:
            self.bus.publish(
                CheckpointFlushed(
                    path=self.store.path, key=record.key, flushed=self.flushed
                )
            )

    def on_campaign_finished(self, event: CampaignFinished) -> None:
        # The durable end-of-campaign marker: what tells a cross-process
        # --follow tailer that an adaptive campaign is done (its record
        # count need not match the header's total_points).
        self.store.write_finished(
            evaluated=event.evaluated, resumed=event.resumed, failed=event.failed
        )


class EventLog(RunObserver):
    """Records every event in order (used by tests and debugging)."""

    def __init__(self) -> None:
        self.events: List[RunEvent] = []

    def on_event(self, event: RunEvent) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        """The ``kind`` tags, in delivery order."""
        return [e.kind for e in self.events]

    def count(self, kind: str) -> int:
        """Number of recorded events with the given kind tag."""
        return sum(1 for e in self.events if e.kind == kind)
