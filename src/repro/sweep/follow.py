"""Tail a live campaign from another process: ``python -m repro.sweep --follow``.

Two durable streams can drive the follower:

* the **event log** (:mod:`repro.sweep.eventlog`) — the full typed event
  stream, one JSONL line per event.  Following it shows per-point starts
  (with true worker attribution), in-flight points and per-worker
  throughput, and completion is the logged ``campaign_finished`` event;
* the **checkpoint** (:mod:`repro.sweep.checkpoint`) — the legacy fallback:
  one line per *completed* point, so only completions (and the ``finished``
  marker) are visible.

:func:`follow_campaign` picks automatically: given an event log (or a
checkpoint whose sidecar event log exists) it follows events; any other
path falls back to checkpoint tailing, byte-compatible with older files.

Both tailers share one incremental reader that survives the realities of
files written by other processes:

* a **half-written trailing line** (no newline yet) is re-read on the next
  poll — and if the writer died mid-line, :meth:`finalize` salvages the tail
  if it parses, so a torn ``finished`` marker still completes the campaign
  instead of wedging the follower at N-1/N;
* **truncation or atomic rewrite** (``compact`` runs mid-tail, the file
  shrinks, or the first line changes under us) resets the read offset *and*
  the seen-key set, re-syncing from the new file contents — counts stay
  accurate instead of silently stalling until the idle timeout.

Both tailers are failure-aware: permanently failed points (quarantined by
the fault-tolerant runners) count as *done* — the campaign genuinely
finished with them — but are reported separately, and the event tailer
additionally surfaces retries, lost workers and pool restarts as incident
lines as they stream in.

Exit codes: 0 when the campaign completed cleanly, 1 when it completed but
some points permanently failed, 2 when the follower gave up on an
incomplete campaign after ``idle_timeout`` seconds without new data.

The follower needs no connection to the producing process, so it works
across terminals, containers or hosts sharing the file.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, TextIO, Tuple

from repro.sweep.eventlog import EventLogObserver, default_event_log_path


# --------------------------------------------------------------------------- #
# the shared incremental JSONL reader
# --------------------------------------------------------------------------- #
class _JsonlTailer:
    """Incrementally parse complete JSONL lines appended to a live file.

    Subclasses implement ``_consume(payload) -> int`` (progress units in the
    payload, e.g. 1 for a newly seen record) and ``_reset_state()`` (clear
    everything derived from file contents; called when the file was
    truncated or atomically rewritten underneath us).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.resyncs = 0  #: rewrites/truncations detected so far
        self.resynced = False  #: the *last* poll detected one
        self.salvaged_tail = False  #: finalize() parsed a torn trailing line
        self._first_line: Optional[str] = None
        self._torn_tail: Optional[str] = None
        self._ino: Optional[int] = None

    # ------------------------------------------------------------------ #
    def poll(self) -> int:
        """Consume newly appended complete lines; return new progress units.

        Three independent rewrite detectors guard against a stale offset, in
        cheapest-first order: a shrunk file (plain truncation), a changed
        inode (atomic-rename rewrite, e.g. ``compact`` — catches the rewrite
        even after the new file has regrown *past* the old offset and even
        though compaction reproduces the header byte-identically), and a
        changed first line (in-place rewrite keeping the inode).  Any hit
        resets the offset and the derived state and re-syncs from the start
        instead of stalling.
        """
        self.resynced = False
        if not os.path.exists(self.path):
            return 0
        new = 0
        self._torn_tail = None
        with open(self.path, "r", encoding="utf-8") as fh:
            stat = os.fstat(fh.fileno())
            ino = stat.st_ino or None  # some platforms report 0: no signal
            if self.offset > 0:
                rewritten = stat.st_size < self.offset
                if not rewritten and None not in (ino, self._ino):
                    rewritten = ino != self._ino
                if not rewritten and self._first_line is not None:
                    rewritten = fh.readline() != self._first_line
                if rewritten:
                    self._reset()
                fh.seek(self.offset)
            self._ino = ino
            while True:
                line_start = fh.tell()
                line = fh.readline()
                if not line:
                    break
                if not line.endswith("\n"):
                    # A half-written tail: remember it (finalize() may
                    # salvage it) and re-read it on the next poll.
                    self._torn_tail = line
                    break
                if line_start == 0:
                    self._first_line = line
                self.offset = fh.tell()
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    payload = json.loads(stripped)
                except json.JSONDecodeError:
                    continue
                new += self._consume(payload)
        return new

    def finalize(self) -> int:
        """Last-resort read: also consume a parseable torn trailing line.

        A writer that crashed (or was killed) after writing a full JSON line
        but before its newline leaves a tail ``poll`` will never consume.
        Called when the follower is about to give up: if that tail parses,
        it is consumed — a torn-but-complete ``finished`` marker then ends
        the campaign cleanly instead of reporting N-1/N forever.
        """
        new = self.poll()
        if self._torn_tail is None:
            return new
        try:
            payload = json.loads(self._torn_tail.strip())
        except json.JSONDecodeError:
            return new  # genuinely torn mid-JSON: nothing to salvage
        self.salvaged_tail = True
        self._torn_tail = None
        return new + self._consume(payload)

    @property
    def has_torn_tail(self) -> bool:
        """The last poll ended on an unterminated line."""
        return self._torn_tail is not None

    def _reset(self) -> None:
        self.offset = 0
        self._first_line = None
        self._torn_tail = None
        self.resyncs += 1
        self.resynced = True
        self._reset_state()

    # -- subclass hooks ------------------------------------------------- #
    def _consume(self, payload: dict) -> int:
        raise NotImplementedError

    def _reset_state(self) -> None:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# checkpoint tailing (legacy fallback)
# --------------------------------------------------------------------------- #
class _CheckpointTailer(_JsonlTailer):
    """Tail a campaign checkpoint: one JSONL record per completed point."""

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self.total: Optional[int] = None
        self.name = "campaign"
        self.strategy: Optional[str] = None
        self.finished = False
        self.keys: set = set()
        self.failed_keys: set = set()
        self.marker_failed = 0
        #: incident lines (permanent failures) not yet printed.
        self.pending_incidents: List[str] = []

    def _consume(self, payload: dict) -> int:
        kind = payload.get("kind")
        if kind == "header":
            self.total = payload.get("total_points")
            self.name = payload.get("name", self.name)
            self.strategy = payload.get("strategy")
        elif kind == "record":
            key = payload.get("key")
            meta = payload.get("meta") or {}
            if meta.get("status") == "failed":
                if key not in self.failed_keys:
                    self.failed_keys.add(key)
                    label = payload.get("label") or key
                    self.pending_incidents.append(
                        f"FAILED {label}: {meta.get('error', '')}"
                    )
            else:
                # A later success supersedes an earlier failure record
                # (``--retry-failed`` appends the fresh result to the same
                # checkpoint).
                self.failed_keys.discard(key)
            if key not in self.keys:
                self.keys.add(key)
                return 1
        elif kind == "finished":
            self.finished = True
            self.marker_failed = int(payload.get("failed") or 0)
        return 0

    def _reset_state(self) -> None:
        # The file was rewritten: everything derived from it is stale.  The
        # seen-key set must go too — a compacted file re-lists every live
        # key, and keeping the old set would double-count nothing but would
        # mask keys the rewrite legitimately removed.
        self.keys = set()
        self.failed_keys = set()
        self.marker_failed = 0
        self.pending_incidents = []
        self.finished = False

    def drain_incidents(self) -> List[str]:
        """Incident lines observed since the last drain."""
        pending, self.pending_incidents = self.pending_incidents, []
        return pending

    @property
    def failed(self) -> int:
        """Permanently failed points (records seen, or the finish marker)."""
        return max(len(self.failed_keys), self.marker_failed)

    @property
    def count(self) -> int:
        """Distinct completed points observed so far."""
        return len(self.keys)

    @property
    def complete(self) -> bool:
        """True once the campaign is provably done.

        The durable ``finished`` marker is authoritative.  Without one, the
        record count is compared against the header's ``total_points`` —
        but only for exhaustive grids (or legacy headers naming no
        strategy): adaptive strategies evaluate more records than the
        expansion (halving's extra rungs) or fewer (random subsampling), so
        their counts prove nothing.
        """
        if self.finished:
            return True
        if self.strategy not in (None, "grid"):
            return False
        return self.total is not None and self.count >= self.total


# --------------------------------------------------------------------------- #
# event-log tailing
# --------------------------------------------------------------------------- #
class _EventLogTailer(_JsonlTailer):
    """Tail a campaign event log: starts, completions and attribution.

    Progress units are *done* points (completed or resumed).  Starts
    accumulate on :attr:`pending_starts` for the follower to print, and
    per-worker completion counts/timestamps feed the throughput report.
    """

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self.total: Optional[int] = None
        self.name = "campaign"
        self.strategy: Optional[str] = None
        self.finished = False
        self.started: Dict[str, Optional[int]] = {}  # key -> worker pid
        self.done: set = set()  # completed, resumed or failed keys
        self.failed_keys: set = set()
        self.marker_failed = 0
        #: (label, worker pid) starts not yet printed by the follower.
        self.pending_starts: List[Tuple[str, Optional[int]]] = []
        #: fault-tolerance incident lines not yet printed by the follower.
        self.pending_incidents: List[str] = []
        #: worker pid -> [points, first started_ts, last finished_ts]
        self.workers: Dict[int, List[float]] = {}

    # ------------------------------------------------------------------ #
    def _consume(self, payload: dict) -> int:
        kind = payload.get("kind")
        if kind == "header":
            self.name = payload.get("name", self.name)
            self.total = payload.get("total_points")
            self.strategy = payload.get("strategy")
            return 0
        data = payload.get("data") or {}
        if kind == "campaign_started":
            # A new session (fresh run or resume) on the same log: per-point
            # state restarts, exactly like a live ProgressReporter's.
            self.name = data.get("name", self.name)
            self.total = data.get("total_points", self.total)
            self.strategy = data.get("strategy", self.strategy)
            self.finished = False
            self.started = {}
            self.done = set()
            self.failed_keys = set()
            self.marker_failed = 0
            self.workers = {}
            self.pending_starts = []
            self.pending_incidents = []
        elif kind == "point_started":
            key = data.get("key")
            if key not in self.started:
                self.started[key] = data.get("worker")
                self.pending_starts.append((data.get("label", key), data.get("worker")))
        elif kind in ("point_completed", "point_resumed"):
            record = data.get("record") or {}
            key = record.get("key")
            meta = record.get("meta") or {}
            if meta.get("status") == "failed":
                # A resumed failure record: done, but counted as failed.
                self.failed_keys.add(key)
            else:
                self.failed_keys.discard(key)
            if key not in self.done:
                self.done.add(key)
                if kind == "point_completed":
                    meta = record.get("meta") or {}
                    worker = meta.get("worker")
                    if worker is not None:
                        stats = self.workers.setdefault(worker, [0, None, None])
                        stats[0] += 1
                        started_ts = meta.get("started_ts")
                        finished_ts = meta.get("finished_ts")
                        if started_ts is not None and (
                            stats[1] is None or started_ts < stats[1]
                        ):
                            stats[1] = started_ts
                        if finished_ts is not None and (
                            stats[2] is None or finished_ts > stats[2]
                        ):
                            stats[2] = finished_ts
                return 1
        elif kind == "point_failed":
            record = data.get("record") or {}
            key = record.get("key")
            meta = record.get("meta") or {}
            self.failed_keys.add(key)
            label = record.get("label") or key
            self.pending_incidents.append(f"FAILED {label}: {meta.get('error', '')}")
            if key not in self.done:
                self.done.add(key)
                return 1
        elif kind == "point_retried":
            self.pending_incidents.append(
                "retrying {label} (attempt {attempt} after {reason}: {error})".format(
                    label=data.get("label") or data.get("key"),
                    attempt=data.get("attempt", "?"),
                    reason=data.get("reason", "error"),
                    error=data.get("error", ""),
                )
            )
        elif kind == "worker_lost":
            self.pending_incidents.append(
                "worker {worker} lost with {inflight} point(s) in flight".format(
                    worker=data.get("worker", "?"), inflight=data.get("inflight", 0)
                )
            )
        elif kind == "pool_restarted":
            self.pending_incidents.append(
                "worker pool restarted (#{restarts}, jobs={jobs}): {reason}".format(
                    restarts=data.get("restarts", "?"),
                    jobs=data.get("jobs", "?"),
                    reason=data.get("reason", ""),
                )
            )
        elif kind == "campaign_finished":
            self.finished = True
            self.marker_failed = int(data.get("failed") or 0)
        elif kind == "checkpoint_flushed":
            # Deliberate no-op: flushes mark durability, not progress — the
            # per-point events above already carry everything the follower
            # displays.
            pass
        return 0

    def _reset_state(self) -> None:
        self.finished = False
        self.started = {}
        self.done = set()
        self.failed_keys = set()
        self.marker_failed = 0
        self.workers = {}
        self.pending_starts = []
        self.pending_incidents = []

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Done points (completed or resumed) of the current session."""
        return len(self.done)

    @property
    def in_flight(self) -> int:
        """Points started but not yet completed."""
        return sum(1 for key in self.started if key not in self.done)

    def drain_starts(self) -> List[Tuple[str, Optional[int]]]:
        """Starts observed since the last drain (label, worker pid)."""
        pending, self.pending_starts = self.pending_starts, []
        return pending

    def drain_incidents(self) -> List[str]:
        """Fault-tolerance incident lines observed since the last drain."""
        pending, self.pending_incidents = self.pending_incidents, []
        return pending

    @property
    def failed(self) -> int:
        """Permanently failed points (events seen, or the finish event)."""
        return max(len(self.failed_keys), self.marker_failed)

    def worker_report(self) -> List[str]:
        """Per-worker throughput lines, from the workers' own timestamps."""
        lines = []
        for worker in sorted(self.workers):
            points, first_ts, last_ts = self.workers[worker]
            span = (
                (last_ts - first_ts)
                if first_ts is not None and last_ts is not None
                else 0.0
            )
            rate = f"{points / span:.2f} points/s" if span > 0 else "-"
            lines.append(f"worker {worker}: {int(points)} point(s), {rate}")
        return lines

    @property
    def complete(self) -> bool:
        """The logged ``campaign_finished`` event is authoritative."""
        if self.finished:
            return True
        if self.strategy not in (None, "grid"):
            return False
        return self.total is not None and self.count >= self.total


# --------------------------------------------------------------------------- #
# follow loops
# --------------------------------------------------------------------------- #
def _completion_suffix(tailer) -> str:
    """``, N failed`` when points permanently failed, else nothing.

    Appending only on failure keeps clean-run completion lines
    byte-identical to what CI and older tooling grep for.
    """
    failed = getattr(tailer, "failed", 0)
    return f", {failed} failed" if failed else ""


def _completion_code(tailer) -> int:
    """0 for a clean completion, 1 when points permanently failed."""
    return 1 if getattr(tailer, "failed", 0) else 0


def _finish_incomplete(tailer, emit, idle_timeout: Optional[float]) -> int:
    """Shared give-up path: salvage the tail, then report complete or not."""
    tailer.finalize()
    total = tailer.total if tailer.total is not None else "?"
    if tailer.complete:
        note = " (salvaged torn trailing line)" if tailer.salvaged_tail else ""
        emit(
            f"[{tailer.name}] campaign complete: {tailer.count} points"
            f"{_completion_suffix(tailer)}{note}"
        )
        return _completion_code(tailer)
    idle = f"{idle_timeout:.0f}s" if idle_timeout is not None else "a long time"
    emit(
        f"[{tailer.name}] no new data for {idle}; campaign incomplete at "
        f"{tailer.count}/{total} point(s); giving up"
    )
    return 2


def follow_checkpoint(
    path: str,
    poll_seconds: float = 0.25,
    idle_timeout: Optional[float] = 60.0,
    stream: Optional[TextIO] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail a JSONL checkpoint until the campaign completes (legacy mode).

    Parameters
    ----------
    path:
        The JSONL checkpoint a (possibly still running) campaign writes to.
        The file may not exist yet; the follower waits for it.
    poll_seconds:
        Delay between file polls.
    idle_timeout:
        Give up after this many seconds without any new data (``None``
        waits forever).  An incomplete campaign then exits with code 1 —
        after a last-resort re-read of any torn trailing line, so a writer
        killed between its final JSON and its newline cannot wedge
        completion detection.
    stream:
        Where progress lines go (default: stdout).  One line per update —
        append-friendly for CI log artifacts.
    """
    out = stream if stream is not None else sys.stdout

    def emit(line: str) -> None:
        out.write(line + "\n")
        out.flush()

    tailer = _CheckpointTailer(path)
    emit(f"following {path} ...")
    # Records already on disk predate the attach: they seed the count but
    # not the rate, so points/sec means "campaign throughput while watched".
    tailer.poll()
    tailer.drain_incidents()  # failures that predate the attach are history
    baseline = tailer.count
    t_attach = clock()
    last_data = t_attach
    first_status = True
    while True:
        new_records = 0 if first_status else tailer.poll()
        if tailer.resynced:
            emit(f"[{tailer.name}] checkpoint rewritten, re-syncing")
            baseline = min(baseline, tailer.count)
        incidents = tailer.drain_incidents()
        for line in incidents:
            emit(f"[{tailer.name}] ! {line}")
        now = clock()
        if new_records or incidents or tailer.complete or first_status:
            if new_records or incidents:
                last_data = now
            fresh = tailer.count - baseline
            elapsed = now - t_attach
            rate = fresh / elapsed if elapsed > 0 and fresh > 0 else 0.0
            total = tailer.total if tailer.total is not None else "?"
            remaining = (
                max(0, tailer.total - tailer.count) if tailer.total is not None else None
            )
            eta = (
                f"{remaining / rate:.1f}s"
                if rate > 0 and remaining is not None
                else "-"
            )
            emit(
                f"[{tailer.name}] {tailer.count}/{total} points | "
                f"{rate:.2f} points/s | ETA {eta}"
            )
            first_status = False
        if tailer.complete:
            emit(
                f"[{tailer.name}] campaign complete: {tailer.count} points"
                f"{_completion_suffix(tailer)}"
            )
            return _completion_code(tailer)
        if idle_timeout is not None and now - last_data > idle_timeout:
            return _finish_incomplete(tailer, emit, idle_timeout)
        sleep(poll_seconds)


def follow_event_log(
    path: str,
    poll_seconds: float = 0.25,
    idle_timeout: Optional[float] = 60.0,
    stream: Optional[TextIO] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail a campaign event log: starts, in-flight points, worker rates.

    Everything :func:`follow_checkpoint` shows, plus per-point start lines
    with true worker attribution, the number of in-flight points on every
    status line, and a per-worker throughput report on completion — the
    payoff of following the full event stream rather than completions only.

    Note on in-flight counts: a chunked process pool ships start stamps
    back only when a chunk completes (delivery is deferred; the stamped
    timestamps stay faithful), so live in-flight counts are most meaningful
    for serial and streaming runners.
    """
    out = stream if stream is not None else sys.stdout

    def emit(line: str) -> None:
        out.write(line + "\n")
        out.flush()

    tailer = _EventLogTailer(path)
    emit(f"following events {path} ...")
    tailer.poll()
    tailer.drain_starts()  # starts that predate the attach are history
    tailer.drain_incidents()  # ... and so are incidents
    baseline = tailer.count
    t_attach = clock()
    last_data = t_attach
    first_status = True
    while True:
        new_done = 0 if first_status else tailer.poll()
        if tailer.resynced:
            emit(f"[{tailer.name}] event log rewritten, re-syncing")
            baseline = min(baseline, tailer.count)
        starts = tailer.drain_starts()
        for label, worker in starts:
            where = f" @ worker {worker}" if worker is not None else ""
            emit(f"[{tailer.name}] > started {label}{where}")
        incidents = tailer.drain_incidents()
        for line in incidents:
            emit(f"[{tailer.name}] ! {line}")
        now = clock()
        if new_done or starts or incidents or tailer.complete or first_status:
            if new_done or starts or incidents:
                last_data = now
            fresh = tailer.count - baseline
            elapsed = now - t_attach
            rate = fresh / elapsed if elapsed > 0 and fresh > 0 else 0.0
            total = tailer.total if tailer.total is not None else "?"
            remaining = (
                max(0, tailer.total - tailer.count) if tailer.total is not None else None
            )
            eta = (
                f"{remaining / rate:.1f}s"
                if rate > 0 and remaining is not None
                else "-"
            )
            emit(
                f"[{tailer.name}] {tailer.count}/{total} points | "
                f"{rate:.2f} points/s | {tailer.in_flight} in flight | ETA {eta}"
            )
            first_status = False
        if tailer.complete:
            workers = tailer.workers
            suffix = f" across {len(workers)} worker(s)" if workers else ""
            emit(
                f"[{tailer.name}] campaign complete: {tailer.count} points"
                f"{_completion_suffix(tailer)}{suffix}"
            )
            for line in tailer.worker_report():
                emit(f"[{tailer.name}]   {line}")
            return _completion_code(tailer)
        if idle_timeout is not None and now - last_data > idle_timeout:
            return _finish_incomplete(tailer, emit, idle_timeout)
        sleep(poll_seconds)


def _is_event_log(path: str) -> bool:
    """True when the file's first intact line is an event-log header."""
    try:
        header = EventLogObserver.read_header(path)
    except OSError:
        return False
    if header is None:
        # Absent (or content-free so far): trust the naming convention.
        return path.endswith(".events.jsonl")
    return header.get("log") == "events"


def follow_campaign(
    path: str,
    poll_seconds: float = 0.25,
    idle_timeout: Optional[float] = 60.0,
    stream: Optional[TextIO] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Follow a campaign by whichever durable stream the path offers.

    ``path`` may be an event log (followed directly), a checkpoint whose
    sidecar event log exists (the richer stream wins), or a legacy
    checkpoint (tail its completions — byte-compatible fallback).
    """
    kwargs = dict(
        poll_seconds=poll_seconds,
        idle_timeout=idle_timeout,
        stream=stream,
        clock=clock,
        sleep=sleep,
    )
    if _is_event_log(path):
        return follow_event_log(path, **kwargs)
    sidecar = default_event_log_path(path)
    if os.path.exists(sidecar) and os.path.exists(path) and _is_event_log(sidecar):
        # The richer stream wins — unless it is a *stale* sidecar from an
        # earlier session (the campaign was re-run without --event-log): a
        # logging campaign always touches the event log at or after every
        # checkpoint append, so a checkpoint strictly newer than the
        # sidecar means nobody is writing events now.  A checkpoint that
        # does not exist yet proves nothing about the sidecar either way,
        # so the named file wins there too (follow the event log directly
        # to attach to it before the campaign starts).
        try:
            fresh = os.path.getmtime(sidecar) >= os.path.getmtime(path)
        except OSError:
            fresh = True
        if fresh:
            return follow_event_log(sidecar, **kwargs)
    return follow_checkpoint(path, **kwargs)
