"""Tail a live campaign checkpoint: ``python -m repro.sweep --follow``.

A running campaign appends one JSONL line per completed point (see
:mod:`repro.sweep.checkpoint`), flushed line-by-line — which makes the
checkpoint file itself a durable, cross-process event stream.  The follower
reads the header for the campaign's total point count, then tails appended
record lines, printing throughput (points/sec since attach) and an ETA until
the campaign completes.  It needs no connection to the producing process, so
it works across terminals, containers or hosts sharing the file.

Exit codes: 0 when the campaign completed (all points present), 1 when the
follower gave up after ``idle_timeout`` seconds without new data.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable, Optional, TextIO


class _CheckpointTailer:
    """Incrementally parse complete JSONL lines appended to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.total: Optional[int] = None
        self.name = "campaign"
        self.strategy: Optional[str] = None
        self.finished = False
        self.keys: set = set()

    def poll(self) -> int:
        """Consume newly appended complete lines; return new record count."""
        if not os.path.exists(self.path):
            return 0
        new_records = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            fh.seek(self.offset)
            while True:
                line_start = fh.tell()
                line = fh.readline()
                if not line:
                    break
                if not line.endswith("\n"):
                    # A half-written tail: re-read it on the next poll.
                    fh.seek(line_start)
                    break
                self.offset = fh.tell()
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = payload.get("kind")
                if kind == "header":
                    self.total = payload.get("total_points")
                    self.name = payload.get("name", self.name)
                    self.strategy = payload.get("strategy")
                elif kind == "record":
                    key = payload.get("key")
                    if key not in self.keys:
                        self.keys.add(key)
                        new_records += 1
                elif kind == "finished":
                    self.finished = True
        return new_records

    @property
    def count(self) -> int:
        """Distinct completed points observed so far."""
        return len(self.keys)

    @property
    def complete(self) -> bool:
        """True once the campaign is provably done.

        The durable ``finished`` marker is authoritative.  Without one, the
        record count is compared against the header's ``total_points`` —
        but only for exhaustive grids (or legacy headers naming no
        strategy): adaptive strategies evaluate more records than the
        expansion (halving's extra rungs) or fewer (random subsampling), so
        their counts prove nothing.
        """
        if self.finished:
            return True
        if self.strategy not in (None, "grid"):
            return False
        return self.total is not None and self.count >= self.total


def follow_checkpoint(
    path: str,
    poll_seconds: float = 0.25,
    idle_timeout: Optional[float] = 60.0,
    stream: Optional[TextIO] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Tail ``path`` until the campaign completes, printing live progress.

    Parameters
    ----------
    path:
        The JSONL checkpoint a (possibly still running) campaign writes to.
        The file may not exist yet; the follower waits for it.
    poll_seconds:
        Delay between file polls.
    idle_timeout:
        Give up after this many seconds without any new data (``None``
        waits forever).  An incomplete campaign then exits with code 1.
    stream:
        Where progress lines go (default: stdout).  One line per update —
        append-friendly for CI log artifacts.
    """
    out = stream if stream is not None else sys.stdout

    def emit(line: str) -> None:
        out.write(line + "\n")
        out.flush()

    tailer = _CheckpointTailer(path)
    emit(f"following {path} ...")
    # Records already on disk predate the attach: they seed the count but
    # not the rate, so points/sec means "campaign throughput while watched".
    tailer.poll()
    baseline = tailer.count
    t_attach = clock()
    last_data = t_attach
    first_status = True
    while True:
        new_records = 0 if first_status else tailer.poll()
        now = clock()
        if new_records or tailer.complete or first_status:
            if new_records:
                last_data = now
            fresh = tailer.count - baseline
            elapsed = now - t_attach
            rate = fresh / elapsed if elapsed > 0 and fresh > 0 else 0.0
            total = tailer.total if tailer.total is not None else "?"
            remaining = (
                max(0, tailer.total - tailer.count) if tailer.total is not None else None
            )
            eta = (
                f"{remaining / rate:.1f}s"
                if rate > 0 and remaining is not None
                else "-"
            )
            emit(
                f"[{tailer.name}] {tailer.count}/{total} points | "
                f"{rate:.2f} points/s | ETA {eta}"
            )
            first_status = False
        if tailer.complete:
            emit(f"[{tailer.name}] campaign complete: {tailer.count} points")
            return 0
        if idle_timeout is not None and now - last_data > idle_timeout:
            emit(
                f"[{tailer.name}] no new data for {idle_timeout:.0f}s; giving up "
                f"at {tailer.count} point(s)"
            )
            return 1
        sleep(poll_seconds)
