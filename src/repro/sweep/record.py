"""The campaign's unit of persisted data: one evaluated point, one record.

A :class:`PointRecord` is the slim, JSON-serialisable projection of an
:class:`~repro.pipeline.backends.EvaluationResult`: every deterministic
metric a report or a search strategy needs, none of the heavyweight payload
(output grids, live simulation objects).  Records split cleanly into

* a **canonical** part — metrics that must be byte-identical between a serial
  and a parallel run of the same spec (the determinism contract tested by
  ``tests/sweep``), and
* a **meta** part — wall-clock time, worker pid and per-worker plan-cache
  counters, which vary run to run and are excluded from canonical output.

Permanently failed points (retries exhausted, poison points quarantined by
the pool runner) are persisted as **failure records**: the same shape, with
``meta["status"] == "failed"`` and the error text in ``meta["error"]``.
They live in checkpoints so a resume knows not to re-run them, but they are
excluded from :func:`canonical_json` — canonical output covers successfully
evaluated points only, which is what makes a fault-injected campaign
byte-comparable to a fault-free one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.pipeline.backends import EvaluationResult

#: The deterministic fields, in canonical serialisation order.
CANONICAL_FIELDS = (
    "key",
    "label",
    "backend",
    "system",
    "iterations",
    "rung",
    "cycles",
    "dram_words_read",
    "dram_words_written",
    "dram_bytes",
    "operations",
    "total_bits",
    "fmax_mhz",
    "extra",
)


@dataclass
class PointRecord:
    """One completed sweep point, ready for checkpointing and aggregation."""

    key: str
    label: str
    backend: str
    system: str
    iterations: int = 0
    rung: int = 0
    cycles: Optional[int] = None
    dram_words_read: Optional[int] = None
    dram_words_written: Optional[int] = None
    dram_bytes: Optional[int] = None
    operations: Optional[int] = None
    total_bits: Optional[int] = None
    fmax_mhz: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)
    #: Non-deterministic run information (wall_seconds, worker, cache_*).
    meta: Dict[str, Any] = field(default_factory=dict)
    #: The full evaluation result, attached only when the runner is asked to
    #: keep it (never serialised, never compared).
    result: Optional[EvaluationResult] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_result(
        cls,
        key: str,
        label: str,
        result: EvaluationResult,
        rung: int = 0,
        meta: Optional[Dict[str, Any]] = None,
        keep_result: bool = False,
    ) -> "PointRecord":
        """Project an evaluation result onto the slim record shape."""
        return cls(
            key=key,
            label=label,
            backend=result.backend,
            system=result.system,
            iterations=result.iterations,
            rung=rung,
            cycles=result.cycles,
            dram_words_read=result.dram_words_read,
            dram_words_written=result.dram_words_written,
            dram_bytes=result.dram_bytes,
            operations=result.operations,
            total_bits=result.design.total_memory_bits,
            fmax_mhz=result.design.fmax_mhz,
            extra=dict(result.extra),
            meta=dict(meta or {}),
            result=result if keep_result else None,
        )

    @classmethod
    def failure(
        cls,
        key: str,
        label: str,
        backend: str,
        system: str,
        iterations: int = 0,
        rung: int = 0,
        error: str = "",
        attempts: int = 1,
        meta: Optional[Dict[str, Any]] = None,
    ) -> "PointRecord":
        """A record for a point that exhausted its retry budget.

        Metric fields stay ``None``; the failure status, error text and
        attempt count live in ``meta`` so :data:`CANONICAL_FIELDS` (and with
        it the canonical-bytes contract) is unchanged.
        """
        merged = dict(meta or {})
        merged.update({"status": "failed", "error": error, "attempts": attempts})
        return cls(
            key=key,
            label=label,
            backend=backend,
            system=system,
            iterations=iterations,
            rung=rung,
            meta=merged,
        )

    # ------------------------------------------------------------------ #
    # failure status
    # ------------------------------------------------------------------ #
    @property
    def failed(self) -> bool:
        """Whether this record marks a permanently failed point."""
        return self.meta.get("status") == "failed"

    @property
    def error(self) -> str:
        """The recorded failure reason (empty for successful points)."""
        return str(self.meta.get("error") or "")

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def dram_traffic_kib(self) -> Optional[float]:
        """Total DRAM traffic in KiB (``None`` for workload-free backends)."""
        return self.dram_bytes / 1024.0 if self.dram_bytes is not None else None

    def execution_time_us(self, frequency_mhz: Optional[float] = None) -> float:
        """Execution time in microseconds (defaults to the design's Fmax)."""
        if self.cycles is None:
            raise ValueError(f"backend {self.backend!r} produced no cycle count")
        fmax = frequency_mhz if frequency_mhz is not None else self.fmax_mhz
        if fmax is None or not fmax > 0:
            raise ValueError(f"frequency_mhz must be positive, got {fmax!r}")
        return self.cycles / fmax

    def mops(self, frequency_mhz: Optional[float] = None) -> float:
        """Millions of kernel operations per second."""
        time_us = self.execution_time_us(frequency_mhz)
        if not time_us or self.operations is None:
            return 0.0
        return self.operations / time_us

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def canonical(self) -> Dict[str, Any]:
        """The deterministic projection, with a fixed field order."""
        return {name: getattr(self, name) for name in CANONICAL_FIELDS}

    def to_json_dict(self) -> Dict[str, Any]:
        """The full checkpoint payload (canonical fields plus meta)."""
        payload = self.canonical()
        payload["meta"] = self.meta
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, Any]) -> "PointRecord":
        """Rebuild a record from a checkpoint line."""
        kwargs = {name: payload.get(name) for name in CANONICAL_FIELDS}
        kwargs["meta"] = dict(payload.get("meta") or {})
        return cls(**kwargs)


def canonical_json(records: List[PointRecord]) -> str:
    """Byte-stable JSON of many records, sorted by (rung, key).

    This is the determinism contract: a parallel campaign must produce output
    byte-identical to the serial runner on the same spec.  Failure records
    are excluded — canonical output covers successful evaluations only, so a
    fault-injected run compares byte-for-byte against a clean one on the
    points both completed.
    """
    rows = [
        r.canonical()
        for r in sorted(records, key=lambda r: (r.rung, r.key))
        if not r.failed
    ]
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))
